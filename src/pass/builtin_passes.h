/**
 * @file
 * The built-in pass registry and pipeline-spec resolution.
 *
 * Every transform in the repo registers here under a stable name:
 *
 *   autodiff     graph::backward over ctx.loss / ctx.wrt
 *   fusion       element-wise fusion (graph/fusion.h)
 *   recompute    the Echo recompute rewrite (echo/recompute_pass.h)
 *   layout       TBH-vs-THB layout decision (layout/layout_optimizer.h)
 *   gemm_warm    GEMM-key autotuner warm-up (graph/gemm_keys.h)
 *   audit_fusion re-audit of the fusion journal (no transform)
 *   verify       no transform; runs every registered checker
 *   plan         memory plan of the current graph (memory/planner.h)
 *   recompute_budget(bytes=256MiB) | (fraction=0.5:solver=dp)
 *                budget-targeted recomputation (budget/planner.h)
 *
 * Pipelines are comma-separated spec strings ("autodiff,fusion").  A
 * spec element may carry arguments in parentheses — ':'-separated
 * key=value pairs, since ',' separates passes — which makePass feeds
 * through Pass::configure before the pass joins the pipeline.  The
 * spec call sites should actually run comes from resolveSpec(), which
 * honours ECHO_PASSES verbatim and rewrites the default spec for the
 * deprecated ECHO_FUSION=0 / ECHO_VERIFY=1 aliases (one-time warning):
 *
 *   ECHO_FUSION=0  -> remove "fusion" from the default spec
 *   ECHO_VERIFY=1  -> append "verify" to the default spec
 */
#ifndef ECHO_PASS_BUILTIN_PASSES_H
#define ECHO_PASS_BUILTIN_PASSES_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pass/pass_manager.h"

namespace echo::pass {

// ---------------------------------------------------------------------
// Pass registry
// ---------------------------------------------------------------------

using PassFactory = std::function<std::unique_ptr<Pass>()>;

/** Register a pass factory under @p name (panics on duplicates). */
void registerPass(const std::string &name, PassFactory factory);

/** Whether @p name is a registered pass. */
bool isRegisteredPass(const std::string &name);

/** All registered pass names, sorted. */
std::vector<std::string> registeredPassNames();

/** A fresh instance of the registered pass, or nullptr when unknown.
 *  @p name may be a spec element with arguments ("name(args)"); the
 *  argument text is handed to Pass::configure. */
std::unique_ptr<Pass> makePass(const std::string &name);

/** makePass that reports *why* construction failed (unknown pass,
 *  malformed element, Pass::configure rejection) into @p error. */
std::unique_ptr<Pass> makePass(const std::string &name,
                               std::string *error);

// ---------------------------------------------------------------------
// Pipeline specs
// ---------------------------------------------------------------------

/** Split a spec on commas, trimming blanks, and expand preset names
 *  (see presetSpec) into their pass lists.  The spec "none" (or "")
 *  yields an empty pipeline. */
std::vector<std::string> parseSpec(const std::string &spec);

/**
 * The pass list a named preset stands for, or "" when @p name is not a
 * preset.  Presets name whole per-workload pipelines usable anywhere a
 * spec is ("serve-wordlm" in ECHO_PASSES, echo-lint --pipeline, ...):
 *
 *   serve-wordlm   "fusion,gemm_warm"               (LM step graphs)
 *   serve-nmt      "fusion,audit_fusion,gemm_warm"  (NMT enc/dec graphs)
 */
std::string presetSpec(const std::string &name);

/** Which default a call site wants when no spec is given. */
enum class PipelineKind {
    kTraining,   ///< default "autodiff,fusion"
    kInference,  ///< default "fusion" (forward-only step graphs)
    kServeWordLm, ///< default preset "serve-wordlm"
    kServeNmt,    ///< default preset "serve-nmt"
};

/** The hard-coded default spec for @p kind (no env consulted). */
std::string defaultSpec(PipelineKind kind);

/**
 * The spec a call site should run: @p requested when non-empty (a
 * constructor argument wins over everything), else ECHO_PASSES
 * verbatim, else defaultSpec(kind) rewritten by the deprecated
 * ECHO_FUSION=0 / ECHO_VERIFY=1 aliases, each with a one-time
 * deprecation warning.
 */
std::string resolveSpec(PipelineKind kind,
                        const std::string &requested = "");

/**
 * Build a PassManager from @p spec.  Unknown pass names are a user
 * error (ECHO_FATAL) naming the registered passes.
 */
PassManager buildPipeline(const std::string &spec);

} // namespace echo::pass

#endif // ECHO_PASS_BUILTIN_PASSES_H
