#include "pass/pass_manager.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>

#include "core/logging.h"
#include "graph/tape.h"
#include "memory/liveness.h"
#include "memory/planner.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace echo::pass {

// ---------------------------------------------------------------------
// PipelineContext
// ---------------------------------------------------------------------

std::vector<graph::Val>
PipelineContext::effectiveFetches() const
{
    if (!fetches.empty())
        return fetches;
    if (loss.defined())
        return {loss};
    return {};
}

std::set<Invariant>
PipelineContext::initialInvariants() const
{
    std::set<Invariant> initial;
    // A context whose gradients are already materialized resumes the
    // pipeline past autodiff; a fresh one is still differentiable.
    if (weight_grads.empty())
        initial.insert(Invariant::kDifferentiable);
    else
        initial.insert(Invariant::kGradients);
    for (Invariant inv : assume)
        initial.insert(inv);
    return initial;
}

// ---------------------------------------------------------------------
// Checker registry
// ---------------------------------------------------------------------

namespace {

struct CheckerRegistry
{
    std::mutex mu;
    std::map<std::string, Checker> checkers;
};

CheckerRegistry &
checkerRegistry()
{
    static CheckerRegistry reg;
    return reg;
}

/** Schedule-level checkers defer structural errors to graph-verify:
 *  building a schedule over a broken graph panics, so they no-op
 *  unless the fetch closure verifies clean. */
bool
fetchesVerifyClean(const std::vector<graph::Val> &fetches)
{
    return !fetches.empty() && analysis::verifyFetches(fetches).ok();
}

analysis::AnalysisReport
checkGraphVerify(const PipelineContext &ctx)
{
    const std::vector<graph::Val> eff = ctx.effectiveFetches();
    if (eff.empty())
        return {};
    return analysis::verifyFetches(eff);
}

analysis::AnalysisReport
checkLifetime(const PipelineContext &ctx)
{
    const std::vector<graph::Val> eff = ctx.effectiveFetches();
    if (!fetchesVerifyClean(eff))
        return {};
    const memory::LivenessResult live =
        memory::analyzeLiveness(eff, ctx.weight_grads);
    const memory::MemoryPlan plan = memory::planMemory(live);
    return analysis::analyzeLifetimes(live, eff, ctx.weight_grads, &plan);
}

analysis::AnalysisReport
checkHazards(const PipelineContext &ctx)
{
    const std::vector<graph::Val> eff = ctx.effectiveFetches();
    if (!fetchesVerifyClean(eff))
        return {};
    return analysis::detectParallelHazards(analysis::buildTopology(eff));
}

analysis::AnalysisReport
checkFusionAudit(const PipelineContext &ctx)
{
    // Only meaningful while the fusion journal is intact; recompute
    // redirects fused frontiers and invalidates it.
    if (ctx.holds.count(Invariant::kFusionJournal) == 0 ||
        ctx.fusion.num_groups == 0) {
        return {};
    }
    const std::vector<graph::Val> eff = ctx.effectiveFetches();
    if (!fetchesVerifyClean(eff))
        return {};
    return analysis::auditFusion(eff, ctx.fusion);
}

analysis::AnalysisReport
checkRecomputeAudit(const PipelineContext &ctx)
{
    if (ctx.holds.count(Invariant::kRecomputeApplied) == 0 ||
        !ctx.recompute_snapshot.has_value()) {
        return {};
    }
    const std::vector<graph::Val> eff = ctx.effectiveFetches();
    if (!fetchesVerifyClean(eff))
        return {};
    analysis::AuditOptions opts;
    opts.expect_gemm_free = ctx.recompute_config.respect_gemm_boundary;
    return analysis::auditRecomputePass(*ctx.recompute_snapshot, *ctx.graph,
                                        eff, ctx.weight_grads, ctx.recompute,
                                        opts);
}

analysis::AnalysisReport
checkWorkspaceAliasing(const PipelineContext &ctx)
{
    if (ctx.serve_journal.empty())
        return {};
    return analysis::detectWorkspaceAliasing(ctx.serve_journal,
                                             ctx.serve_slots);
}

analysis::AnalysisReport
checkMemoryPlan(const PipelineContext &ctx)
{
    // Only meaningful while a memory plan claims to describe the
    // current graph; passes that rewrite the graph invalidate
    // kMemoryPlanned and silence this checker until the next re-plan.
    if (ctx.holds.count(Invariant::kMemoryPlanned) == 0 || !ctx.has_plan)
        return {};
    const std::vector<graph::Val> eff = ctx.effectiveFetches();
    if (!fetchesVerifyClean(eff))
        return {};
    analysis::AnalysisReport report;
    const memory::LivenessResult live =
        memory::analyzeLiveness(eff, ctx.weight_grads);
    const memory::MemoryPlan fresh = memory::planMemory(live);
    if (fresh.pool_peak_bytes != ctx.plan.pool_peak_bytes ||
        fresh.persistent_bytes != ctx.plan.persistent_bytes) {
        report.add(analysis::Check::kPlanStale, analysis::Severity::kError,
                   "recorded memory plan is stale: pool peak " +
                       std::to_string(ctx.plan.pool_peak_bytes) +
                       " / persistent " +
                       std::to_string(ctx.plan.persistent_bytes) +
                       " bytes recorded, but re-planning the current graph "
                       "gives " +
                       std::to_string(fresh.pool_peak_bytes) + " / " +
                       std::to_string(fresh.persistent_bytes) + " bytes");
    }
    return report;
}

analysis::AnalysisReport
checkPlanFeasible(const PipelineContext &ctx)
{
    if (ctx.holds.count(Invariant::kPlanFeasible) == 0 ||
        !ctx.has_budget_plan) {
        return {};
    }
    const std::vector<graph::Val> eff = ctx.effectiveFetches();
    if (!fetchesVerifyClean(eff))
        return {};
    analysis::AnalysisReport report;
    const budget::BudgetPlan &bp = ctx.budget_plan;
    if (!bp.feasible) {
        std::ostringstream msg;
        msg << "budget plan is infeasible: tightest achievable pool peak "
            << budget::formatBytes(bp.tightest_pool_peak)
            << " exceeds budget " << budget::formatBytes(bp.budget_bytes);
        std::vector<analysis::NodeRef> chain;
        for (const budget::BindingBuffer &b : bp.binding)
            chain.push_back(analysis::NodeRef::of(b.val.node, b.def_pos));
        report.add(analysis::Check::kBudgetExceeded,
                   analysis::Severity::kError, msg.str(), std::move(chain));
        return report;
    }
    // Re-derive the pool peak from the current graph — never trust the
    // planner's own record — and independently replay the allocation
    // timeline against it.
    obs::MemoryTimeline timeline;
    memory::PlannerOptions popts;
    popts.timeline = &timeline;
    const memory::LivenessResult live =
        memory::analyzeLiveness(eff, ctx.weight_grads);
    const memory::MemoryPlan plan = memory::planMemory(live, popts);
    report.merge(
        analysis::checkPoolBudget(live, plan, bp.budget_bytes));
    if (plan.pool_peak_bytes != bp.planned_pool_peak) {
        report.add(analysis::Check::kPlanStale, analysis::Severity::kError,
                   "budget plan is stale: it recorded pool peak " +
                       std::to_string(bp.planned_pool_peak) +
                       " bytes but re-planning the current graph gives " +
                       std::to_string(plan.pool_peak_bytes) + " bytes");
    }
    const obs::TimelineReplay replay = obs::replayTimeline(timeline);
    if (!replay.ok() ||
        replay.address_peak_bytes != plan.pool_peak_bytes) {
        report.add(analysis::Check::kPlanStale, analysis::Severity::kError,
                   "timeline replay disagrees with the memory plan: "
                   "address peak " +
                       std::to_string(replay.address_peak_bytes) +
                       " bytes vs planned pool peak " +
                       std::to_string(plan.pool_peak_bytes) + " bytes (" +
                       std::to_string(replay.violations.size()) +
                       " violation(s))");
    }
    return report;
}

analysis::AnalysisReport
checkTapeReady(const PipelineContext &ctx)
{
    // Only meaningful while a tape claims to describe the current
    // graph and plan; rewriting passes invalidate kTapeReady and
    // silence this checker until tape_compile runs again.
    if (ctx.holds.count(Invariant::kTapeReady) == 0 ||
        ctx.tape == nullptr) {
        return {};
    }
    const std::vector<graph::Val> eff = ctx.effectiveFetches();
    if (!fetchesVerifyClean(eff))
        return {};
    analysis::AnalysisReport report = analysis::auditTape(*ctx.tape);
    // The audit replays the tape against its own analysis; also pin
    // the arena to a plan re-derived from the CURRENT graph, so a tape
    // compiled before a rewrite cannot keep claiming tape-ready.
    const memory::LivenessResult live =
        memory::analyzeLiveness(eff, ctx.weight_grads);
    const memory::MemoryPlan fresh = memory::planMemory(live);
    if (fresh.pool_peak_bytes != ctx.tape->arenaBytes()) {
        report.add(analysis::Check::kPlanStale, analysis::Severity::kError,
                   "tape arena is " +
                       std::to_string(ctx.tape->arenaBytes()) +
                       " bytes but re-planning the current graph gives "
                       "pool peak " +
                       std::to_string(fresh.pool_peak_bytes) + " bytes");
    }
    return report;
}

/** Canonical replay order: the structural verifier first (the others
 *  defer to it), then schedule analyses, then the pass audits. */
const char *const kBuiltinCheckerOrder[] = {
    "graph-verify",       "lifetime",        "hazards",
    "fusion-audit",       "recompute-audit", "workspace-aliasing",
    "memory-plan",        "plan-feasible",   "tape-ready",
};

std::once_flag builtin_checkers_once;

void
ensureBuiltinCheckers()
{
    std::call_once(builtin_checkers_once, [] {
        registerChecker("graph-verify", checkGraphVerify);
        registerChecker("lifetime", checkLifetime);
        registerChecker("hazards", checkHazards);
        registerChecker("fusion-audit", checkFusionAudit);
        registerChecker("recompute-audit", checkRecomputeAudit);
        registerChecker("workspace-aliasing", checkWorkspaceAliasing);
        registerChecker("memory-plan", checkMemoryPlan);
        registerChecker("plan-feasible", checkPlanFeasible);
        registerChecker("tape-ready", checkTapeReady);
    });
}

/** Every registered checker in deterministic replay order: builtins in
 *  kBuiltinCheckerOrder, then custom checkers sorted by name. */
std::vector<std::string>
replayCheckerOrder()
{
    std::vector<std::string> order;
    for (const char *name : kBuiltinCheckerOrder)
        order.emplace_back(name);
    for (const std::string &name : registeredCheckerNames()) {
        if (std::find(order.begin(), order.end(), name) == order.end())
            order.push_back(name);
    }
    return order;
}

} // namespace

void
registerChecker(const std::string &name, Checker fn)
{
    ECHO_CHECK(fn != nullptr, "checker '", name, "' is null");
    CheckerRegistry &reg = checkerRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto [it, inserted] = reg.checkers.emplace(name, std::move(fn));
    (void)it;
    ECHO_CHECK(inserted, "checker '", name, "' registered twice");
}

const Checker *
findChecker(const std::string &name)
{
    ensureBuiltinCheckers();
    CheckerRegistry &reg = checkerRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.checkers.find(name);
    return it == reg.checkers.end() ? nullptr : &it->second;
}

std::vector<std::string>
registeredCheckerNames()
{
    ensureBuiltinCheckers();
    CheckerRegistry &reg = checkerRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::vector<std::string> names;
    names.reserve(reg.checkers.size());
    for (const auto &[name, fn] : reg.checkers)
        names.push_back(name);
    return names;
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

bool
PipelineReport::ok() const
{
    if (aborted)
        return false;
    for (const StageReport &stage : stages) {
        if (stage.post.errorCount() > 0)
            return false;
    }
    return true;
}

std::string
PipelineReport::toString() const
{
    std::ostringstream oss;
    for (size_t i = 0; i < stages.size(); ++i) {
        const StageReport &s = stages[i];
        oss << "  [" << i << "] " << s.pass << ": nodes " << s.nodes_before
            << "->" << s.nodes_after << ", reachable " << s.reachable_before
            << "->" << s.reachable_after << ", values " << s.values_before
            << "->" << s.values_after << ", bytes " << s.bytes_before << "->"
            << s.bytes_after << "; checkers:";
        if (s.checkers_run.empty()) {
            oss << " (none)";
        } else {
            for (const std::string &name : s.checkers_run)
                oss << " " << name;
        }
        oss << " (" << s.post.errorCount() << " error(s), "
            << s.post.warningCount() << " warning(s))\n";
        const std::string diags = s.post.toString();
        if (!diags.empty()) {
            std::istringstream lines(diags);
            std::string line;
            while (std::getline(lines, line))
                oss << "      " << line << "\n";
        }
    }
    if (aborted)
        oss << "  pipeline aborted on postcondition failure\n";
    return oss.str();
}

// ---------------------------------------------------------------------
// PassManager
// ---------------------------------------------------------------------

namespace {

struct IrStats
{
    int64_t nodes = 0;
    int64_t reachable = 0;
    int64_t values = 0;
    int64_t bytes = 0;
};

IrStats
irStats(const PipelineContext &ctx)
{
    IrStats stats;
    stats.nodes = static_cast<int64_t>(ctx.graph->numNodes());
    const std::vector<graph::Val> eff = ctx.effectiveFetches();
    if (eff.empty())
        return stats;
    for (const graph::Node *node : graph::reachableNodes(eff)) {
        ++stats.reachable;
        stats.values += node->numOutputs();
        for (const Shape &shape : node->out_shapes)
            stats.bytes += shape.bytes();
    }
    return stats;
}

/** How an invariant came to (not) hold at some pipeline position. */
struct InvariantState
{
    bool held = false;
    /** Who established it ("<initial>" for pipeline entry). */
    std::string establisher;
    int establisher_index = -1;
    /** Who invalidated it since (when held == false after being held). */
    std::string invalidator;
    int invalidator_index = -1;
};

std::string
positionOf(const std::string &pass, int index)
{
    std::ostringstream oss;
    if (index < 0)
        oss << "pipeline entry";
    else
        oss << "'" << pass << "' (position " << index << ")";
    return oss.str();
}

} // namespace

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    ECHO_CHECK(pass != nullptr, "null pass added to pipeline");
    passes_.push_back(std::move(pass));
}

std::string
PassManager::spec() const
{
    std::ostringstream oss;
    for (size_t i = 0; i < passes_.size(); ++i) {
        if (i > 0)
            oss << ",";
        oss << passes_[i]->name();
    }
    return oss.str();
}

std::vector<ContractViolation>
PassManager::validate(const std::set<Invariant> &initial) const
{
    std::vector<ContractViolation> violations;
    std::map<Invariant, InvariantState> state;
    for (Invariant inv : initial) {
        InvariantState &st = state[inv];
        st.held = true;
        st.establisher = "<initial>";
        st.establisher_index = -1;
    }

    for (size_t i = 0; i < passes_.size(); ++i) {
        const Pass &pass = *passes_[i];
        for (Invariant pre : pass.preconditions()) {
            auto it = state.find(pre);
            if (it != state.end() && it->second.held)
                continue;

            ContractViolation v;
            v.pass_index = i;
            v.pass = pass.name();
            v.invariant = pre;
            std::ostringstream msg;
            msg << "pass '" << v.pass << "' (position " << i
                << ") requires invariant '" << invariantName(pre) << "', ";
            if (it != state.end() && !it->second.establisher.empty()) {
                // Established (or held initially), then clobbered: name
                // the offending pass pair.
                const InvariantState &st = it->second;
                v.establisher = st.establisher;
                v.invalidator = st.invalidator;
                if (st.establisher == "<initial>") {
                    msg << "which held at " << positionOf("", -1) << " but "
                        << positionOf(st.invalidator, st.invalidator_index)
                        << " invalidated it";
                } else {
                    msg << "established by "
                        << positionOf(st.establisher, st.establisher_index)
                        << " but invalidated by "
                        << positionOf(st.invalidator, st.invalidator_index)
                        << " in between";
                }
            } else {
                // Never established: hint at a too-late establisher.
                msg << "which no earlier pass establishes";
                for (size_t j = i + 1; j < passes_.size(); ++j) {
                    const auto later = passes_[j]->establishes();
                    if (std::find(later.begin(), later.end(), pre) !=
                        later.end()) {
                        v.establisher = passes_[j]->name();
                        msg << "; '" << v.establisher << "' (position " << j
                            << ") establishes it — order it before '"
                            << v.pass << "'";
                        break;
                    }
                }
            }
            v.message = msg.str();
            violations.push_back(std::move(v));
        }

        for (Invariant inv : pass.invalidates()) {
            auto it = state.find(inv);
            if (it == state.end() || !it->second.held)
                continue;
            it->second.held = false;
            it->second.invalidator = pass.name();
            it->second.invalidator_index = static_cast<int>(i);
        }
        for (Invariant inv : pass.establishes()) {
            InvariantState &st = state[inv];
            st.held = true;
            st.establisher = pass.name();
            st.establisher_index = static_cast<int>(i);
            st.invalidator.clear();
            st.invalidator_index = -1;
        }
    }
    return violations;
}

PipelineReport
PassManager::run(PipelineContext &ctx, const RunOptions &opts) const
{
    ensureBuiltinCheckers();
    const std::set<Invariant> initial = ctx.initialInvariants();
    const std::vector<ContractViolation> violations = validate(initial);
    if (!violations.empty()) {
        std::ostringstream oss;
        for (const ContractViolation &v : violations)
            oss << "  " << v.message << "\n";
        ECHO_PANIC(opts.what, ": pipeline '", spec(),
                   "' is statically illegal (", violations.size(),
                   " contract violation(s)):\n", oss.str());
    }

    ctx.holds = initial;
    obs::counter("pass.pipeline.runs").add(1);

    PipelineReport report;
    const std::vector<std::string> replay_order =
        opts.all_checkers ? replayCheckerOrder() : std::vector<std::string>{};

    for (size_t i = 0; i < passes_.size(); ++i) {
        const Pass &pass = *passes_[i];
        StageReport stage;
        stage.pass = pass.name();

        const IrStats before = irStats(ctx);
        {
            obs::Span span;
            if (obs::traceEnabled()) {
                span.begin("pass", std::string("pass.") + pass.name(),
                           {{"position", static_cast<int64_t>(i)},
                            {"pipeline", spec()}});
            }
            passes_[i]->run(ctx);
        }
        const IrStats after = irStats(ctx);

        for (Invariant inv : pass.invalidates())
            ctx.holds.erase(inv);
        for (Invariant inv : pass.establishes())
            ctx.holds.insert(inv);

        stage.nodes_before = before.nodes;
        stage.nodes_after = after.nodes;
        stage.reachable_before = before.reachable;
        stage.reachable_after = after.reachable;
        stage.values_before = before.values;
        stage.values_after = after.values;
        stage.bytes_before = before.bytes;
        stage.bytes_after = after.bytes;

        obs::counter("pass.stage.runs").add(1);
        obs::counter(
            (std::string("pass.") + pass.name() + ".runs").c_str())
            .add(1);
        if (after.nodes > before.nodes) {
            obs::counter("pass.nodes_added").add(after.nodes - before.nodes);
        }
        if (obs::traceEnabled()) {
            obs::emitEvent(
                'i', "pass", std::string("pass.") + pass.name() + ".diff",
                {{"nodes_before", before.nodes},
                 {"nodes_after", after.nodes},
                 {"reachable_before", before.reachable},
                 {"reachable_after", after.reachable},
                 {"values_before", before.values},
                 {"values_after", after.values},
                 {"bytes_before", before.bytes},
                 {"bytes_after", after.bytes}});
        }

        const std::vector<std::string> checker_names =
            opts.all_checkers ? replay_order : pass.postconditionCheckers();
        for (const std::string &name : checker_names) {
            const Checker *checker = findChecker(name);
            ECHO_CHECK(checker != nullptr, "pass '", pass.name(),
                       "' names unregistered postcondition checker '", name,
                       "'");
            const analysis::AnalysisReport result = (*checker)(ctx);
            stage.checkers_run.push_back(name);
            const bool failed = result.errorCount() > 0;
            stage.post.merge(result);
            // A failed checker means later checkers (which assume a
            // sane graph) may panic instead of reporting — stop here.
            if (failed)
                break;
        }

        const size_t errors = stage.post.errorCount();
        report.stages.push_back(std::move(stage));
        if (errors > 0) {
            obs::counter("pass.postcondition_errors")
                .add(static_cast<int64_t>(errors));
            if (opts.die_on_error) {
                ECHO_PANIC(opts.what, ": postcondition failure after pass '",
                           pass.name(), "' in pipeline '", spec(), "':\n",
                           report.toString());
            }
            report.aborted = true;
            break;
        }
    }
    return report;
}

void
PassManager::runOrDie(PipelineContext &ctx, const char *what) const
{
    RunOptions opts;
    opts.die_on_error = true;
    opts.what = what;
    const PipelineReport report = run(ctx, opts);
    ECHO_CHECK(report.ok(), what, ": pipeline '", spec(),
               "' reported failure without dying:\n", report.toString());
}

} // namespace echo::pass
