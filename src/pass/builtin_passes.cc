#include "pass/builtin_passes.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>

#include <cmath>

#include "budget/planner.h"
#include "core/logging.h"
#include "core/thread_pool.h"
#include "graph/autodiff.h"
#include "graph/gemm_keys.h"
#include "graph/schedule.h"
#include "graph/tape.h"
#include "memory/liveness.h"
#include "memory/planner.h"
#include "tune/tuner.h"

namespace echo::pass {
namespace {

// ---------------------------------------------------------------------
// Built-in passes
// ---------------------------------------------------------------------

/** graph::backward as a pass: turns a forward graph with a loss into
 *  the training graph, setting ctx.fetches = {loss, grads...}. */
class AutodiffPass : public Pass
{
  public:
    const char *name() const override { return "autodiff"; }
    std::vector<Invariant> preconditions() const override
    {
        return {Invariant::kDifferentiable};
    }
    std::vector<Invariant> establishes() const override
    {
        return {Invariant::kGradients};
    }
    std::vector<Invariant> invalidates() const override
    {
        // One-shot: the graph is no longer "fresh forward", the
        // backward projections launch GEMM shapes no warm-up has seen,
        // and any earlier memory plan (or tape compiled against it)
        // predates the backward nodes.
        return {Invariant::kDifferentiable, Invariant::kGemmKeysWarm,
                Invariant::kMemoryPlanned, Invariant::kPlanFeasible,
                Invariant::kTapeReady};
    }
    void
    run(PipelineContext &ctx) override
    {
        ECHO_CHECK(ctx.loss.defined(),
                   "autodiff pass needs ctx.loss (the scalar to "
                   "differentiate)");
        const graph::GradientResult grads =
            graph::backward(*ctx.graph, ctx.loss, ctx.wrt);
        ctx.weight_grads = grads.weight_grads;
        ctx.fetches.clear();
        ctx.fetches.push_back(ctx.loss);
        ctx.fetches.insert(ctx.fetches.end(), ctx.weight_grads.begin(),
                           ctx.weight_grads.end());
    }
};

/** Element-wise fusion; journals into ctx.fusion for the audit. */
class FusionPass : public Pass
{
  public:
    const char *name() const override { return "fusion"; }
    std::vector<Invariant> establishes() const override
    {
        return {Invariant::kFusionJournal};
    }
    std::vector<Invariant> invalidates() const override
    {
        // FusedElementwiseOp has no gradient; and retyping group sinks
        // in place means an earlier recompute snapshot no longer
        // matches the graph's history, so its audit can't replay.  The
        // rewrite also changes the schedule, so memory plans (and any
        // tape compiled against them) go stale.
        return {Invariant::kDifferentiable, Invariant::kRecomputeApplied,
                Invariant::kMemoryPlanned, Invariant::kPlanFeasible,
                Invariant::kTapeReady};
    }
    void
    run(PipelineContext &ctx) override
    {
        ctx.fusion = fusion::runFusionPass(*ctx.graph,
                                           ctx.effectiveFetches(),
                                           ctx.fusion_config);
    }
    std::vector<std::string> postconditionCheckers() const override
    {
        return {"graph-verify", "fusion-audit"};
    }
};

/** The Echo recompute rewrite; snapshots first so the audit can diff. */
class RecomputePass : public Pass
{
  public:
    const char *name() const override { return "recompute"; }
    std::vector<Invariant> preconditions() const override
    {
        // Feature maps only exist once backward consumers do.
        return {Invariant::kGradients};
    }
    std::vector<Invariant> establishes() const override
    {
        return {Invariant::kRecomputeApplied};
    }
    std::vector<Invariant> invalidates() const override
    {
        // The rewrite may redirect a fused sink's frontier into
        // recompute clones, so the fusion journal no longer replays;
        // it also appends nodes, so memory plans (and tapes) go stale.
        return {Invariant::kFusionJournal, Invariant::kDifferentiable,
                Invariant::kMemoryPlanned, Invariant::kPlanFeasible,
                Invariant::kTapeReady};
    }
    void
    run(PipelineContext &ctx) override
    {
        const std::vector<graph::Val> eff = ctx.effectiveFetches();
        ctx.recompute_snapshot =
            analysis::snapshotGraph(*ctx.graph, eff, ctx.weight_grads);
        ctx.recompute =
            runRecomputePass(*ctx.graph, eff, ctx.recompute_config);
    }
    std::vector<std::string> postconditionCheckers() const override
    {
        return {"graph-verify", "recompute-audit"};
    }
};

/** TBH-vs-THB layout decision for the representative projection. */
class LayoutPass : public Pass
{
  public:
    const char *name() const override { return "layout"; }
    std::vector<Invariant> establishes() const override
    {
        return {Invariant::kLayoutDecided};
    }
    void
    run(PipelineContext &ctx) override
    {
        // Without a representative spec the default decision stands.
        if (ctx.has_layout_spec)
            ctx.layout = layout::chooseLayout(ctx.layout_spec, ctx.gpu);
    }
    std::vector<std::string> postconditionCheckers() const override
    {
        // Never touches the graph; nothing to re-verify.
        return {};
    }
};

/** Eager GEMM-key autotuner warm-up over the current schedule. */
class GemmWarmPass : public Pass
{
  public:
    const char *name() const override { return "gemm_warm"; }
    std::vector<Invariant> establishes() const override
    {
        return {Invariant::kGemmKeysWarm};
    }
    void
    run(PipelineContext &ctx) override
    {
        ctx.gemm_keys_warmed = 0;
        const std::vector<graph::Val> eff = ctx.effectiveFetches();
        if (eff.empty() || ops::tuneMode() == ops::TuneMode::kOff)
            return;
        tune::ensureGlobalTuner();
        // Measuring schedules is a search-mode decision (mirrors the
        // executor): under kCache the registry is read-only.
        if (ops::tuneMode() != ops::TuneMode::kSearch)
            return;
        const std::vector<graph::Node *> schedule =
            graph::buildSchedule(eff);
        ctx.gemm_keys_warmed = tune::globalTuner().warmKeys(
            graph::collectGemmKeys(schedule,
                                   ThreadPool::global().numThreads()));
    }
    std::vector<std::string> postconditionCheckers() const override
    {
        return {};
    }
};

/** No transform: re-audits the fusion journal.  Requires the journal
 *  to still be intact — "audit_fusion" after "recompute" is the
 *  canonical statically-illegal established-then-clobbered example. */
class AuditFusionPass : public Pass
{
  public:
    const char *name() const override { return "audit_fusion"; }
    std::vector<Invariant> preconditions() const override
    {
        return {Invariant::kFusionJournal};
    }
    void run(PipelineContext &) override {}
    std::vector<std::string> postconditionCheckers() const override
    {
        return {"fusion-audit"};
    }
};

/** No transform: runs every registered checker (the ECHO_VERIFY=1
 *  replacement — verification as a pipeline stage). */
class VerifyPass : public Pass
{
  public:
    const char *name() const override { return "verify"; }
    void run(PipelineContext &) override {}
    std::vector<std::string> postconditionCheckers() const override
    {
        return {"graph-verify",  "lifetime",        "hazards",
                "fusion-audit",  "recompute-audit", "workspace-aliasing",
                "memory-plan",   "plan-feasible",   "tape-ready"};
    }
};

/** Derives the memory plan of the current graph into ctx.plan (the
 *  liveness analysis rides along in ctx.plan_liveness) and establishes
 *  kMemoryPlanned so downstream passes — recompute_budget's fraction
 *  budgets, the memory-plan checker — may rely on it. */
class PlanPass : public Pass
{
  public:
    const char *name() const override { return "plan"; }
    std::vector<Invariant> establishes() const override
    {
        return {Invariant::kMemoryPlanned};
    }
    std::vector<Invariant> invalidates() const override
    {
        // Replacing ctx.plan orphans any tape compiled against the
        // previous plan's offsets.
        return {Invariant::kTapeReady};
    }
    void
    run(PipelineContext &ctx) override
    {
        const std::vector<graph::Val> eff = ctx.effectiveFetches();
        ECHO_CHECK(!eff.empty(),
                   "plan pass needs fetches (set ctx.loss / ctx.fetches "
                   "or run autodiff first)");
        ctx.plan_liveness = memory::analyzeLiveness(eff, ctx.weight_grads);
        ctx.plan = memory::planMemory(ctx.plan_liveness);
        ctx.has_plan = true;
    }
    std::vector<std::string> postconditionCheckers() const override
    {
        return {"graph-verify", "memory-plan"};
    }
};

/** Lowers the planned schedule into an execution tape (graph/tape.h):
 *  flat dispatch records, transients placed at their planner offsets
 *  inside an arena of exactly ctx.plan.pool_peak_bytes.  Must follow
 *  the plan pass — the tape is compiled against ctx.plan_liveness and
 *  ctx.plan rather than re-analyzing, so the memory-plan the pipeline
 *  audited is the one the tape executes.  The tape lands in ctx.tape
 *  (shared_ptr; consumers keep it past the pipeline), and the
 *  tape-ready postcondition replays it record by record. */
class TapeCompilePass : public Pass
{
  public:
    const char *name() const override { return "tape_compile"; }
    std::vector<Invariant> preconditions() const override
    {
        return {Invariant::kMemoryPlanned};
    }
    std::vector<Invariant> establishes() const override
    {
        return {Invariant::kTapeReady};
    }
    void
    run(PipelineContext &ctx) override
    {
        ECHO_CHECK(ctx.has_plan,
                   "tape_compile needs the plan pass's memory plan");
        const std::vector<graph::Val> eff = ctx.effectiveFetches();
        ECHO_CHECK(!eff.empty(), "tape_compile needs fetches");
        ctx.tape = std::make_shared<graph::Tape>(eff, ctx.plan_liveness,
                                                 ctx.plan);
    }
    std::vector<std::string> postconditionCheckers() const override
    {
        return {"graph-verify", "tape-ready"};
    }
};

/** Budget-targeted recomputation (budget/planner.h) as a pass:
 *  `recompute_budget(bytes=256MiB)` or
 *  `recompute_budget(fraction=0.5:solver=dp)`.  Arguments are
 *  ':'-separated key=value pairs (commas separate passes in a spec):
 *
 *    bytes=N      absolute transient-pool budget ("256MiB", "1.5GiB")
 *    fraction=F   budget as a fraction of ctx.plan's pool peak (0..1];
 *                 needs the plan pass — hence the kMemoryPlanned
 *                 precondition
 *    solver=S     greedy | dp | lagrange        (default dp)
 *
 *  Exactly one of bytes/fraction is required.  The pass snapshots the
 *  graph for the recompute audit, runs planWithBudget, and re-plans
 *  memory afterwards so kMemoryPlanned stays truthful; plan-feasible
 *  then re-derives the peak and replays the allocation timeline. */
class RecomputeBudgetPass : public Pass
{
  public:
    RecomputeBudgetPass() : display_("recompute_budget") {}

    const char *name() const override { return display_.c_str(); }
    std::vector<Invariant> preconditions() const override
    {
        // Feature maps need backward consumers; fraction budgets (and
        // the post-run re-plan contract) need a current memory plan.
        return {Invariant::kGradients, Invariant::kMemoryPlanned};
    }
    std::vector<Invariant> establishes() const override
    {
        return {Invariant::kRecomputeApplied, Invariant::kMemoryPlanned,
                Invariant::kPlanFeasible};
    }
    std::vector<Invariant> invalidates() const override
    {
        // Same rewrite machinery as the recompute pass; the rewrite
        // plus the re-plan both orphan any compiled tape.
        return {Invariant::kFusionJournal, Invariant::kDifferentiable,
                Invariant::kTapeReady};
    }

    bool
    configure(const std::string &args, std::string *error) override
    {
        const auto fail = [error](const std::string &msg) {
            if (error != nullptr)
                *error = "recompute_budget: " + msg;
            return false;
        };
        if (args.empty())
            return fail("needs bytes=<size> or fraction=<0..1>");
        std::istringstream stream(args);
        std::string kv;
        while (std::getline(stream, kv, ':')) {
            const size_t eq = kv.find('=');
            if (eq == std::string::npos)
                return fail("malformed argument '" + kv +
                            "' (expected key=value)");
            const std::string key = kv.substr(0, eq);
            const std::string value = kv.substr(eq + 1);
            if (key == "bytes") {
                if (!budget::parseByteSize(value, &bytes_) || bytes_ <= 0)
                    return fail("bad byte size '" + value + "'");
            } else if (key == "fraction") {
                try {
                    fraction_ = std::stod(value);
                } catch (...) {
                    return fail("bad fraction '" + value + "'");
                }
                if (!(fraction_ > 0.0 && fraction_ <= 1.0))
                    return fail("fraction must be in (0, 1], got '" +
                                value + "'");
            } else if (key == "solver") {
                if (!budget::parseSolver(value, &solver_))
                    return fail("unknown solver '" + value +
                                "' (greedy | dp | lagrange)");
            } else {
                return fail("unknown argument '" + key +
                            "' (bytes | fraction | solver)");
            }
        }
        if ((bytes_ > 0) == (fraction_ > 0.0))
            return fail("exactly one of bytes= and fraction= is required");
        display_ = "recompute_budget(" + args + ")";
        return true;
    }

    void
    run(PipelineContext &ctx) override
    {
        const std::vector<graph::Val> eff = ctx.effectiveFetches();
        ctx.recompute_snapshot =
            analysis::snapshotGraph(*ctx.graph, eff, ctx.weight_grads);

        budget::BudgetConfig config;
        config.solver = solver_;
        config.recompute = ctx.recompute_config;
        if (fraction_ > 0.0) {
            ECHO_CHECK(ctx.has_plan,
                       "recompute_budget(fraction=...) needs the plan "
                       "pass's memory plan");
            config.budget_bytes = static_cast<int64_t>(std::llround(
                fraction_ *
                static_cast<double>(ctx.plan.pool_peak_bytes)));
        } else {
            config.budget_bytes = bytes_;
        }

        ctx.budget_config = config;
        ctx.budget_plan =
            budget::planWithBudget(*ctx.graph, eff, ctx.weight_grads,
                                   config);
        ctx.has_budget_plan = true;
        ctx.recompute = ctx.budget_plan.pass;

        // Keep kMemoryPlanned truthful across the rewrite.
        ctx.plan_liveness = memory::analyzeLiveness(eff, ctx.weight_grads);
        ctx.plan = memory::planMemory(ctx.plan_liveness);
        ctx.has_plan = true;
    }

    std::vector<std::string> postconditionCheckers() const override
    {
        return {"graph-verify", "recompute-audit", "plan-feasible"};
    }

  private:
    std::string display_;
    int64_t bytes_ = 0;
    double fraction_ = 0.0;
    budget::Solver solver_ = budget::Solver::kChainDp;
};

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

struct PassRegistry
{
    std::mutex mu;
    std::map<std::string, PassFactory> factories;
};

PassRegistry &
passRegistry()
{
    static PassRegistry reg;
    return reg;
}

std::once_flag builtin_passes_once;

template <typename T>
PassFactory
factoryOf()
{
    return [] { return std::make_unique<T>(); };
}

void
ensureBuiltinPasses()
{
    std::call_once(builtin_passes_once, [] {
        registerPass("autodiff", factoryOf<AutodiffPass>());
        registerPass("fusion", factoryOf<FusionPass>());
        registerPass("recompute", factoryOf<RecomputePass>());
        registerPass("layout", factoryOf<LayoutPass>());
        registerPass("gemm_warm", factoryOf<GemmWarmPass>());
        registerPass("audit_fusion", factoryOf<AuditFusionPass>());
        registerPass("verify", factoryOf<VerifyPass>());
        registerPass("plan", factoryOf<PlanPass>());
        registerPass("recompute_budget", factoryOf<RecomputeBudgetPass>());
        registerPass("tape_compile", factoryOf<TapeCompilePass>());
    });
}

bool
envEquals(const char *name, const char *value)
{
    const char *env = std::getenv(name);
    return env != nullptr && std::strcmp(env, value) == 0;
}

std::string
joinSpec(const std::vector<std::string> &names)
{
    std::ostringstream oss;
    for (size_t i = 0; i < names.size(); ++i) {
        if (i > 0)
            oss << ",";
        oss << names[i];
    }
    return oss.str();
}

/** Split a spec element "name(args)" into its registered name and the
 *  argument text between the parentheses ("" when absent).  False on
 *  unbalanced parentheses. */
bool
splitPassElement(const std::string &element, std::string *base,
                 std::string *args)
{
    const size_t open = element.find('(');
    if (open == std::string::npos) {
        *base = element;
        args->clear();
        return true;
    }
    if (element.back() != ')' || open + 1 > element.size() - 1)
        return false;
    *base = element.substr(0, open);
    *args = element.substr(open + 1, element.size() - open - 2);
    return true;
}

} // namespace

void
registerPass(const std::string &name, PassFactory factory)
{
    ECHO_CHECK(factory != nullptr, "pass factory '", name, "' is null");
    ECHO_CHECK(name.find(',') == std::string::npos,
               "pass name '", name, "' may not contain a comma");
    PassRegistry &reg = passRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto [it, inserted] = reg.factories.emplace(name, std::move(factory));
    (void)it;
    ECHO_CHECK(inserted, "pass '", name, "' registered twice");
}

bool
isRegisteredPass(const std::string &name)
{
    ensureBuiltinPasses();
    std::string base, args;
    if (!splitPassElement(name, &base, &args))
        return false;
    PassRegistry &reg = passRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    return reg.factories.count(base) != 0;
}

std::vector<std::string>
registeredPassNames()
{
    ensureBuiltinPasses();
    PassRegistry &reg = passRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::vector<std::string> names;
    names.reserve(reg.factories.size());
    for (const auto &[name, factory] : reg.factories)
        names.push_back(name);
    return names;
}

std::unique_ptr<Pass>
makePass(const std::string &name)
{
    return makePass(name, nullptr);
}

std::unique_ptr<Pass>
makePass(const std::string &name, std::string *error)
{
    ensureBuiltinPasses();
    std::string base, args;
    if (!splitPassElement(name, &base, &args)) {
        if (error != nullptr)
            *error = "malformed pass element '" + name +
                     "' (expected name or name(args))";
        return nullptr;
    }
    PassFactory factory;
    {
        PassRegistry &reg = passRegistry();
        std::lock_guard<std::mutex> lock(reg.mu);
        auto it = reg.factories.find(base);
        if (it == reg.factories.end()) {
            if (error != nullptr)
                *error = "unknown pass '" + base + "'";
            return nullptr;
        }
        factory = it->second;
    }
    std::unique_ptr<Pass> pass = factory();
    std::string configure_error;
    if (!pass->configure(args, &configure_error)) {
        if (error != nullptr)
            *error = configure_error.empty()
                         ? "bad arguments '" + args + "' for pass '" +
                               base + "'"
                         : configure_error;
        return nullptr;
    }
    return pass;
}

std::string
presetSpec(const std::string &name)
{
    // Per-workload pipelines (one level deep: presets expand to real
    // pass names only).  Serving graphs are forward-only, so no
    // autodiff; gemm_warm pre-tunes the skewed decode shapes; the NMT
    // preset re-audits the fusion journal because its attention chains
    // are the most fusion-stressed graphs we build.
    if (name == "serve-wordlm")
        return "fusion,gemm_warm";
    if (name == "serve-nmt")
        return "fusion,audit_fusion,gemm_warm";
    return "";
}

std::vector<std::string>
parseSpec(const std::string &spec)
{
    std::vector<std::string> names;
    std::string current;
    std::istringstream stream(spec);
    while (std::getline(stream, current, ',')) {
        const size_t first = current.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue;
        const std::string name =
            current.substr(first, current.find_last_not_of(" \t") -
                                      first + 1);
        const std::string preset = presetSpec(name);
        if (preset.empty()) {
            names.push_back(name);
            continue;
        }
        for (const std::string &expanded : parseSpec(preset))
            names.push_back(expanded);
    }
    if (names.size() == 1 && names[0] == "none")
        names.clear();
    return names;
}

std::string
defaultSpec(PipelineKind kind)
{
    switch (kind) {
      case PipelineKind::kTraining:
        return "autodiff,fusion";
      case PipelineKind::kInference:
        return "fusion";
      case PipelineKind::kServeWordLm:
        return "serve-wordlm";
      case PipelineKind::kServeNmt:
        return "serve-nmt";
    }
    return "";
}

std::string
resolveSpec(PipelineKind kind, const std::string &requested)
{
    if (!requested.empty())
        return requested;
    if (const char *env = std::getenv("ECHO_PASSES");
        env != nullptr && env[0] != '\0') {
        return env;
    }

    std::vector<std::string> names = parseSpec(defaultSpec(kind));
    if (envEquals("ECHO_FUSION", "0")) {
        static std::once_flag warned;
        std::call_once(warned, [] {
            ECHO_WARN("ECHO_FUSION=0 is deprecated; set ECHO_PASSES to a "
                      "spec without 'fusion' instead (rewriting the "
                      "default pipeline)");
        });
        names.erase(std::remove(names.begin(), names.end(), "fusion"),
                    names.end());
    }
    if (envEquals("ECHO_VERIFY", "1")) {
        static std::once_flag warned;
        std::call_once(warned, [] {
            ECHO_WARN("ECHO_VERIFY=1 is deprecated; append 'verify' to "
                      "ECHO_PASSES instead (rewriting the default "
                      "pipeline)");
        });
        names.push_back("verify");
    }
    if (names.empty())
        return "none";
    return joinSpec(names);
}

PassManager
buildPipeline(const std::string &spec)
{
    PassManager pm;
    for (const std::string &name : parseSpec(spec)) {
        std::string error;
        std::unique_ptr<Pass> pass = makePass(name, &error);
        if (pass == nullptr) {
            ECHO_FATAL(error, " in pipeline spec '", spec,
                       "'; registered passes: ",
                       joinSpec(registeredPassNames()));
        }
        pm.add(std::move(pass));
    }
    return pm;
}

} // namespace echo::pass
