#include "pass/contracts.h"

namespace echo::pass {

const char *
invariantName(Invariant inv)
{
    switch (inv) {
      case Invariant::kDifferentiable:
        return "differentiable";
      case Invariant::kGradients:
        return "gradients";
      case Invariant::kFusionJournal:
        return "fusion-journal";
      case Invariant::kRecomputeApplied:
        return "recompute-applied";
      case Invariant::kLayoutDecided:
        return "layout-decided";
      case Invariant::kGemmKeysWarm:
        return "gemm-keys-warm";
      case Invariant::kMemoryPlanned:
        return "memory-planned";
      case Invariant::kPlanFeasible:
        return "plan-feasible";
      case Invariant::kTapeReady:
        return "tape-ready";
    }
    return "unknown-invariant";
}

} // namespace echo::pass
