/**
 * @file
 * Contract-checked pass manager over the training dataflow graph.
 *
 * Every transform in the repo — autodiff, element-wise fusion, the Echo
 * recompute rewrite, layout choice, GEMM-key warming — registers as a
 * Pass that declares its invariant contract (preconditions /
 * establishes / invalidates, see pass/contracts.h).  The PassManager
 *
 *  (a) validates pipeline legality STATICALLY before running anything:
 *      every precondition must be established by an upstream pass (or
 *      hold initially) and not clobbered by an intervening invalidating
 *      pass.  Violations come back as ContractViolation records naming
 *      the offending pass pair, so `echo-lint --pipeline` and tests can
 *      print exactly which ordering rule broke;
 *
 *  (b) runs the matching analysis:: checkers as machine-checked
 *      postconditions after each pass (graph verifier, lifetime
 *      analyzer, hazard detector, auditFusion, auditRecomputePass,
 *      workspace-aliasing — see the checker registry), never trusting a
 *      transform's own bookkeeping;
 *
 *  (c) records a per-pass IR snapshot diff (node / reachable / value /
 *      byte deltas) through obs spans and counters, so a trace of a
 *      training run shows what every pass did to the graph.
 *
 * Pipelines are built from a comma-separated spec string
 * (`ECHO_PASSES="autodiff,fusion,recompute"`) via pass/builtin_passes.h.
 */
#ifndef ECHO_PASS_PASS_MANAGER_H
#define ECHO_PASS_PASS_MANAGER_H

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "budget/planner.h"
#include "echo/recompute_pass.h"
#include "graph/fusion.h"
#include "layout/layout_optimizer.h"
#include "memory/liveness.h"
#include "memory/planner.h"
#include "pass/contracts.h"
#include "rnn/rnn_config.h"

namespace echo::graph {
class Tape;
} // namespace echo::graph

namespace echo::pass {

/**
 * Everything a pipeline run threads from pass to pass: the graph under
 * rewrite, the autodiff inputs, the outputs so far, and each pass's
 * journal artifacts (consumed by the postcondition checkers).
 */
struct PipelineContext
{
    explicit PipelineContext(graph::Graph &g) : graph(&g) {}

    graph::Graph *graph;

    /** Autodiff inputs: scalar loss and the weights to differentiate. */
    graph::Val loss{};
    std::vector<graph::Val> wrt;

    /** Training-iteration outputs.  Set by the autodiff pass (loss
     *  followed by weight grads); preset by the caller for inference
     *  pipelines that never differentiate. */
    std::vector<graph::Val> fetches;
    std::vector<graph::Val> weight_grads;

    /** Element-wise fusion journal (fusion pass). */
    fusion::FusionResult fusion;
    fusion::FusionConfig fusion_config;

    /** Echo recompute configuration, result, and pre-pass snapshot
     *  (recompute pass; the snapshot feeds auditRecomputePass). */
    PassConfig recompute_config;
    PassResult recompute;
    std::optional<analysis::GraphSnapshot> recompute_snapshot;

    /** Layout pass input (the stack's representative projection) and
     *  decision. */
    bool has_layout_spec = false;
    rnn::LstmSpec layout_spec;
    layout::LayoutDecision layout;
    gpusim::GpuSpec gpu = gpusim::GpuSpec::titanXp();

    /** GEMM keys the gemm_warm pass resolved (-1: pass never ran). */
    int gemm_keys_warmed = -1;

    /** Memory plan of the current graph (plan pass; re-derived by
     *  recompute_budget after its rewrite).  The memory-plan checker
     *  re-plans and compares while kMemoryPlanned holds. */
    bool has_plan = false;
    memory::LivenessResult plan_liveness;
    memory::MemoryPlan plan;

    /** Budget-targeted recomputation (recompute_budget pass): what was
     *  asked and what the planner decided/measured.  The plan-feasible
     *  checker replays the allocation timeline against it. */
    budget::BudgetConfig budget_config;
    budget::BudgetPlan budget_plan;
    bool has_budget_plan = false;

    /** Execution tape compiled against `plan` (tape_compile pass; the
     *  tape-ready checker replays it against its liveness analysis).
     *  shared_ptr so pipeline consumers — trainers, serving sessions —
     *  can keep running the tape after the context is gone. */
    std::shared_ptr<graph::Tape> tape;

    /** Serving workspace journal, for the workspace-aliasing checker
     *  (empty outside serving replays). */
    std::vector<analysis::SlotInterval> serve_journal;
    int serve_slots = 0;

    /** Invariants currently established.  Seeded by PassManager::run
     *  from initialInvariants() and maintained across passes; checkers
     *  consult it to decide applicability. */
    std::set<Invariant> holds;

    /** Extra invariants the caller vouches for at pipeline entry (for
     *  resuming a pipeline mid-way with externally produced state). */
    std::vector<Invariant> assume;

    /** The fetch set analyses should use: fetches when set, else the
     *  loss closure (pre-autodiff), else empty. */
    std::vector<graph::Val> effectiveFetches() const;

    /** Invariants that hold before the first pass: kDifferentiable for
     *  a fresh forward graph, kGradients when weight_grads is already
     *  populated, plus everything in `assume`. */
    std::set<Invariant> initialInvariants() const;
};

/**
 * One registered transform.  The docs talk about requires() /
 * establishes() / invalidates(); `requires` is a C++20 keyword, so the
 * first hook is spelled preconditions().
 */
class Pass
{
  public:
    virtual ~Pass() = default;

    virtual const char *name() const = 0;

    /** Invariants that must hold before this pass may run. */
    virtual std::vector<Invariant> preconditions() const { return {}; }
    /** Invariants this pass establishes. */
    virtual std::vector<Invariant> establishes() const { return {}; }
    /** Previously established invariants this pass destroys. */
    virtual std::vector<Invariant> invalidates() const { return {}; }

    /** Accept the argument string from a `name(arg:arg:...)` spec
     *  element (the text between the parentheses; ':' separates
     *  arguments because ',' separates passes).  Returns false and
     *  fills @p error on malformed input.  The default accepts only an
     *  empty argument list. */
    virtual bool
    configure(const std::string &args, std::string *error)
    {
        if (args.empty())
            return true;
        if (error != nullptr)
            *error = std::string(name()) + " takes no arguments";
        return false;
    }

    /** Apply the transform. */
    virtual void run(PipelineContext &ctx) = 0;

    /** Names of registered checkers to run as postconditions of this
     *  pass (the manager runs them in order after run() returns). */
    virtual std::vector<std::string> postconditionCheckers() const
    {
        return {"graph-verify"};
    }
};

// ---------------------------------------------------------------------
// Checker registry
// ---------------------------------------------------------------------

/** A postcondition checker: pure analysis, never mutates the context.
 *  Checkers self-gate on ctx.holds (e.g. fusion-audit is a no-op until
 *  kFusionJournal holds), so running every registered checker between
 *  passes — echo-lint --pipeline's replay mode — is always safe. */
using Checker =
    std::function<analysis::AnalysisReport(const PipelineContext &)>;

/** Register a checker under @p name (panics on duplicates). */
void registerChecker(const std::string &name, Checker fn);

/** The registered checker, or nullptr. */
const Checker *findChecker(const std::string &name);

/** All registered checker names, sorted. */
std::vector<std::string> registeredCheckerNames();

// ---------------------------------------------------------------------
// Pipeline-legality diagnostics
// ---------------------------------------------------------------------

/** One statically detected contract violation. */
struct ContractViolation
{
    /** Position (0-based) and name of the pass whose precondition is
     *  unsatisfied. */
    size_t pass_index = 0;
    std::string pass;
    /** The missing invariant. */
    Invariant invariant = Invariant::kDifferentiable;
    /** Pass that would establish it (earlier pass whose establishment
     *  was clobbered, or a later pass that comes too late); empty when
     *  nothing in the pipeline establishes it. */
    std::string establisher;
    /** Pass that invalidated it in between; empty when it was simply
     *  never established. */
    std::string invalidator;
    /** Full human-readable diagnostic. */
    std::string message;
};

/** What one pipeline stage did, for reports and tests. */
struct StageReport
{
    std::string pass;
    /** IR snapshot diff: graph nodes / reachable nodes / reachable
     *  values / reachable value bytes, before and after the pass. */
    int64_t nodes_before = 0, nodes_after = 0;
    int64_t reachable_before = 0, reachable_after = 0;
    int64_t values_before = 0, values_after = 0;
    int64_t bytes_before = 0, bytes_after = 0;
    /** Checkers that ran as postconditions of this stage. */
    std::vector<std::string> checkers_run;
    /** Their merged findings. */
    analysis::AnalysisReport post;
};

/** Everything one PassManager::run produced. */
struct PipelineReport
{
    std::vector<StageReport> stages;
    /** True when a stage's postconditions failed and the run stopped. */
    bool aborted = false;

    bool ok() const;
    /** Per-stage one-line summary plus every diagnostic. */
    std::string toString() const;
};

// ---------------------------------------------------------------------
// PassManager
// ---------------------------------------------------------------------

class PassManager
{
  public:
    PassManager() = default;
    PassManager(PassManager &&) = default;
    PassManager &operator=(PassManager &&) = default;

    /** Append a pass to the pipeline. */
    void add(std::unique_ptr<Pass> pass);

    size_t size() const { return passes_.size(); }
    const Pass &at(size_t i) const { return *passes_[i]; }

    /** The pipeline as a spec string ("autodiff,fusion,..."). */
    std::string spec() const;

    /**
     * Static pipeline-legality check: walk the declared contracts from
     * @p initial without running anything.  Empty result = legal.
     */
    std::vector<ContractViolation>
    validate(const std::set<Invariant> &initial) const;

    struct RunOptions
    {
        /** Run EVERY registered checker between passes (the replay-lint
         *  mode) instead of each pass's declared postconditions. */
        bool all_checkers = false;
        /** Panic on the first postcondition error instead of returning
         *  the report (production call sites). */
        bool die_on_error = false;
        /** Who is running the pipeline, for diagnostics. */
        const char *what = "pipeline";
    };

    /**
     * Run the pipeline over @p ctx.  Panics if validate() finds the
     * pipeline illegal — call sites must only run legal pipelines; use
     * validate() first to report violations gracefully.  A stage whose
     * postconditions find errors stops the run (aborted = true) or
     * panics under die_on_error.
     */
    PipelineReport run(PipelineContext &ctx, const RunOptions &opts) const;

    PipelineReport
    run(PipelineContext &ctx) const
    {
        return run(ctx, RunOptions{});
    }

    /** run() with die_on_error, naming @p what in any panic. */
    void runOrDie(PipelineContext &ctx, const char *what) const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

} // namespace echo::pass

#endif // ECHO_PASS_PASS_MANAGER_H
