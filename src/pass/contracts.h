/**
 * @file
 * Named invariant contracts of the pass pipeline.
 *
 * Every transform registered with the PassManager declares its contract
 * in terms of these invariants: which ones it needs to already hold
 * (`preconditions()` — the paper-facing docs call this `requires()`,
 * but `requires` is a C++20 keyword), which ones it `establishes()`,
 * and which previously established ones it `invalidates()`.  The
 * manager checks pipeline legality statically from these declarations
 * alone — before any pass runs — and tracks the set of invariants that
 * hold while the pipeline executes so postcondition checkers know what
 * they may assume.
 */
#ifndef ECHO_PASS_CONTRACTS_H
#define ECHO_PASS_CONTRACTS_H

#include <cstdint>

namespace echo::pass {

/** The invariants passes trade in.  See invariantName for the stable
 *  kebab-case spelling used in diagnostics and docs. */
enum class Invariant : uint8_t {
    /** The graph consists solely of ops autodiff can differentiate and
     *  has not been rewritten since construction.  Holds for a freshly
     *  built forward graph; fusion destroys it (FusedElementwiseOp has
     *  no gradient), and so do autodiff itself (one-shot per pipeline)
     *  and the recompute rewrite. */
    kDifferentiable,
    /** Backward nodes exist and ctx.weight_grads names one gradient per
     *  requested weight.  Established by the autodiff pass. */
    kGradients,
    /** The element-wise fusion journal (ctx.fusion) is auditable: every
     *  fused group's frontier still points at the values recorded when
     *  the group was formed.  The recompute pass may redirect a fused
     *  sink's frontier into recomputed clones, clobbering this. */
    kFusionJournal,
    /** The Echo recompute rewrite has been applied and its pre-pass
     *  snapshot (ctx.recompute_snapshot) matches the current graph's
     *  history, so auditRecomputePass can diff against it.  A later
     *  fusion pass retypes snapshot-era nodes in place and clobbers
     *  this. */
    kRecomputeApplied,
    /** A data-layout decision (TBH vs THB) has been recorded for the
     *  model's representative recurrent projection. */
    kLayoutDecided,
    /** The GEMM schedule registry has been warmed for every GEMM key
     *  the current graph launches.  Any pass that appends GEMM-bearing
     *  nodes (autodiff's backward projections) invalidates it. */
    kGemmKeysWarm,
    /** ctx.plan holds a memory plan derived from the *current* graph
     *  (ctx.plan_liveness is the matching liveness analysis).
     *  Established by the plan pass; any pass that rewrites the graph
     *  afterwards invalidates it unless it re-plans itself. */
    kMemoryPlanned,
    /** A budget-targeted recomputation plan (ctx.budget_plan) has been
     *  produced for the current graph and its measured pool peak fits
     *  the requested byte budget.  Established by recompute_budget;
     *  checked post-hoc by the plan-feasible checker, which re-derives
     *  the pool peak and replays the allocation timeline. */
    kPlanFeasible,
    /** ctx.tape holds an execution tape compiled against ctx.plan: the
     *  schedule lowered to flat dispatch records with every transient
     *  placed at its planner offset inside an arena of exactly
     *  pool_peak_bytes.  Established by tape_compile; any pass that
     *  rewrites the graph or replaces the plan invalidates it.  The
     *  tape-ready checker replays the tape's records against its
     *  liveness analysis (analysis::auditTape). */
    kTapeReady,
};

/** Stable kebab-case name ("differentiable", "gradients", ...). */
const char *invariantName(Invariant inv);

} // namespace echo::pass

#endif // ECHO_PASS_CONTRACTS_H
