/**
 * @file
 * google-benchmark microbenchmarks of the observability layer's cost.
 *
 * The contract of src/obs is "near-zero disabled overhead": every
 * instrumentation site compiles down to one relaxed atomic load when no
 * trace is active, and counters are one relaxed fetch_add whether or
 * not a trace is active.  These benches pin numbers on that contract:
 *
 *  - DisabledSpanSite: the exact guarded-span pattern the executor
 *    uses, with tracing off — the per-op tax paid by every node.
 *  - DisabledEmit: emitEvent() with tracing off (the pass / planner
 *    instant-event sites).
 *  - CounterAdd: one counter tick (always live).
 *  - EnabledSpan / EnabledInstant: the enabled-path cost, for scale.
 *  - TracedVsUntracedRun: a full small-graph executor run with and
 *    without tracing, the end-to-end regression check (< 2% target).
 */
#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "graph/executor.h"
#include "graph/ops/oplib.h"
#include "obs/obs.h"

using namespace echo;

namespace {

namespace ol = graph::oplib;

void
disabledSpanSite(benchmark::State &state)
{
    int64_t i = 0;
    for (auto _ : state) {
        obs::Span span;
        if (obs::traceEnabled())
            span.begin("bench", "site", {{"i", i}});
        ++i;
        benchmark::DoNotOptimize(i);
    }
}
BENCHMARK(disabledSpanSite)->Name("obs/DisabledSpanSite");

void
disabledEmit(benchmark::State &state)
{
    for (auto _ : state) {
        if (obs::traceEnabled())
            obs::emitEvent('i', "bench", "instant");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(disabledEmit)->Name("obs/DisabledEmit");

void
counterAdd(benchmark::State &state)
{
    static obs::Counter &c = obs::counter("bench.ticks");
    for (auto _ : state)
        c.add(1);
}
BENCHMARK(counterAdd)->Name("obs/CounterAdd");

void
enabledSpan(benchmark::State &state)
{
    obs::startTrace();
    int64_t i = 0;
    for (auto _ : state) {
        obs::Span span("bench", "site", {{"i", i}});
        ++i;
    }
    obs::stopTrace();
}
BENCHMARK(enabledSpan)->Name("obs/EnabledSpan");

void
enabledInstant(benchmark::State &state)
{
    obs::startTrace();
    for (auto _ : state)
        obs::emitEvent('i', "bench", "instant");
    obs::stopTrace();
}
BENCHMARK(enabledInstant)->Name("obs/EnabledInstant");

/** A small elementwise chain; per-op cost is low, so instrumentation
 *  overhead shows up clearly. */
struct ChainModel
{
    graph::Graph g;
    graph::Val x, y;

    ChainModel()
    {
        x = g.placeholder(Shape({64, 64}), "x");
        graph::Val v = x;
        for (int i = 0; i < 32; ++i)
            v = g.apply1(i % 2 ? ol::tanhOp() : ol::sigmoidOp(), {v});
        y = v;
    }
};

void
tracedVsUntracedRun(benchmark::State &state)
{
    const bool traced = state.range(0) != 0;
    ChainModel m;
    graph::Executor ex({m.y}, graph::ExecMode::kSerial);
    Rng rng(7);
    graph::FeedDict feed;
    feed[m.x.node] = Tensor::uniform(Shape({64, 64}), rng);

    if (traced)
        obs::startTrace();
    for (auto _ : state) {
        benchmark::DoNotOptimize(ex.run(feed));
        if (traced) {
            // Keep the buffers bounded over long bench runs.
            state.PauseTiming();
            obs::startTrace();
            state.ResumeTiming();
        }
    }
    if (traced)
        obs::stopTrace();
    state.SetLabel(traced ? "traced" : "untraced");
}
BENCHMARK(tracedVsUntracedRun)
    ->Name("obs/GraphRun")
    ->Arg(0)
    ->Arg(1);

} // namespace

BENCHMARK_MAIN();
