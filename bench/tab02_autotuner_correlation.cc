/**
 * @file
 * Table 2 + Fig. 11 — the autotuning microbenchmark: per-backend
 * microbenchmark times, the backend it selects for each LM
 * configuration, and the Pearson correlation between 1/T(microbench)
 * and the full-model training throughput that justifies using the
 * microbenchmark as the selector.
 */
#include "bench_common.h"
#include "core/stats.h"
#include "layout/autotuner.h"
#include "models/word_lm.h"
#include "train/simulation.h"

using namespace echo;

namespace {

double
runDataset(const char *name, int64_t vocab, const std::string &csv_name)
{
    std::printf("--- %s (vocab %lld) ---\n", name,
                static_cast<long long>(vocab));
    Table table({"hidden", "backend", "microbench (us)",
                 "LM throughput (samp/s)", "selected"});
    std::vector<double> inv_micro;
    std::vector<double> train_thpt;
    for (const int64_t hidden : {200, 650, 1500}) {
        rnn::LstmSpec spec;
        spec.input_size = hidden;
        spec.hidden = hidden;
        spec.layers = 2;
        spec.batch = 32;
        spec.seq_len = 35;
        const layout::AutotuneResult tuned =
            layout::autotune(spec, gpusim::GpuSpec::titanXp());

        for (const rnn::RnnBackend backend :
             {rnn::RnnBackend::kDefault, rnn::RnnBackend::kCudnn,
              rnn::RnnBackend::kEco}) {
            models::WordLmConfig cfg;
            cfg.vocab = vocab;
            cfg.hidden = hidden;
            cfg.layers = 2;
            cfg.batch = 32;
            cfg.seq_len = 35;
            cfg.backend = backend;
            models::WordLmModel model(cfg);
            const auto prof = train::profileIteration(
                model.fetches(), model.weightGrads());
            const double micro = tuned.iteration_time_us.at(backend);
            const double thpt = prof.throughput(cfg.batch);
            inv_micro.push_back(1.0 / micro);
            train_thpt.push_back(thpt);
            table.addRow({std::to_string(hidden),
                          rnn::backendName(backend),
                          Table::fmt(micro, 0), Table::fmt(thpt, 0),
                          backend == tuned.best ? "<== picked" : ""});
        }
    }
    bench::emit(table, csv_name);
    return pearsonCorrelation(inv_micro, train_thpt);
}

} // namespace

int
main()
{
    bench::begin("Table 2 / Fig. 11: autotuning microbenchmark",
                 "1/T on the pure-LSTM microbenchmark predicts the "
                 "full LM training throughput, so the tuner can pick "
                 "the backend transparently before training starts.");

    const double rho_ptb =
        runDataset("PTB-scale", 10000, "tab02_ptb");
    const double rho_wt2 =
        runDataset("Wikitext-2-scale", 33278, "tab02_wikitext2");

    Table table({"dataset", "correlation rho(1/T, throughput)",
                 "paper"});
    table.addRow({"PTB", Table::fmt(rho_ptb, 3), "0.971"});
    table.addRow({"Wikitext-2", Table::fmt(rho_wt2, 3), "0.950"});
    bench::emit(table, "tab02_correlation");
    bench::note("paper: the microbenchmark runs once (~0.1 s) before "
                "training and its runtime is highly correlated with "
                "training throughput.");
    return 0;
}
