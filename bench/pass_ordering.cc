/**
 * @file
 * Pass-ordering experiment: element-wise fusion BEFORE vs AFTER the
 * Echo recompute rewrite.
 *
 * Both orderings are statically legal under the declared contracts
 * (fusion invalidates kRecomputeApplied and recompute invalidates
 * kFusionJournal, but nothing downstream requires either), and both
 * must produce byte-identical training results — so the ordering is
 * purely a footprint/throughput trade-off, measured here on the word
 * LM:
 *
 *  - fusion FIRST hands the recompute cost model a fused forward
 *    graph (fused sinks stash one value where the unfused chain
 *    stashed several);
 *  - fusion LAST runs over a graph whose replay regions already
 *    compiled: their template nodes are pinned (Op::pinnedNodes), so
 *    late fusion must skip them and finds fewer groups.
 *
 * Prints regions/groups, planned device footprint, simulated iteration
 * time, and measured host iteration medians; mirrors to
 * results/pass_ordering.csv.
 */
#include <algorithm>
#include <chrono>
#include <vector>

#include "bench_common.h"
#include "data/batcher.h"
#include "graph/executor.h"
#include "models/word_lm.h"
#include "pass/builtin_passes.h"
#include "train/simulation.h"

using namespace echo;

namespace {

models::WordLmConfig
benchConfig()
{
    models::WordLmConfig cfg;
    cfg.vocab = 1000;
    cfg.hidden = 256;
    cfg.layers = 2;
    cfg.batch = 32;
    cfg.seq_len = 35;
    return cfg;
}

struct Row
{
    std::string spec;
    int fused_groups = 0;
    int regions = 0;
    int64_t stash_saved = 0;
    int64_t device_bytes = 0;
    double sim_iter_ms = 0.0;
    double host_median_ms = 0.0;
};

Row
run(const std::string &spec)
{
    models::WordLmModel model(benchConfig(), "none");
    pass::PipelineContext ctx(model.graph());
    ctx.loss = model.loss();
    for (const auto &[name, val] : model.weights())
        ctx.wrt.push_back(val);
    // Unlimited replay budget: the ordering question is about which
    // regions exist, not about budget clipping.
    ctx.recompute_config.overhead_budget_fraction = -1.0;
    pass::buildPipeline(spec).runOrDie(ctx, "pass_ordering bench");

    Row row;
    row.spec = spec;
    row.fused_groups = ctx.fusion.num_groups;
    row.regions = ctx.recompute.num_regions;
    row.stash_saved = ctx.recompute.bytes_saved;

    const std::vector<graph::Val> fetches = ctx.effectiveFetches();
    const train::IterationProfile prof =
        train::profileIteration(fetches, ctx.weight_grads);
    row.device_bytes = prof.memory.device_bytes;
    row.sim_iter_ms = prof.runtime.wall_time_us * 1e-3;

    // Host-side medians over repeated identical iterations.
    Rng rng(7);
    models::ParamStore params = model.initialParams(rng);
    data::CorpusConfig cc;
    cc.vocab = data::Vocab{benchConfig().vocab};
    cc.num_tokens = 40000;
    cc.seed = 5;
    const data::Corpus corpus = data::Corpus::generate(cc);
    data::LmBatcher batcher(corpus, benchConfig().batch,
                            benchConfig().seq_len);
    const data::LmBatch batch = batcher.next();
    graph::Executor ex(fetches);
    const graph::FeedDict feed = model.makeFeed(params, batch);
    ex.run(feed); // warm-up
    std::vector<double> ms;
    for (int i = 0; i < 7; ++i) {
        const auto start = std::chrono::steady_clock::now();
        ex.run(feed);
        ms.push_back(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count());
    }
    std::sort(ms.begin(), ms.end());
    row.host_median_ms = ms[ms.size() / 2];
    return row;
}

std::string
fmtMs(double ms)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f ms", ms);
    return buf;
}

} // namespace

int
main()
{
    bench::begin("Pass ordering: fusion before vs after recompute "
                 "(word LM, B=32, T=35, H=256)",
                 "Both orderings are contract-legal and byte-exact; "
                 "this measures the footprint/throughput trade.");

    Table table({"pipeline", "fused groups", "regions", "stash saved",
                 "device memory", "sim iter", "host iter (median)"});
    for (const char *spec :
         {"autodiff", "autodiff,fusion", "autodiff,recompute",
          "autodiff,fusion,recompute", "autodiff,recompute,fusion"}) {
        const Row row = run(spec);
        table.addRow({row.spec, std::to_string(row.fused_groups),
                      std::to_string(row.regions),
                      Table::fmtBytes(
                          static_cast<uint64_t>(row.stash_saved)),
                      Table::fmtBytes(
                          static_cast<uint64_t>(row.device_bytes)),
                      fmtMs(row.sim_iter_ms),
                      fmtMs(row.host_median_ms)});
    }
    bench::emit(table, "pass_ordering");
    bench::note("fusion-first fuses the forward graph the recompute "
                "cost model sees; fusion-last must skip the pinned "
                "replay templates and finds fewer groups.");
    return 0;
}
