/**
 * @file
 * Fig. 20 — pure-LSTM runtime grid: forward and backward time for
 * Default / CuDNN / EcoRNN across batch {32, 64, 128} x hidden
 * {256, 512, 1024} x layers {1..4}, sequence length 50.
 */
#include "bench_common.h"
#include "graph/autodiff.h"
#include "graph/ops/oplib.h"
#include "gpusim/timeline.h"
#include "rnn/stack.h"

using namespace echo;
namespace ol = echo::graph::oplib;

namespace {

struct FwdBwd
{
    double fwd_us;
    double bwd_us;
};

FwdBwd
measure(const rnn::LstmSpec &spec, rnn::RnnBackend backend)
{
    graph::Graph g;
    const graph::Val x = g.placeholder(
        Shape({spec.seq_len, spec.batch, spec.input_size}), "x");
    const rnn::LstmStack stack =
        rnn::buildLstmStack(g, x, spec, backend, "lstm");
    const int64_t numel = spec.seq_len * spec.batch * spec.hidden;
    const graph::Val flat =
        g.apply1(ol::reshape(Shape({1, 1, numel})), {stack.hs});
    const graph::Val ones =
        g.apply1(ol::constant(Shape({numel}), 1.0f), {});
    const graph::Val loss = g.apply1(
        ol::reshape(Shape({1})),
        {g.apply1(ol::dotLastAxis(), {flat, ones})});
    std::vector<graph::Val> wrt;
    for (const rnn::LstmWeights &w : stack.weights) {
        wrt.push_back(w.wx);
        wrt.push_back(w.wh);
        wrt.push_back(w.bias);
    }
    const auto gr = graph::backward(g, loss, wrt);
    std::vector<graph::Val> fetches = {loss};
    fetches.insert(fetches.end(), gr.weight_grads.begin(),
                   gr.weight_grads.end());
    const auto rep =
        gpusim::simulateRun(fetches, gpusim::GpuSpec::titanXp());
    FwdBwd out;
    auto phase = [&](const char *name) {
        auto it = rep.wall_time_by_phase.find(name);
        return it == rep.wall_time_by_phase.end() ? 0.0 : it->second;
    };
    out.fwd_us = phase("forward");
    out.bwd_us = phase("backward") + phase("recompute");
    return out;
}

} // namespace

int
main()
{
    bench::begin("Fig. 20: pure LSTM runtime grid (T=50)",
                 "Default / CuDNN / EcoRNN forward+backward times.");

    Table table({"B", "H", "L", "Default fwd+bwd (us)",
                 "CuDNN fwd+bwd (us)", "Eco fwd+bwd (us)",
                 "Default/Eco", "CuDNN/Eco"});
    double max_d_over_e = 0.0, max_c_over_e = 0.0, min_c_over_e = 1e9;
    for (const int64_t b : {32, 64, 128}) {
        for (const int64_t h : {256, 512, 1024}) {
            for (const int64_t l : {1, 2, 3, 4}) {
                rnn::LstmSpec spec;
                spec.input_size = h;
                spec.hidden = h;
                spec.layers = l;
                spec.batch = b;
                spec.seq_len = 50;
                const FwdBwd d =
                    measure(spec, rnn::RnnBackend::kDefault);
                const FwdBwd c =
                    measure(spec, rnn::RnnBackend::kCudnn);
                const FwdBwd e = measure(spec, rnn::RnnBackend::kEco);
                const double dt = d.fwd_us + d.bwd_us;
                const double ct = c.fwd_us + c.bwd_us;
                const double et = e.fwd_us + e.bwd_us;
                max_d_over_e = std::max(max_d_over_e, dt / et);
                max_c_over_e = std::max(max_c_over_e, ct / et);
                min_c_over_e = std::min(min_c_over_e, ct / et);
                table.addRow({std::to_string(b), std::to_string(h),
                              std::to_string(l), Table::fmt(dt, 0),
                              Table::fmt(ct, 0), Table::fmt(et, 0),
                              Table::fmt(dt / et, 2) + "x",
                              Table::fmt(ct / et, 2) + "x"});
            }
        }
    }
    bench::emit(table, "fig20");
    bench::note("max Default/Eco = " + Table::fmt(max_d_over_e, 2) +
                "x; CuDNN/Eco range = [" + Table::fmt(min_c_over_e, 2) +
                ", " + Table::fmt(max_c_over_e, 2) + "]x");
    bench::note("paper: Eco is up to 3x faster than Default and up to "
                "1.5x faster than cuDNN; cuDNN wins a few multi-layer "
                "cases by <20% (wavefront overlap).");
    return 0;
}
