/**
 * @file
 * google-benchmark microbenchmarks of the CPU tensor library.
 *
 * These time the library's own numeric kernels (not the paper's GPU
 * results — those come from the analytical model in the fig* benches):
 * useful for keeping the executor fast enough to drive the numeric
 * training experiments.
 *
 * The GEMM family covers all four transpose combinations at sizes up
 * to 512, the naive reference kernel as the pre-blocking baseline, and
 * a thread-scaling sweep (the `threads` counter labels each run; on a
 * single-core host the sweep is flat and the speedup over the seed
 * comes entirely from blocking + packing + SIMD).
 *
 * To record results for EXPERIMENTS.md:
 *
 *   ./bench/cpu_kernels --benchmark_out=results/BENCH_cpu_kernels.json \
 *                       --benchmark_out_format=json
 */
#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "tensor/ops.h"

using namespace echo;

namespace {

/** Square GEMM inputs for a given transpose combination. */
std::pair<Tensor, Tensor>
gemmOperands(int64_t n, Rng &rng)
{
    return {Tensor::uniform(Shape({n, n}), rng),
            Tensor::uniform(Shape({n, n}), rng)};
}

void
gemmBench(benchmark::State &state, bool ta, bool tb)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    const auto [a, b] = gemmOperands(n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::gemm(a, ta, b, tb));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

void
BM_GemmNN(benchmark::State &state)
{
    gemmBench(state, false, false);
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemmNT(benchmark::State &state)
{
    gemmBench(state, false, true);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemmTN(benchmark::State &state)
{
    gemmBench(state, true, false);
}
BENCHMARK(BM_GemmTN)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemmTT(benchmark::State &state)
{
    gemmBench(state, true, true);
}
BENCHMARK(BM_GemmTT)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

/**
 * Rectangular real-workload shapes (the square sweep above hides the
 * skew that dominates LSTM serving and training): the word-LM vocab
 * projection, the single-slot per-step decode, the beam-widened
 * decode, and the K-skewed weight gradient — each under all four
 * transpose combinations.  Args are {M, N, K}.
 */
void
gemmWorkloadBench(benchmark::State &state, bool ta, bool tb)
{
    const int64_t m = state.range(0);
    const int64_t n = state.range(1);
    const int64_t k = state.range(2);
    Rng rng(1);
    const Tensor a =
        Tensor::uniform(ta ? Shape({k, m}) : Shape({m, k}), rng);
    const Tensor b =
        Tensor::uniform(tb ? Shape({n, k}) : Shape({k, n}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::gemm(a, ta, b, tb));
    }
    state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}

#define ECHO_GEMM_WORKLOAD_SHAPES                                       \
    ->Args({32, 10000, 650}) /* vocab projection  */                    \
        ->Args({1, 2600, 650}) /* per-step decode */                    \
        ->Args({8, 2600, 650}) /* beam-widened decode */                \
        ->Args({2600, 650, 1120}) /* weight grad (K-skewed) */

void
BM_GemmWorkloadNN(benchmark::State &state)
{
    gemmWorkloadBench(state, false, false);
}
BENCHMARK(BM_GemmWorkloadNN) ECHO_GEMM_WORKLOAD_SHAPES;

void
BM_GemmWorkloadNT(benchmark::State &state)
{
    gemmWorkloadBench(state, false, true);
}
BENCHMARK(BM_GemmWorkloadNT) ECHO_GEMM_WORKLOAD_SHAPES;

void
BM_GemmWorkloadTN(benchmark::State &state)
{
    gemmWorkloadBench(state, true, false);
}
BENCHMARK(BM_GemmWorkloadTN) ECHO_GEMM_WORKLOAD_SHAPES;

void
BM_GemmWorkloadTT(benchmark::State &state)
{
    gemmWorkloadBench(state, true, true);
}
BENCHMARK(BM_GemmWorkloadTT) ECHO_GEMM_WORKLOAD_SHAPES;

/** The naive triple-loop kernel the blocked GEMM replaced. */
void
BM_GemmReferenceNN(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    const auto [a, b] = gemmOperands(n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::gemmReference(a, false, b, false));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmReferenceNN)->Arg(64)->Arg(128)->Arg(256);

/**
 * Threaded-vs-serial comparison: the same 256^3 GEMM under different
 * global pool sizes.  items_per_second at threads=1 vs threads=N is
 * the threading speedup (chunking is value-preserving, so the outputs
 * are identical).
 */
void
BM_GemmThreadScaling(benchmark::State &state)
{
    const int64_t n = 256;
    const int threads = static_cast<int>(state.range(0));
    ThreadPool::setGlobalNumThreads(threads);
    Rng rng(1);
    const auto [a, b] = gemmOperands(n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::gemm(a, false, b, false));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
    state.counters["threads"] = threads;
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}
BENCHMARK(BM_GemmThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_Tanh(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(2);
    const Tensor x = Tensor::uniform(Shape({n}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::tanh(x));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Tanh)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void
BM_SoftmaxRows(benchmark::State &state)
{
    Rng rng(3);
    const Tensor x =
        Tensor::uniform(Shape({64, state.range(0)}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::softmaxLastAxis(x));
    }
}
BENCHMARK(BM_SoftmaxRows)->Arg(128)->Arg(1024);

void
BM_LayerNorm(benchmark::State &state)
{
    Rng rng(4);
    const Tensor x =
        Tensor::uniform(Shape({64, state.range(0)}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::layerNormLastAxis(x));
    }
}
BENCHMARK(BM_LayerNorm)->Arg(128)->Arg(1024);

void
BM_BroadcastAddBT(benchmark::State &state)
{
    Rng rng(5);
    const int64_t t = state.range(0);
    const Tensor x = Tensor::uniform(Shape({32, t, 256}), rng);
    const Tensor q = Tensor::uniform(Shape({32, 256}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::broadcastAddBT(x, q));
    }
}
BENCHMARK(BM_BroadcastAddBT)->Arg(16)->Arg(64);

void
BM_SequenceReverse(benchmark::State &state)
{
    Rng rng(6);
    const Tensor x =
        Tensor::uniform(Shape({state.range(0), 32, 128}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::reverseAxis(x, 0));
    }
}
BENCHMARK(BM_SequenceReverse)->Arg(50);

void
BM_EmbeddingLookup(benchmark::State &state)
{
    Rng rng(7);
    const Tensor table = Tensor::uniform(Shape({10000, 256}), rng);
    Tensor ids(Shape({32, 35}));
    for (int64_t i = 0; i < ids.numel(); ++i)
        ids.at(i) = static_cast<float>(rng.uniformInt(10000));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::embeddingLookup(table, ids));
    }
}
BENCHMARK(BM_EmbeddingLookup);

} // namespace

BENCHMARK_MAIN();
