/**
 * @file
 * google-benchmark microbenchmarks of the CPU tensor library.
 *
 * These time the library's own numeric kernels (not the paper's GPU
 * results — those come from the analytical model in the fig* benches):
 * useful for keeping the executor fast enough to drive the numeric
 * training experiments.
 */
#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "tensor/ops.h"

using namespace echo;

namespace {

void
BM_GemmNN(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    const Tensor a = Tensor::uniform(Shape({n, n}), rng);
    const Tensor b = Tensor::uniform(Shape({n, n}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::gemm(a, false, b, false));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128);

void
BM_GemmNT(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    const Tensor a = Tensor::uniform(Shape({n, n}), rng);
    const Tensor b = Tensor::uniform(Shape({n, n}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::gemm(a, false, b, true));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(128);

void
BM_Tanh(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(2);
    const Tensor x = Tensor::uniform(Shape({n}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::tanh(x));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Tanh)->Arg(1 << 10)->Arg(1 << 16);

void
BM_SoftmaxRows(benchmark::State &state)
{
    Rng rng(3);
    const Tensor x =
        Tensor::uniform(Shape({64, state.range(0)}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::softmaxLastAxis(x));
    }
}
BENCHMARK(BM_SoftmaxRows)->Arg(128)->Arg(1024);

void
BM_LayerNorm(benchmark::State &state)
{
    Rng rng(4);
    const Tensor x =
        Tensor::uniform(Shape({64, state.range(0)}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::layerNormLastAxis(x));
    }
}
BENCHMARK(BM_LayerNorm)->Arg(128)->Arg(1024);

void
BM_BroadcastAddBT(benchmark::State &state)
{
    Rng rng(5);
    const int64_t t = state.range(0);
    const Tensor x = Tensor::uniform(Shape({32, t, 256}), rng);
    const Tensor q = Tensor::uniform(Shape({32, 256}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::broadcastAddBT(x, q));
    }
}
BENCHMARK(BM_BroadcastAddBT)->Arg(16)->Arg(64);

void
BM_SequenceReverse(benchmark::State &state)
{
    Rng rng(6);
    const Tensor x =
        Tensor::uniform(Shape({state.range(0), 32, 128}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::reverseAxis(x, 0));
    }
}
BENCHMARK(BM_SequenceReverse)->Arg(50);

void
BM_EmbeddingLookup(benchmark::State &state)
{
    Rng rng(7);
    const Tensor table = Tensor::uniform(Shape({10000, 256}), rng);
    Tensor ids(Shape({32, 35}));
    for (int64_t i = 0; i < ids.numel(); ++i)
        ids.at(i) = static_cast<float>(rng.uniformInt(10000));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::embeddingLookup(table, ids));
    }
}
BENCHMARK(BM_EmbeddingLookup);

} // namespace

BENCHMARK_MAIN();
