/**
 * @file
 * Fig. 16 — memory-footprint sensitivity of the Echo reduction to the
 * number of encoder LSTM layers and to the hidden dimension, including
 * the paper's does-not-fit estimation rule (halve the batch, double
 * the reported usage) for configurations beyond the 12 GB capacity.
 */
#include "bench_common.h"
#include "echo/recompute_pass.h"
#include "models/nmt.h"
#include "train/simulation.h"

using namespace echo;

namespace {

/**
 * Device bytes of the max-length bucket for one configuration; if the
 * batch does not fit, fall back to the paper's estimate: profile at
 * half the batch and double (tensor sizes scale linearly in B).
 */
struct MemResult
{
    int64_t bytes;
    bool estimated;
};

MemResult
deviceBytes(models::NmtConfig cfg, bool with_pass)
{
    while (true) {
        models::NmtModel model(cfg);
        if (with_pass) {
            pass::PassConfig pc;
            pc.policy = pass::PassConfig::Policy::kManual;
            pc.overhead_budget_fraction = -1.0;
            pass::runRecomputePass(model.graph(), model.fetches(), pc);
        }
        const auto prof = train::profileIteration(
            model.fetches(), model.weightGrads());
        const int64_t scale = 128 / cfg.batch;
        if (prof.fits || cfg.batch <= 16) {
            return {prof.memory.device_bytes * scale, scale > 1};
        }
        cfg.batch /= 2;
    }
}

std::string
fmtMem(const MemResult &m)
{
    return Table::fmtBytes(static_cast<uint64_t>(m.bytes)) +
           (m.estimated ? " (est)" : "");
}

} // namespace

int
main()
{
    bench::begin("Fig. 16(a): memory vs number of encoder LSTM layers",
                 "Echo keeps deeper encoders inside the 12 GB budget.");
    {
        Table table({"layers", "Default", "Echo", "reduction"});
        for (const int64_t layers : {1, 2, 3, 4}) {
            models::NmtConfig cfg;
            cfg.batch = 128;
            cfg.src_len = 100;
            cfg.tgt_len = 100;
            cfg.enc_layers = layers;
            const MemResult before = deviceBytes(cfg, false);
            const MemResult after = deviceBytes(cfg, true);
            table.addRow({std::to_string(layers), fmtMem(before),
                          fmtMem(after),
                          Table::fmt(static_cast<double>(before.bytes) /
                                         after.bytes,
                                     2) +
                              "x"});
        }
        bench::emit(table, "fig16a_layers");
    }

    bench::begin("Fig. 16(b): memory vs hidden dimension",
                 "Echo admits larger hidden sizes.");
    {
        Table table({"hidden", "Default", "Echo", "reduction"});
        for (const int64_t hidden : {256, 512, 768, 1024}) {
            models::NmtConfig cfg;
            cfg.batch = 128;
            cfg.src_len = 100;
            cfg.tgt_len = 100;
            cfg.hidden = hidden;
            const MemResult before = deviceBytes(cfg, false);
            const MemResult after = deviceBytes(cfg, true);
            table.addRow({std::to_string(hidden), fmtMem(before),
                          fmtMem(after),
                          Table::fmt(static_cast<double>(before.bytes) /
                                         after.bytes,
                                     2) +
                              "x"});
        }
        bench::emit(table, "fig16b_hidden");
    }
    bench::note("paper: the reduction holds across 1-4 layers and "
                "256-1024 hidden; dashed (est) bars mark configs that "
                "no longer fit, estimated by halving the batch and "
                "doubling usage.");
    return 0;
}
