/**
 * @file
 * Fig. 13 + §6.2 text — NMT memory consumption and throughput for the
 * Default baseline versus EcoRNN/Echo (B=128 and the larger B=256 the
 * freed memory enables), plus the DRAM-transaction and recomputation-
 * overhead measurements.
 */
#include "bench_common.h"
#include "train/nmt_eval.h"

using namespace echo;
using pass::PassConfig;

int
main()
{
    bench::begin("Fig. 13: NMT memory and throughput, Default vs Echo",
                 "Partial forward propagation halves the footprint; the "
                 "freed memory admits batch 256.");

    struct Config
    {
        const char *name;
        int64_t batch;
        PassConfig::Policy policy;
    };
    const Config configs[] = {
        {"Default (par_rev), B=128", 128, PassConfig::Policy::kOff},
        {"EcoRNN (pass), B=128", 128, PassConfig::Policy::kManual},
        {"EcoRNN (pass), B=256", 256, PassConfig::Policy::kManual},
    };

    Table table({"configuration", "memory (max bucket)", "fits 12 GB?",
                 "throughput (samples/s)", "vs baseline",
                 "replay overhead", "DRAM txn / iter"});
    double baseline_thpt = 0.0;
    for (const Config &c : configs) {
        models::NmtConfig cfg;
        cfg.batch = c.batch;
        train::NmtEvalOptions opts;
        opts.policy = c.policy;
        const auto prof =
            train::profileNmtBucketed(cfg, train::iwsltBuckets(), opts);
        if (baseline_thpt == 0.0)
            baseline_thpt = prof.throughput;
        table.addRow(
            {c.name,
             Table::fmtBytes(static_cast<uint64_t>(prof.device_bytes)),
             prof.fits ? "yes" : "NO",
             Table::fmt(prof.throughput, 1),
             Table::fmt(prof.throughput / baseline_thpt, 2) + "x",
             Table::fmtPercent(prof.replay_fraction),
             Table::fmt(prof.dram_transactions / 1e6, 1) + "e6"});
    }
    bench::emit(table, "fig13");
    bench::note("paper: memory 9 GB -> 4.3 GB (~2x); same-batch "
                "throughput +4%; batch 256 gives 1.3x throughput; "
                "recompute steps measured at 1.5% of the runtime "
                "(0.7% theoretical).");
    bench::note("deviation: our first-order kernel model prices the "
                "replayed attention interiors at DRAM bandwidth, so "
                "same-batch throughput dips a few percent instead of "
                "gaining 4%, and DRAM transactions rise slightly "
                "instead of falling; see EXPERIMENTS.md.");
    return 0;
}
