/**
 * @file
 * Fig. 6 — NMT runtime breakdown of one training iteration, by GPU
 * kernel category and by CUDA API, including the SequenceReverse
 * bottleneck of the unfixed MXNet kernel (§5.1).
 */
#include "bench_common.h"
#include "models/nmt.h"
#include "train/simulation.h"

using namespace echo;

namespace {

void
profileOne(const char *label, bool parallel_reverse,
           const std::string &csv_name)
{
    models::NmtConfig cfg;
    cfg.batch = 128;
    cfg.src_len = 100;
    cfg.tgt_len = 100;
    cfg.parallel_reverse = parallel_reverse;
    models::NmtModel model(cfg);
    const auto prof = train::profileIteration(model.fetches(),
                                              model.weightGrads());

    std::printf("--- %s ---\n", label);
    Table kernels({"GPU kernel category", "time (ms)", "fraction"});
    for (const auto &[cat, us] : prof.runtime.kernel_time_by_category) {
        kernels.addRow({cat, Table::fmt(us / 1e3, 2),
                        Table::fmtPercent(
                            us / prof.runtime.gpu_kernel_time_us)});
    }
    bench::emit(kernels, csv_name + "_kernels");

    Table api({"CUDA API", "time (ms)"});
    api.addRow({"cudaLaunch",
                Table::fmt(prof.runtime.cuda_launch_time_us / 1e3, 2)});
    api.addRow({"cudaSynchronize",
                Table::fmt(prof.runtime.cuda_sync_time_us / 1e3, 2)});
    api.addRow({"(GPU kernels, for reference)",
                Table::fmt(prof.runtime.gpu_kernel_time_us / 1e3, 2)});
    api.addRow({"kernel launches",
                std::to_string(prof.runtime.kernel_launches)});
    bench::emit(api, csv_name + "_api");
}

} // namespace

int
main()
{
    bench::begin("Fig. 6: NMT runtime breakdown (one iteration)",
                 "With MXNet's batch-sequential SequenceReverse, that "
                 "operator dominates; after the parallel fix, "
                 "fully-connected layers are the bottleneck while the "
                 "CPU spends comparable time launching/synchronizing.");

    profileOne("original (batch-sequential SequenceReverse)", false,
               "fig06_seqrev");
    bench::note("paper: SequenceReverse dominates the kernel bar "
                "before the fix (~1 GB/s effective bandwidth).");

    profileOne("fixed (parallel SequenceReverse, par_rev)", true,
               "fig06_parrev");
    bench::note("paper: after par_rev, fully_connected is the largest "
                "kernel category; Softmax is only ~0.3% of the "
                "runtime, contradicting Britz et al.");
    return 0;
}
