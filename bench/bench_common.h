/**
 * @file
 * Shared helpers for the benchmark harnesses.
 *
 * Every bench binary reproduces one table or figure from the paper: it
 * prints the same rows/series the paper reports (plus the paper's
 * reference values where the text states them) and mirrors the data to
 * results/<name>.csv for plotting.
 */
#ifndef ECHO_BENCH_BENCH_COMMON_H
#define ECHO_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/logging.h"
#include "core/table.h"

namespace echo::bench {

/** Print the bench banner and silence warn/inform noise. */
inline void
begin(const std::string &title, const std::string &what)
{
    setQuiet(true);
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==============================================================\n");
}

/** Write @p table to results/<name>.csv (best effort) and print it. */
inline void
emit(const Table &table, const std::string &name)
{
    table.print();
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    if (!ec)
        table.writeCsv("results/" + name + ".csv");
    std::printf("\n");
}

/** Print a free-form note line. */
inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

} // namespace echo::bench

#endif // ECHO_BENCH_BENCH_COMMON_H
