/**
 * @file
 * Serving throughput/latency bench, two modes:
 *
 * Closed-loop (default): clients submit back-to-back against both
 * paper models end-to-end from checkpoints; at saturation the batcher
 * should deliver a clear throughput multiple over a single-slot
 * server — the row pair the table ends with.
 *
 * Open-loop (--open-loop [--reps N]): a heavy-tailed arrival schedule
 * — bursty Poisson arrival times, Zipfian prefix lengths — is
 * generated once and replayed verbatim against the continuous
 * scheduler and the legacy run-to-completion batcher, so both see the
 * SAME offered load with arrivals decoupled from completions.  This
 * is the comparison the continuous scheduler exists for: tail latency
 * at equal offered load, where run-to-completion pays max-wait stalls
 * and head-of-line blocking that slot recycling avoids.  Rows mirror
 * to results/serve_throughput_openloop.csv.
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/rng.h"
#include "models/nmt.h"
#include "models/serialize.h"
#include "models/word_lm.h"
#include "serve/server.h"

namespace {

using namespace echo;

struct LoadResult
{
    double throughput_rps = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double mean_batch = 0.0;
};

/** Closed-loop load: each client submits back-to-back requests. */
LoadResult
runLoad(const std::string &ckpt, const serve::SessionConfig &scfg,
        int clients, int requests_per_client, int64_t max_new)
{
    auto session = serve::InferenceSession::fromCheckpoint(ckpt, scfg);
    serve::ServerConfig server_cfg;
    server_cfg.queue_capacity = 1024; // closed loop: never reject
    server_cfg.max_wait = std::chrono::microseconds(500);
    serve::Server server(std::move(session), server_cfg);

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            Rng rng(static_cast<uint64_t>(c) * 7919 + 17);
            for (int i = 0; i < requests_per_client; ++i) {
                serve::Request req;
                const int64_t len = 2 + static_cast<int64_t>(
                                            rng.uniformInt(6));
                for (int64_t t = 0; t < len; ++t)
                    req.tokens.push_back(
                        3 + static_cast<int64_t>(rng.uniformInt(40)));
                req.max_new_tokens = max_new;
                server.submit(std::move(req)).get();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    server.stop();

    const serve::ServerStats stats = server.stats();
    LoadResult res;
    res.throughput_rps =
        static_cast<double>(stats.completed) / elapsed_s;
    res.p50_ms = stats.latency_p50_us / 1000.0;
    res.p95_ms = stats.latency_p95_us / 1000.0;
    res.p99_ms = stats.latency_p99_us / 1000.0;
    res.mean_batch = stats.mean_batch_requests;
    return res;
}

void
addRow(Table &table, const std::string &model, int clients,
       int64_t slots, const LoadResult &r)
{
    table.addRow({model, std::to_string(clients),
                  std::to_string(slots), Table::fmt(r.throughput_rps, 1),
                  Table::fmt(r.p50_ms, 2), Table::fmt(r.p95_ms, 2),
                  Table::fmt(r.p99_ms, 2), Table::fmt(r.mean_batch, 2)});
}

std::string
makeWordLmCheckpoint()
{
    models::WordLmConfig cfg;
    cfg.vocab = 80;
    cfg.hidden = 32;
    cfg.layers = 2;
    cfg.batch = 4;
    cfg.seq_len = 8;
    models::WordLmModel model(cfg);
    Rng rng(42);
    const std::string path = "results/serve_bench_word_lm.ckpt";
    models::saveParams(model.initialParams(rng), path);
    return path;
}

std::string
makeNmtCheckpoint()
{
    models::NmtConfig cfg;
    cfg.src_vocab = 80;
    cfg.tgt_vocab = 90;
    cfg.hidden = 32;
    cfg.enc_layers = 1;
    cfg.batch = 4;
    cfg.src_len = 8;
    cfg.tgt_len = 8;
    models::NmtModel model(cfg);
    Rng rng(43);
    const std::string path = "results/serve_bench_nmt.ckpt";
    models::saveParams(model.initialParams(rng), path);
    return path;
}

// ------------------------------------------------------- open loop --

/** One scheduled arrival of the open-loop trace. */
struct Arrival
{
    int64_t at_us = 0; ///< submission time relative to trace start
    serve::Request req;
};

/**
 * The heavy-tailed trace: arrivals come in bursts whose start times
 * form a Poisson process (exponential gaps), burst sizes are
 * geometric, and prefix lengths are Zipfian over [1, 8] — most
 * requests are short, a fat tail is long.  The same seed always
 * yields the same trace, so both schedulers see identical load.
 */
std::vector<Arrival>
makeOpenLoopTrace(uint64_t seed, int n, double mean_gap_us)
{
    // Zipf(s=1.2) cumulative weights over lengths 1..8.
    std::vector<double> cdf;
    double total = 0.0;
    for (int len = 1; len <= 8; ++len) {
        total += 1.0 / std::pow(static_cast<double>(len), 1.2);
        cdf.push_back(total);
    }

    Rng rng(seed);
    std::vector<Arrival> trace;
    double t_us = 0.0;
    while (static_cast<int>(trace.size()) < n) {
        // Exponential inter-burst gap, geometric burst size (p=0.35).
        const double u = std::max(
            1e-12, static_cast<double>(rng.uniformInt(1u << 20)) /
                       static_cast<double>(1u << 20));
        t_us += -std::log(u) * mean_gap_us;
        int burst = 1;
        while (burst < 8 && rng.uniformInt(100) < 65)
            ++burst;
        for (int b = 0; b < burst &&
                        static_cast<int>(trace.size()) < n;
             ++b) {
            Arrival a;
            a.at_us = static_cast<int64_t>(t_us) + b; // back-to-back
            const double pick =
                total * static_cast<double>(rng.uniformInt(1u << 20)) /
                static_cast<double>(1u << 20);
            size_t len = 1;
            while (len < cdf.size() && cdf[len - 1] < pick)
                ++len;
            for (size_t tk = 0; tk < len; ++tk)
                a.req.tokens.push_back(
                    3 + static_cast<int64_t>(rng.uniformInt(40)));
            a.req.top_k = 1 + static_cast<int>(rng.uniformInt(4));
            trace.push_back(std::move(a));
        }
    }
    return trace;
}

struct OpenLoopResult
{
    double offered_rps = 0.0;
    int64_t completed = 0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double wait_p99_ms = 0.0;
    double mean_batch = 0.0;
    int64_t splices = 0;
    int64_t recycled = 0;
};

/** Replay @p trace against one scheduler; arrivals never wait on
 *  completions (open loop). */
OpenLoopResult
replayTrace(const std::string &ckpt, const serve::SessionConfig &scfg,
            serve::SchedulerKind kind, const std::vector<Arrival> &trace)
{
    auto session = serve::InferenceSession::fromCheckpoint(ckpt, scfg);
    serve::ServerConfig server_cfg;
    server_cfg.queue_capacity = 4096; // measure latency, not shedding
    server_cfg.batch_admit_fraction = 1.0;
    server_cfg.max_wait = std::chrono::microseconds(1000);
    server_cfg.scheduler = kind;
    serve::Server server(std::move(session), server_cfg);

    std::vector<std::future<serve::Response>> futures;
    futures.reserve(trace.size());
    const auto start = std::chrono::steady_clock::now();
    for (const Arrival &a : trace) {
        std::this_thread::sleep_until(
            start + std::chrono::microseconds(a.at_us));
        futures.push_back(server.submit(serve::Request(a.req)));
    }
    for (auto &f : futures)
        f.get();
    server.stop();

    const serve::ServerStats stats = server.stats();
    OpenLoopResult res;
    res.offered_rps = static_cast<double>(trace.size()) /
                      (static_cast<double>(trace.back().at_us) / 1e6);
    res.completed = stats.completed;
    res.p50_ms = stats.latency_p50_us / 1000.0;
    res.p95_ms = stats.latency_p95_us / 1000.0;
    res.p99_ms = stats.latency_p99_us / 1000.0;
    res.wait_p99_ms = stats.wait_p99_us / 1000.0;
    res.mean_batch = stats.mean_batch_requests;
    res.splices = stats.splices;
    res.recycled = stats.recycled_slots;
    return res;
}

int
runOpenLoop(int reps)
{
    bench::begin(
        "serve_throughput --open-loop",
        "tail latency at equal offered load: continuous "
        "(iteration-level) scheduling vs run-to-completion batching "
        "under a bursty-Poisson / Zipfian-length arrival trace");
    std::error_code ec;
    std::filesystem::create_directories("results", ec);

    serve::SessionConfig scfg;
    scfg.slots = 8;
    scfg.buckets = {8};

    const std::string ckpt = makeWordLmCheckpoint();
    Table table({"scheduler", "rep", "offered_rps", "completed",
                 "p50_ms", "p95_ms", "p99_ms", "wait_p99_ms",
                 "mean_batch", "splices", "recycled"});

    std::vector<double> p99_cont, p99_batch;
    for (int rep = 0; rep < reps; ++rep) {
        const std::vector<Arrival> trace =
            makeOpenLoopTrace(1000 + static_cast<uint64_t>(rep), 200,
                              /*mean_gap_us=*/700.0);
        for (const serve::SchedulerKind kind :
             {serve::SchedulerKind::kContinuous,
              serve::SchedulerKind::kDynamicBatch}) {
            const bool cont =
                kind == serve::SchedulerKind::kContinuous;
            const OpenLoopResult r =
                replayTrace(ckpt, scfg, kind, trace);
            (cont ? p99_cont : p99_batch).push_back(r.p99_ms);
            table.addRow({cont ? "continuous" : "batch",
                          std::to_string(rep),
                          Table::fmt(r.offered_rps, 1),
                          std::to_string(r.completed),
                          Table::fmt(r.p50_ms, 3),
                          Table::fmt(r.p95_ms, 3),
                          Table::fmt(r.p99_ms, 3),
                          Table::fmt(r.wait_p99_ms, 3),
                          Table::fmt(r.mean_batch, 2),
                          std::to_string(r.splices),
                          std::to_string(r.recycled)});
        }
    }
    bench::emit(table, "serve_throughput_openloop");

    auto median = [](std::vector<double> v) {
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
    };
    const double cont = median(p99_cont);
    const double batch = median(p99_batch);
    bench::note("open-loop p99 at equal offered load: continuous " +
                Table::fmt(cont, 3) + " ms vs run-to-completion " +
                Table::fmt(batch, 3) + " ms (" +
                Table::fmt(batch / cont, 2) + "x, median of " +
                std::to_string(reps) + " rep(s))");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool open_loop = false;
    int reps = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--open-loop") == 0)
            open_loop = true;
        else if (std::strncmp(argv[i], "--reps=", 7) == 0)
            reps = std::max(1, std::atoi(argv[i] + 7));
        else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
            reps = std::max(1, std::atoi(argv[++i]));
    }
    if (open_loop)
        return runOpenLoop(reps);

    bench::begin("serve_throughput",
                 "inference-serving throughput and latency percentiles "
                 "under closed-loop load (dynamic batching on/off)");
    std::error_code ec;
    std::filesystem::create_directories("results", ec);

    Table table({"model", "clients", "slots", "req/s", "p50_ms",
                 "p95_ms", "p99_ms", "mean_batch"});

    serve::SessionConfig batched;
    batched.slots = 8;
    batched.buckets = {8};
    serve::SessionConfig unbatched = batched;
    unbatched.slots = 1;

    const int kRequests = 40;

    const std::string lm_ckpt = makeWordLmCheckpoint();
    for (int clients : {1, 4, 16})
        addRow(table, "word_lm", clients, batched.slots,
               runLoad(lm_ckpt, batched, clients, kRequests, 0));
    const LoadResult lm_serial =
        runLoad(lm_ckpt, unbatched, 16, kRequests, 0);
    addRow(table, "word_lm", 16, unbatched.slots, lm_serial);

    const std::string nmt_ckpt = makeNmtCheckpoint();
    for (int clients : {1, 4, 16})
        addRow(table, "nmt", clients, batched.slots,
               runLoad(nmt_ckpt, batched, clients, kRequests, 4));
    const LoadResult nmt_serial =
        runLoad(nmt_ckpt, unbatched, 16, kRequests, 4);
    addRow(table, "nmt", 16, unbatched.slots, nmt_serial);

    bench::emit(table, "serve_throughput");

    const LoadResult lm_sat =
        runLoad(lm_ckpt, batched, 16, kRequests, 0);
    const LoadResult nmt_sat =
        runLoad(nmt_ckpt, batched, 16, kRequests, 4);
    bench::note("saturation batching gain (slots=8 vs slots=1): "
                "word_lm " +
                Table::fmt(lm_sat.throughput_rps /
                               lm_serial.throughput_rps,
                           2) +
                "x, nmt " +
                Table::fmt(nmt_sat.throughput_rps /
                               nmt_serial.throughput_rps,
                           2) +
                "x");
    return 0;
}
