/**
 * @file
 * Serving throughput/latency bench: closed-loop load against the
 * inference server for both paper models, end-to-end from checkpoints.
 *
 * For each model a freshly initialized parameter store is saved with
 * saveParams and served back through InferenceSession::fromCheckpoint,
 * exercising the full load path.  Clients submit back-to-back
 * (closed-loop), so the offered load scales with the client count; at
 * saturation the dynamic batcher should fill micro-batches and deliver
 * a clear throughput multiple over a single-slot (batching-off)
 * server at the same thread count — the row pair the table ends with.
 */
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/rng.h"
#include "models/nmt.h"
#include "models/serialize.h"
#include "models/word_lm.h"
#include "serve/server.h"

namespace {

using namespace echo;

struct LoadResult
{
    double throughput_rps = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double mean_batch = 0.0;
};

/** Closed-loop load: each client submits back-to-back requests. */
LoadResult
runLoad(const std::string &ckpt, const serve::SessionConfig &scfg,
        int clients, int requests_per_client, int64_t max_new)
{
    auto session = serve::InferenceSession::fromCheckpoint(ckpt, scfg);
    serve::ServerConfig server_cfg;
    server_cfg.queue_capacity = 1024; // closed loop: never reject
    server_cfg.max_wait = std::chrono::microseconds(500);
    serve::Server server(std::move(session), server_cfg);

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            Rng rng(static_cast<uint64_t>(c) * 7919 + 17);
            for (int i = 0; i < requests_per_client; ++i) {
                serve::Request req;
                const int64_t len = 2 + static_cast<int64_t>(
                                            rng.uniformInt(6));
                for (int64_t t = 0; t < len; ++t)
                    req.tokens.push_back(
                        3 + static_cast<int64_t>(rng.uniformInt(40)));
                req.max_new_tokens = max_new;
                server.submit(std::move(req)).get();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    server.stop();

    const serve::ServerStats stats = server.stats();
    LoadResult res;
    res.throughput_rps =
        static_cast<double>(stats.completed) / elapsed_s;
    res.p50_ms = stats.latency_p50_us / 1000.0;
    res.p95_ms = stats.latency_p95_us / 1000.0;
    res.p99_ms = stats.latency_p99_us / 1000.0;
    res.mean_batch = stats.mean_batch_requests;
    return res;
}

void
addRow(Table &table, const std::string &model, int clients,
       int64_t slots, const LoadResult &r)
{
    table.addRow({model, std::to_string(clients),
                  std::to_string(slots), Table::fmt(r.throughput_rps, 1),
                  Table::fmt(r.p50_ms, 2), Table::fmt(r.p95_ms, 2),
                  Table::fmt(r.p99_ms, 2), Table::fmt(r.mean_batch, 2)});
}

std::string
makeWordLmCheckpoint()
{
    models::WordLmConfig cfg;
    cfg.vocab = 80;
    cfg.hidden = 32;
    cfg.layers = 2;
    cfg.batch = 4;
    cfg.seq_len = 8;
    models::WordLmModel model(cfg);
    Rng rng(42);
    const std::string path = "results/serve_bench_word_lm.ckpt";
    models::saveParams(model.initialParams(rng), path);
    return path;
}

std::string
makeNmtCheckpoint()
{
    models::NmtConfig cfg;
    cfg.src_vocab = 80;
    cfg.tgt_vocab = 90;
    cfg.hidden = 32;
    cfg.enc_layers = 1;
    cfg.batch = 4;
    cfg.src_len = 8;
    cfg.tgt_len = 8;
    models::NmtModel model(cfg);
    Rng rng(43);
    const std::string path = "results/serve_bench_nmt.ckpt";
    models::saveParams(model.initialParams(rng), path);
    return path;
}

} // namespace

int
main()
{
    bench::begin("serve_throughput",
                 "inference-serving throughput and latency percentiles "
                 "under closed-loop load (dynamic batching on/off)");
    std::error_code ec;
    std::filesystem::create_directories("results", ec);

    Table table({"model", "clients", "slots", "req/s", "p50_ms",
                 "p95_ms", "p99_ms", "mean_batch"});

    serve::SessionConfig batched;
    batched.slots = 8;
    batched.buckets = {8};
    serve::SessionConfig unbatched = batched;
    unbatched.slots = 1;

    const int kRequests = 40;

    const std::string lm_ckpt = makeWordLmCheckpoint();
    for (int clients : {1, 4, 16})
        addRow(table, "word_lm", clients, batched.slots,
               runLoad(lm_ckpt, batched, clients, kRequests, 0));
    const LoadResult lm_serial =
        runLoad(lm_ckpt, unbatched, 16, kRequests, 0);
    addRow(table, "word_lm", 16, unbatched.slots, lm_serial);

    const std::string nmt_ckpt = makeNmtCheckpoint();
    for (int clients : {1, 4, 16})
        addRow(table, "nmt", clients, batched.slots,
               runLoad(nmt_ckpt, batched, clients, kRequests, 4));
    const LoadResult nmt_serial =
        runLoad(nmt_ckpt, unbatched, 16, kRequests, 4);
    addRow(table, "nmt", 16, unbatched.slots, nmt_serial);

    bench::emit(table, "serve_throughput");

    const LoadResult lm_sat =
        runLoad(lm_ckpt, batched, 16, kRequests, 0);
    const LoadResult nmt_sat =
        runLoad(nmt_ckpt, batched, 16, kRequests, 4);
    bench::note("saturation batching gain (slots=8 vs slots=1): "
                "word_lm " +
                Table::fmt(lm_sat.throughput_rps /
                               lm_serial.throughput_rps,
                           2) +
                "x, nmt " +
                Table::fmt(nmt_sat.throughput_rps /
                               nmt_serial.throughput_rps,
                           2) +
                "x");
    return 0;
}
