/**
 * @file
 * Fig. 12 — training curves.
 *
 * (a) Training perplexity versus global step for Default, Default with
 *     the Echo pass, and the Eco backend: the three curves coincide
 *     (the pass is bit-exact; the fused backend differs only in
 *     floating-point summation order).
 * (b) Validation BLEU versus modelled wall-clock: the larger batch the
 *     footprint reduction enables reaches the target BLEU in fewer
 *     iterations, and each iteration's wall-clock comes from the
 *     paper-scale GPU profile of the corresponding configuration.
 *
 * Numerics run the toy synthetic-translation task (learnable by the
 * attention model); wall-clock stamps come from the paper-scale
 * bucketed NMT profiles, composing real convergence behaviour with
 * modelled hardware time exactly as DESIGN.md describes.
 */
#include <optional>

#include "bench_common.h"
#include "data/batcher.h"
#include "echo/recompute_pass.h"
#include "graph/executor.h"
#include "models/nmt.h"
#include "train/metrics.h"
#include "train/nmt_eval.h"
#include "train/optimizer.h"

using namespace echo;

namespace {

models::NmtConfig
toyConfig(int64_t batch)
{
    models::NmtConfig cfg;
    cfg.src_vocab = 44;
    cfg.tgt_vocab = 44;
    cfg.hidden = 48;
    cfg.batch = batch;
    cfg.src_len = 8;
    cfg.tgt_len = 8;
    return cfg;
}

data::ParallelCorpus
toyCorpus(uint64_t seed)
{
    data::ParallelCorpusConfig pcc;
    pcc.src_vocab = data::Vocab{44};
    pcc.tgt_vocab = data::Vocab{44};
    pcc.num_pairs = 2048;
    pcc.min_len = 3;
    pcc.max_len = 6;
    pcc.zipf_s = 0.7;
    pcc.seed = seed;
    return data::ParallelCorpus::generate(pcc);
}

/** Train one configuration; returns per-step losses and (optionally)
 *  the step at which held-out BLEU first reaches @p bleu_target. */
struct RunResult
{
    std::vector<double> losses;
    std::optional<int64_t> steps_to_target;
};

RunResult
trainToy(models::NmtModel &model, int64_t iterations,
         double bleu_target, int64_t eval_every)
{
    const int64_t batch = model.config().batch;
    const data::ParallelCorpus corpus = toyCorpus(33);
    data::NmtBatcher batcher(corpus, batch, 8, 8);

    Rng rng(9);
    models::ParamStore params = model.initialParams(rng);
    // Linear learning-rate scaling with batch size (Smith et al.,
    // which the paper cites for its large-batch convergence argument).
    train::AdamOptimizer opt(5e-3 * static_cast<double>(batch) / 16.0);
    graph::Executor ex(model.fetches());

    // Held-out references for BLEU.
    const data::ParallelCorpus held = toyCorpus(77);
    data::NmtBatcher held_batcher(held, batch, 8, 8);
    const data::NmtBatch held_batch = held_batcher.next();
    std::vector<std::vector<int64_t>> refs;
    for (int64_t r = 0; r < batch; ++r) {
        std::vector<int64_t> ref;
        for (int64_t t = 0; t < 8; ++t) {
            const float l = held_batch.tgt_labels.at(r * 8 + t);
            if (l >= static_cast<float>(data::Vocab::kFirstWord))
                ref.push_back(static_cast<int64_t>(l));
        }
        refs.push_back(std::move(ref));
    }

    RunResult result;
    for (int64_t step = 1; step <= iterations; ++step) {
        const data::NmtBatch batch_data = batcher.next();
        const auto out = ex.run(model.makeFeed(params, batch_data));
        result.losses.push_back(out[0].at(0));
        std::vector<Tensor> grads(out.begin() + 1, out.end());
        opt.step(params, model.weights(), grads);

        if (bleu_target > 0.0 && step % eval_every == 0 &&
            !result.steps_to_target) {
            const auto hyp =
                model.greedyDecode(params, held_batch.src, 8);
            if (train::corpusBleu(hyp, refs) >= bleu_target) {
                result.steps_to_target = step;
                break;
            }
        }
    }
    return result;
}

} // namespace

int
main()
{
    bench::begin("Fig. 12(a): training perplexity vs global step",
                 "Default, Default+EchoPass, and the Eco backend have "
                 "coinciding training curves.");

    const int64_t part_a_steps = 150;
    models::NmtModel default_model(toyConfig(32));
    models::NmtModel pass_model(toyConfig(32));
    {
        pass::PassConfig pc;
        pc.overhead_budget_fraction = -1.0;
        pass::runRecomputePass(pass_model.graph(), pass_model.fetches(),
                               pc);
    }
    models::NmtConfig eco_cfg = toyConfig(32);
    eco_cfg.encoder_backend = rnn::RnnBackend::kEco;
    models::NmtModel eco_model(eco_cfg);

    const RunResult r_default =
        trainToy(default_model, part_a_steps, 0.0, 1);
    const RunResult r_pass = trainToy(pass_model, part_a_steps, 0.0, 1);
    const RunResult r_eco = trainToy(eco_model, part_a_steps, 0.0, 1);

    Table curves({"step", "ppl Default", "ppl Default+pass",
                  "ppl Eco backend"});
    double max_pass_diff = 0.0, max_eco_diff = 0.0;
    for (size_t i = 0; i < r_default.losses.size(); ++i) {
        max_pass_diff =
            std::max(max_pass_diff,
                     std::abs(r_default.losses[i] - r_pass.losses[i]));
        max_eco_diff =
            std::max(max_eco_diff,
                     std::abs(r_default.losses[i] - r_eco.losses[i]));
        if ((i + 1) % 30 == 0 || i == 0) {
            curves.addRow(
                {std::to_string(i + 1),
                 Table::fmt(train::perplexity(r_default.losses[i]), 2),
                 Table::fmt(train::perplexity(r_pass.losses[i]), 2),
                 Table::fmt(train::perplexity(r_eco.losses[i]), 2)});
        }
    }
    bench::emit(curves, "fig12a_curves");
    bench::note("max |loss(Default) - loss(Default+pass)| = " +
                Table::fmt(max_pass_diff, 9) + " (bit-exact rewrite)");
    bench::note("max |loss(Default) - loss(Eco backend)| = " +
                Table::fmt(max_eco_diff, 6) +
                " (fused summation order only)");
    bench::note("paper: the three curves are 'almost completely "
                "overlapping'.");

    bench::begin("Fig. 12(b): validation BLEU vs modelled wall-clock",
                 "The larger batch converges in fewer steps; each "
                 "step's duration comes from the paper-scale profile.");

    // Steps to target BLEU on the toy task.
    const double target_bleu = 60.0;
    models::NmtModel small_model(toyConfig(16));
    models::NmtModel big_model(toyConfig(32));
    const RunResult conv_small =
        trainToy(small_model, 1400, target_bleu, 20);
    const RunResult conv_big =
        trainToy(big_model, 1400, target_bleu, 20);

    // Paper-scale per-iteration times for the matching configurations;
    // the batch-256 row is the full EcoRNN system (layout-optimized
    // encoder + recomputation pass), as in Fig. 15.
    auto iter_seconds = [](int64_t batch,
                           pass::PassConfig::Policy policy,
                           rnn::RnnBackend encoder) {
        models::NmtConfig cfg;
        cfg.batch = batch;
        cfg.encoder_backend = encoder;
        train::NmtEvalOptions opts;
        opts.policy = policy;
        return train::profileNmtBucketed(cfg, train::iwsltBuckets(),
                                         opts)
            .mean_iteration_seconds;
    };
    const double sec_default_128 =
        iter_seconds(128, pass::PassConfig::Policy::kOff,
                     rnn::RnnBackend::kDefault);
    const double sec_eco_128 =
        iter_seconds(128, pass::PassConfig::Policy::kManual,
                     rnn::RnnBackend::kDefault);
    const double sec_eco_256 =
        iter_seconds(256, pass::PassConfig::Policy::kManual,
                     rnn::RnnBackend::kEco);

    const double steps_small = static_cast<double>(
        conv_small.steps_to_target.value_or(1400));
    const double steps_big = static_cast<double>(
        conv_big.steps_to_target.value_or(1400));

    Table conv({"configuration", "steps to BLEU>=60 (toy)",
                "paper-scale s/iter", "training time (rel)"});
    const double base_time = steps_small * sec_default_128;
    conv.addRow({"Default, B=128", Table::fmt(steps_small, 0),
                 Table::fmt(sec_default_128 * 1e3, 1) + " ms", "1.00x"});
    conv.addRow({"EcoRNN, B=128 (identical numerics)",
                 Table::fmt(steps_small, 0),
                 Table::fmt(sec_eco_128 * 1e3, 1) + " ms",
                 Table::fmt(steps_small * sec_eco_128 / base_time, 2) +
                     "x"});
    conv.addRow({"EcoRNN, B=256 (2x batch)", Table::fmt(steps_big, 0),
                 Table::fmt(sec_eco_256 * 1e3, 1) + " ms",
                 Table::fmt(steps_big * sec_eco_256 / base_time, 2) +
                     "x"});
    bench::emit(conv, "fig12b_convergence");
    bench::note("paper: EcoRNN B=128 finishes in 0.96x the baseline "
                "time; EcoRNN B=256 in 0.67x (1.5x faster), because "
                "the doubled batch needs fewer steps to the target "
                "BLEU and throughput is 1.3x.");
    return 0;
}
