/**
 * @file
 * §6.2.2 "Generality across Machine Learning Frameworks" — the paper
 * trains the same task with TensorFlow-NMT (plain Bahdanau attention,
 * no partial forward propagation anywhere in the TF codebase) and
 * measures 8.4 GB / 561 samples/s, ~10 % from the MXNet baseline.
 *
 * Here the TF-style variant differs in its attention lowering
 * (unnormalized Bahdanau scoring) and, like the real TF, ships no
 * recomputation — then we show the Echo pass applies to that graph just
 * as well, which is the paper's point: the optimization is framework-
 * agnostic because it operates on the dataflow graph.
 */
#include "bench_common.h"
#include "train/nmt_eval.h"

using namespace echo;
using pass::PassConfig;

int
main()
{
    bench::begin("§6.2.2: generality across frameworks",
                 "A TensorFlow-style NMT lowering profiles ~10% from "
                 "the MXNet-style baseline, and the Echo pass applies "
                 "to it unchanged.");

    struct Config
    {
        const char *name;
        bool normalized_attention;
        PassConfig::Policy policy;
    };
    const Config configs[] = {
        {"MXNet-style (Sockeye lowering)", true,
         PassConfig::Policy::kOff},
        {"TensorFlow-style (plain Bahdanau)", false,
         PassConfig::Policy::kOff},
        {"TensorFlow-style + Echo pass", false,
         PassConfig::Policy::kAuto},
    };

    Table table({"framework lowering", "memory (max bucket)",
                 "throughput (samples/s)", "vs MXNet-style"});
    int64_t base_mem = 0;
    double base_thpt = 0.0;
    for (const Config &c : configs) {
        models::NmtConfig cfg;
        cfg.batch = 128;
        cfg.normalized_attention = c.normalized_attention;
        train::NmtEvalOptions opts;
        opts.policy = c.policy;
        const auto prof =
            train::profileNmtBucketed(cfg, train::iwsltBuckets(), opts);
        if (base_mem == 0) {
            base_mem = prof.device_bytes;
            base_thpt = prof.throughput;
        }
        table.addRow(
            {c.name,
             Table::fmtBytes(static_cast<uint64_t>(prof.device_bytes)),
             Table::fmt(prof.throughput, 1),
             Table::fmt(static_cast<double>(prof.device_bytes) /
                            base_mem,
                        2) +
                 "x mem, " +
                 Table::fmt(prof.throughput / base_thpt, 2) + "x thpt"});
    }
    bench::emit(table, "generality_frameworks");
    bench::note("paper: TF-NMT uses 8.4 GB at 561 samples/s, ~10% from "
                "the MXNet baseline, and implements no partial forward "
                "propagation — Echo applies to it all the same.");
    return 0;
}
