/**
 * @file
 * Fig. 14 — NMT memory-breakdown comparison, Default versus the Echo
 * pass, by layer type (attention collapses) and by data structure
 * (feature maps shrink, workspace appears).
 */
#include "bench_common.h"
#include "echo/recompute_pass.h"
#include "models/nmt.h"
#include "train/simulation.h"

using namespace echo;

namespace {

memory::MemoryProfile
profileNmt(bool with_pass)
{
    models::NmtConfig cfg;
    cfg.batch = 128;
    cfg.src_len = 100;
    cfg.tgt_len = 100;
    models::NmtModel model(cfg);
    if (with_pass) {
        pass::PassConfig pc;
        pc.policy = pass::PassConfig::Policy::kManual;
        pc.overhead_budget_fraction = -1.0;
        pass::runRecomputePass(model.graph(), model.fetches(), pc);
    }
    return train::profileIteration(model.fetches(), model.weightGrads())
        .memory;
}

} // namespace

int
main()
{
    bench::begin("Fig. 14: memory breakdown, Default vs Echo pass "
                 "(B=128, T=100, H=512)",
                 "Where the footprint reduction comes from.");

    const memory::MemoryProfile before = profileNmt(false);
    const memory::MemoryProfile after = profileNmt(true);

    Table by_layer({"layer type", "Default", "Echo", "Default %",
                    "Echo %"});
    for (const auto &[layer, bytes] : before.by_layer) {
        const auto it = after.by_layer.find(layer);
        const int64_t after_bytes =
            it == after.by_layer.end() ? 0 : it->second;
        by_layer.addRow(
            {layer, Table::fmtBytes(static_cast<uint64_t>(bytes)),
             Table::fmtBytes(static_cast<uint64_t>(after_bytes)),
             Table::fmtPercent(static_cast<double>(bytes) /
                               before.planned_bytes),
             Table::fmtPercent(static_cast<double>(after_bytes) /
                               after.planned_bytes)});
    }
    bench::emit(by_layer, "fig14a_by_layer");
    bench::note("paper: attention shrinks from 59% to 6% of the "
                "(smaller) total.");

    Table by_ds({"data structure", "Default", "Echo", "Default %",
                 "Echo %"});
    for (const auto &[ds, bytes] : before.by_data_structure) {
        const auto it = after.by_data_structure.find(ds);
        const int64_t after_bytes =
            it == after.by_data_structure.end() ? 0 : it->second;
        by_ds.addRow(
            {memory::dataStructureName(ds),
             Table::fmtBytes(static_cast<uint64_t>(bytes)),
             Table::fmtBytes(static_cast<uint64_t>(after_bytes)),
             Table::fmtPercent(static_cast<double>(bytes) /
                               before.planned_bytes),
             Table::fmtPercent(static_cast<double>(after_bytes) /
                               after.planned_bytes)});
    }
    bench::emit(by_ds, "fig14b_by_data_structure");
    bench::note("paper: feature maps 91% -> 76%, workspace 0% -> 3% "
                "(the shared recompute arena).");

    Table totals({"", "Default", "Echo", "reduction"});
    totals.addRow(
        {"device bytes",
         Table::fmtBytes(static_cast<uint64_t>(before.device_bytes)),
         Table::fmtBytes(static_cast<uint64_t>(after.device_bytes)),
         Table::fmt(static_cast<double>(before.device_bytes) /
                        after.device_bytes,
                    2) +
             "x"});
    bench::emit(totals, "fig14_totals");
    return 0;
}
