/**
 * @file
 * Fig. 5 — NMT memory-consumption breakdown (Zhu et al. hyperparameters:
 * B=128, T=100, H=512) by layer type and by data structure, plus the
 * profiler-vs-nvidia-smi gap (fragmentation + CUDA context).
 */
#include "bench_common.h"
#include "models/nmt.h"
#include "train/simulation.h"

using namespace echo;

int
main()
{
    bench::begin("Fig. 5: NMT memory breakdown (B=128, T=100, H=512)",
                 "Attention feature maps are the memory bottleneck.");

    models::NmtConfig cfg;
    cfg.batch = 128;
    cfg.src_len = 100;
    cfg.tgt_len = 100;
    models::NmtModel model(cfg);
    const auto prof = train::profileIteration(model.fetches(),
                                              model.weightGrads());

    Table by_layer({"layer type", "bytes", "fraction"});
    for (const auto &[layer, bytes] : prof.memory.by_layer) {
        by_layer.addRow(
            {layer, Table::fmtBytes(static_cast<uint64_t>(bytes)),
             Table::fmtPercent(static_cast<double>(bytes) /
                               prof.memory.planned_bytes)});
    }
    bench::emit(by_layer, "fig05_by_layer");
    bench::note("paper: attention ~60% (5 GB) of the profiled memory.");

    Table by_ds({"data structure", "bytes", "fraction"});
    for (const auto &[ds, bytes] : prof.memory.by_data_structure) {
        by_ds.addRow({memory::dataStructureName(ds),
                      Table::fmtBytes(static_cast<uint64_t>(bytes)),
                      Table::fmtPercent(static_cast<double>(bytes) /
                                        prof.memory.planned_bytes)});
    }
    bench::emit(by_ds, "fig05_by_data_structure");
    bench::note("paper: feature maps ~91%, weights ~5%, workspace ~0%.");

    Table totals({"quantity", "bytes"});
    totals.addRow({"profiler total (planned)",
                   Table::fmtBytes(static_cast<uint64_t>(
                       prof.memory.planned_bytes))});
    totals.addRow({"undisclosed (fragmentation + CUDA context)",
                   Table::fmtBytes(static_cast<uint64_t>(
                       prof.memory.undisclosed_bytes))});
    totals.addRow({"nvidia-smi total (device)",
                   Table::fmtBytes(static_cast<uint64_t>(
                       prof.memory.device_bytes))});
    bench::emit(totals, "fig05_totals");
    bench::note("paper: ~9 GB device usage with a striped "
                "profiler-vs-nvidia-smi gap at the bottom of the bar.");
    return 0;
}
