/**
 * @file
 * Echo-pass ablations (the ISCA-2020 design-choice studies beyond the
 * EcoRNN draft's figures):
 *
 *  1. Policy: Off / Manual (attention-annotated, EcoRNN) / Auto
 *     (whole-graph, Echo) — the automatic pass must find at least the
 *     manual savings.
 *  2. Overhead budget sweep: the cost-model-guided selection trades
 *     replay time for footprint.
 *  3. GEMM-boundary ablation: letting the pass recompute GEMMs (the
 *     Chen-et-al sublinear-checkpointing behaviour) explodes the
 *     replay time for little extra memory — the reason Echo never
 *     recomputes compute-heavy ops.
 *  4. Workspace sharing: disabling pool reuse turns the shared
 *     O(B·T·H) recompute arena into O(B·T²·H) (paper §4.1.2).
 */
#include "bench_common.h"
#include "budget/planner.h"
#include "echo/recompute_pass.h"
#include "gpusim/timeline.h"
#include "memory/liveness.h"
#include "memory/planner.h"
#include "models/nmt.h"
#include "train/simulation.h"

using namespace echo;
using pass::PassConfig;

namespace {

models::NmtConfig
benchConfig()
{
    models::NmtConfig cfg;
    cfg.batch = 128;
    cfg.src_len = 100;
    cfg.tgt_len = 100;
    return cfg;
}

struct Row
{
    pass::PassResult pass;
    train::IterationProfile prof;
};

Row
run(const PassConfig &pc, bool apply_pass)
{
    models::NmtModel model(benchConfig());
    Row row;
    if (apply_pass)
        row.pass = pass::runRecomputePass(model.graph(),
                                          model.fetches(), pc);
    row.prof = train::profileIteration(model.fetches(),
                                       model.weightGrads());
    return row;
}

} // namespace

int
main()
{
    bench::begin("Echo pass ablations (NMT, B=128, T=100, H=512)",
                 "Policies, budgets, the GEMM boundary, and workspace "
                 "sharing.");

    // --- 1. Policies -----------------------------------------------
    {
        Table table({"policy", "regions", "memory (device)",
                     "replay (% of kernels)"});
        const Row off = run({}, false);
        table.addRow({"Off (baseline)", "0",
                      Table::fmtBytes(static_cast<uint64_t>(
                          off.prof.memory.device_bytes)),
                      "0%"});
        PassConfig manual;
        manual.policy = PassConfig::Policy::kManual;
        manual.overhead_budget_fraction = -1.0;
        const Row m = run(manual, true);
        table.addRow({"Manual (attention tag, EcoRNN)",
                      std::to_string(m.pass.num_regions),
                      Table::fmtBytes(static_cast<uint64_t>(
                          m.prof.memory.device_bytes)),
                      Table::fmtPercent(m.pass.replay_time_us /
                                        m.pass.baseline_gpu_time_us)});
        PassConfig automatic;
        automatic.policy = PassConfig::Policy::kAuto;
        automatic.overhead_budget_fraction = -1.0;
        const Row a = run(automatic, true);
        table.addRow({"Auto (whole graph, Echo)",
                      std::to_string(a.pass.num_regions),
                      Table::fmtBytes(static_cast<uint64_t>(
                          a.prof.memory.device_bytes)),
                      Table::fmtPercent(a.pass.replay_time_us /
                                        a.pass.baseline_gpu_time_us)});
        bench::emit(table, "ablation_policy");
        bench::note("Auto must match or beat Manual's savings without "
                    "annotations — the Echo paper's headline over the "
                    "EcoRNN draft.");
    }

    // --- 2. Budget sweeps -----------------------------------------
    // Two budget axes over one table: the Echo pass's replay-*time*
    // fraction, and the budget planner's transient-pool *byte*
    // fraction ("fit in X bytes", solved by the chain DP).
    {
        Table table({"budget fraction", "of", "regions",
                     "memory (device)", "replay used"});
        for (const double budget : {0.01, 0.02, 0.05, 0.10, -1.0}) {
            PassConfig pc;
            pc.policy = PassConfig::Policy::kAuto;
            pc.overhead_budget_fraction = budget;
            const Row r = run(pc, true);
            table.addRow(
                {budget < 0 ? "unlimited"
                            : Table::fmtPercent(budget, 0),
                 "kernel time", std::to_string(r.pass.num_regions),
                 Table::fmtBytes(static_cast<uint64_t>(
                     r.prof.memory.device_bytes)),
                 Table::fmtPercent(r.pass.replay_time_us /
                                   r.pass.baseline_gpu_time_us)});
        }
        for (const double fraction : {0.75, 0.50}) {
            models::NmtModel model(benchConfig());
            const double baseline_kernel_us =
                gpusim::simulateRun(model.fetches(),
                                    gpusim::GpuSpec::titanXp())
                    .gpu_kernel_time_us;
            const auto live = memory::analyzeLiveness(
                model.fetches(), model.weightGrads());
            const int64_t baseline_pool =
                memory::planMemory(live).pool_peak_bytes;
            budget::BudgetConfig bc;
            bc.solver = budget::Solver::kChainDp;
            bc.budget_bytes = static_cast<int64_t>(
                fraction * static_cast<double>(baseline_pool));
            const budget::BudgetPlan plan = budget::planWithBudget(
                model.graph(), model.fetches(), model.weightGrads(),
                bc);
            const train::IterationProfile prof =
                train::profileIteration(model.fetches(),
                                        model.weightGrads());
            table.addRow(
                {Table::fmtPercent(fraction, 0), "pool bytes",
                 std::to_string(plan.pass.num_regions),
                 Table::fmtBytes(static_cast<uint64_t>(
                     prof.memory.device_bytes)),
                 Table::fmtPercent(plan.pass.replay_time_us /
                                   baseline_kernel_us)});
        }
        bench::emit(table, "ablation_budget");
        bench::note("the cost model spends its budget on the highest "
                    "savings-per-microsecond regions first; the byte "
                    "rows solve the inverse problem (fixed pool "
                    "budget, minimum replay) with the chain DP.");
    }

    // --- 3. GEMM boundary ------------------------------------------
    {
        Table table({"recompute GEMMs?", "regions", "memory (device)",
                     "replay (% of kernels)"});
        for (const bool respect : {true, false}) {
            PassConfig pc;
            pc.policy = PassConfig::Policy::kAuto;
            pc.overhead_budget_fraction = -1.0;
            pc.respect_gemm_boundary = respect;
            const Row r = run(pc, true);
            table.addRow(
                {respect ? "no (Echo rule)" : "yes (Chen et al.)",
                 std::to_string(r.pass.num_regions),
                 Table::fmtBytes(static_cast<uint64_t>(
                     r.prof.memory.device_bytes)),
                 Table::fmtPercent(r.pass.replay_time_us /
                                   r.pass.baseline_gpu_time_us)});
        }
        bench::emit(table, "ablation_gemm_boundary");
        bench::note("recomputing GEMMs multiplies the replay time for "
                    "marginal extra savings — Echo's central rule.");
    }

    // --- 4. Workspace sharing --------------------------------------
    {
        models::NmtModel model(benchConfig());
        PassConfig pc;
        pc.policy = PassConfig::Policy::kManual;
        pc.overhead_budget_fraction = -1.0;
        pass::runRecomputePass(model.graph(), model.fetches(), pc);

        const auto live = memory::analyzeLiveness(
            model.fetches(), model.weightGrads());
        memory::PlannerOptions shared;
        memory::PlannerOptions exclusive;
        exclusive.reuse_transients = false;
        const auto plan_shared = memory::planMemory(live, shared);
        const auto plan_exclusive =
            memory::planMemory(live, exclusive);

        Table table({"workspace policy", "transient pool peak"});
        table.addRow({"shared across steps (pool reuse)",
                      Table::fmtBytes(static_cast<uint64_t>(
                          plan_shared.pool_peak_bytes))});
        table.addRow({"exclusive per step (no reuse)",
                      Table::fmtBytes(static_cast<uint64_t>(
                          plan_exclusive.pool_peak_bytes))});
        table.addRow(
            {"blow-up factor",
             Table::fmt(
                 static_cast<double>(plan_exclusive.pool_peak_bytes) /
                     plan_shared.pool_peak_bytes,
                 1) +
                 "x"});
        bench::emit(table, "ablation_workspace");
        bench::note("paper §4.1.2: sharing one workspace arena across "
                    "all time steps keeps the extra memory at "
                    "O(B*T*H) instead of O(B*T^2*H).");
    }
    return 0;
}
