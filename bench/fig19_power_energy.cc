/**
 * @file
 * Fig. 19 — power and energy: all configurations draw about the same
 * board power, so energy is proportional to training time and the
 * faster-converging Echo-with-big-batch run wins on energy by the same
 * factor it wins on time.
 */
#include "bench_common.h"
#include "gpusim/power.h"
#include "train/nmt_eval.h"

using namespace echo;
using pass::PassConfig;

int
main()
{
    bench::begin("Fig. 19: power and energy",
                 "Power is flat across configurations; energy follows "
                 "training time.");

    struct Config
    {
        const char *name;
        int64_t batch;
        PassConfig::Policy policy;
        rnn::RnnBackend encoder;
        /** Training iterations to the target BLEU, relative to the
         *  baseline — measured by bench/fig12_training_curves (the
         *  doubled batch halves the steps under linear LR scaling). */
        double relative_iterations;
    };
    const Config configs[] = {
        {"Default, B=128", 128, PassConfig::Policy::kOff,
         rnn::RnnBackend::kDefault, 1.0},
        {"EcoRNN, B=128", 128, PassConfig::Policy::kManual,
         rnn::RnnBackend::kDefault, 1.0},
        {"EcoRNN (full), B=256", 256, PassConfig::Policy::kManual,
         rnn::RnnBackend::kEco, 0.5},
    };

    Table table({"configuration", "avg power (W)", "iter time (ms)",
                 "training time (rel)", "energy (rel)"});
    double base_time = 0.0;
    double base_energy = 0.0;
    for (const Config &c : configs) {
        models::NmtConfig cfg;
        cfg.batch = c.batch;
        cfg.encoder_backend = c.encoder;
        train::NmtEvalOptions opts;
        opts.policy = c.policy;
        const auto prof =
            train::profileNmtBucketed(cfg, train::iwsltBuckets(), opts);
        const double training_time =
            prof.mean_iteration_seconds * c.relative_iterations;
        const double energy = prof.avg_power_w * training_time;
        if (base_time == 0.0) {
            base_time = training_time;
            base_energy = energy;
        }
        table.addRow({c.name, Table::fmt(prof.avg_power_w, 0),
                      Table::fmt(prof.mean_iteration_seconds * 1e3, 1),
                      Table::fmt(training_time / base_time, 2) + "x",
                      Table::fmt(energy / base_energy, 2) + "x"});
    }
    bench::emit(table, "fig19");
    bench::note("paper: power is ~equal (nvidia-smi sampling), so the "
                "1.5x-faster Echo-256 training is 1.5x more "
                "energy-efficient.  The relative-iteration factors "
                "come from the Fig. 12 convergence experiment "
                "(bench/fig12_training_curves).");
    return 0;
}
