/**
 * @file
 * Model generality probe: the Echo pass on a Transformer encoder stack.
 *
 * The contrast with LSTM attention is the point.  LSTM NMT's O-shaped
 * scoring interiors are GEMM-free, so Echo reclaims ~all of them at
 * percent-level replay cost.  A Transformer's big interiors (the
 * [B x T x T] attention weights, the FFN activations) are produced by
 * BMMs/GEMMs directly, so under Echo's never-recompute-GEMMs rule only
 * the layer-norm/residual composites are reclaimable — and recovering
 * the rest (Chen-et-al mode, recomputing matmuls) costs an order of
 * magnitude more replay time.  This is the known trade-off that later
 * "activation checkpointing" systems for Transformers accept.
 */
#include "bench_common.h"
#include "echo/recompute_pass.h"
#include "models/transformer.h"
#include "train/simulation.h"

using namespace echo;
using pass::PassConfig;

int
main()
{
    bench::begin("Echo pass on a Transformer encoder stack",
                 "GEMM-sheltered interiors limit GEMM-free "
                 "recomputation — unlike LSTM's MLP attention.");

    models::TransformerConfig cfg;
    cfg.vocab = 30000;
    cfg.d_model = 512;
    cfg.d_ff = 2048;
    cfg.layers = 6;
    cfg.batch = 64;
    cfg.seq_len = 128;

    struct Mode
    {
        const char *name;
        bool apply;
        bool respect_gemms;
    };
    const Mode modes[] = {
        {"baseline (no pass)", false, true},
        {"Echo (never recompute GEMMs)", true, true},
        {"Chen et al. (GEMMs recomputable)", true, false},
    };

    Table table({"mode", "regions", "memory (device)",
                 "memory reduction", "replay (% of kernels)"});
    int64_t base_mem = 0;
    for (const Mode &mode : modes) {
        models::TransformerModel model(cfg);
        pass::PassResult res;
        if (mode.apply) {
            PassConfig pc;
            pc.policy = PassConfig::Policy::kAuto;
            pc.overhead_budget_fraction = -1.0;
            pc.respect_gemm_boundary = mode.respect_gemms;
            res = pass::runRecomputePass(model.graph(),
                                         model.fetches(), pc);
        }
        const auto prof = train::profileIteration(
            model.fetches(), model.weightGrads());
        if (base_mem == 0)
            base_mem = prof.memory.device_bytes;
        table.addRow(
            {mode.name, std::to_string(res.num_regions),
             Table::fmtBytes(static_cast<uint64_t>(
                 prof.memory.device_bytes)),
             Table::fmt(static_cast<double>(base_mem) /
                            prof.memory.device_bytes,
                        2) +
                 "x",
             res.baseline_gpu_time_us > 0
                 ? Table::fmtPercent(res.replay_time_us /
                                     res.baseline_gpu_time_us)
                 : "0%"});
    }
    bench::emit(table, "echo_transformer");
    bench::note("LSTM NMT for comparison (fig13): 3.2x reduction at "
                "2.8% replay — the O-shape structure is what makes "
                "the LSTM case so profitable.");
    return 0;
}
