/**
 * @file
 * Fig. 9 — GEMM layout comparison: Y = X W^T versus Y^T = W X^T on the
 * skewed fully-connected shapes of (a) an LSTM cell (W 2048x512,
 * X 64x512) and (b) a GRU cell (W 3072x1024, X 64x1024), reporting
 * runtime and L2 cache utilization from the GPU model, plus a
 * numerical-equivalence check on the CPU tensor library.
 */
#include "bench_common.h"
#include "core/rng.h"
#include "gpusim/gemm_model.h"
#include "tensor/ops.h"

using namespace echo;

namespace {

void
compareShapes(const char *label, int64_t rows_w, int64_t cols_w,
              int64_t batch, const std::string &csv_name)
{
    // Y = X W^T : M = batch, N = rows_w, K = cols_w
    // Y^T = W X^T : M = rows_w, N = batch, K = cols_w
    const gpusim::GpuSpec gpu = gpusim::GpuSpec::titanXp();
    const gpusim::GemmCost slow =
        gpusim::estimateGemm({batch, rows_w, cols_w}, gpu);
    const gpusim::GemmCost fast =
        gpusim::estimateGemm({rows_w, batch, cols_w}, gpu);

    std::printf("--- %s: W [%lldx%lld], X [%lldx%lld] ---\n", label,
                static_cast<long long>(rows_w),
                static_cast<long long>(cols_w),
                static_cast<long long>(batch),
                static_cast<long long>(cols_w));
    Table table({"form", "runtime (us)", "L2 hit rate",
                 "achieved peak fraction"});
    table.addRow({"Y = X W^T", Table::fmt(slow.time_us, 2),
                  Table::fmtPercent(slow.l2_hit_rate),
                  Table::fmtPercent(slow.efficiency)});
    table.addRow({"Y^T = W X^T", Table::fmt(fast.time_us, 2),
                  Table::fmtPercent(fast.l2_hit_rate),
                  Table::fmtPercent(fast.efficiency)});
    table.addRow({"speedup", Table::fmt(slow.time_us / fast.time_us, 2) + "x",
                  "-", "-"});
    bench::emit(table, csv_name);
}

} // namespace

int
main()
{
    bench::begin("Fig. 9: GEMM layout sensitivity",
                 "Identical math, different layouts: the transposed "
                 "form wins on the skewed LSTM/GRU shapes.");

    compareShapes("(a) LSTM cell shapes", 2048, 512, 64, "fig09a_lstm");
    bench::note("paper: Y^T = W X^T is ~2x faster with better cache "
                "utilization for the LSTM shapes.");

    compareShapes("(b) GRU cell shapes", 3072, 1024, 64, "fig09b_gru");
    bench::note("paper: ~1.3x for the GRU shapes (3 gates, K=1024).");

    // The two forms are numerically the same computation — verified on
    // the CPU tensor library at a reduced size.
    Rng rng(5);
    const Tensor x = Tensor::uniform(Shape({64, 128}), rng);
    const Tensor w = Tensor::uniform(Shape({512, 128}), rng);
    const Tensor y1 = ops::gemm(x, false, w, true);
    const Tensor y2 = ops::transpose2d(ops::gemm(w, false, x, true));
    double max_diff = 0.0;
    for (int64_t i = 0; i < y1.numel(); ++i)
        max_diff = std::max(
            max_diff,
            static_cast<double>(std::abs(y1.at(i) - y2.at(i))));
    std::printf("numerical check: max |XW^T - (WX^T)^T| = %.2e\n\n",
                max_diff);
    return 0;
}
