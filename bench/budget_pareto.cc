/**
 * @file
 * Memory-vs-overhead Pareto sweep of the budget-targeted planner
 * (src/budget): for the word-LM and NMT presets, walk byte budgets
 * across each model's feasible band [tightest achievable, baseline]
 * and solve every point with all three solvers — the Echo greedy
 * baseline, the exact chain DP, and the Lagrangian relaxation.
 *
 * Emits results/budget_pareto.csv: one row per (preset, budget point,
 * solver) with the planned pool peak and the applied replay time, so
 * the curves are directly comparable at matched memory peaks.  The
 * closing note reports where the DP strictly beats greedy — the
 * subsystem's acceptance evidence.
 *
 * --quick trims the sweep (fewer points, greedy + DP only) for CI.
 */
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "budget/planner.h"
#include "memory/liveness.h"
#include "memory/planner.h"
#include "models/nmt.h"
#include "models/word_lm.h"

using namespace echo;

namespace {

/** The echo-plan CLI presets: sized so the per-step feature maps (what
 *  recomputation reclaims) dominate the vocab-sized logits. */
models::WordLmConfig
wordLmPreset()
{
    models::WordLmConfig cfg;
    cfg.vocab = 2000;
    cfg.hidden = 192;
    cfg.layers = 2;
    cfg.batch = 16;
    cfg.seq_len = 35;
    return cfg;
}

models::NmtConfig
nmtPreset()
{
    models::NmtConfig cfg;
    cfg.src_vocab = 1500;
    cfg.tgt_vocab = 1200;
    cfg.hidden = 128;
    cfg.enc_layers = 1;
    cfg.batch = 16;
    cfg.src_len = 25;
    cfg.tgt_len = 25;
    return cfg;
}

struct Point
{
    std::string preset;
    budget::Solver solver;
    int64_t budget_bytes = 0;
    double band_fraction = 0.0; // position inside [tightest, baseline]
    budget::BudgetPlan plan;
};

template <typename ModelT, typename ConfigT>
budget::BudgetPlan
planFresh(const ConfigT &cfg, int64_t budget_bytes,
          budget::Solver solver)
{
    ModelT model(cfg);
    budget::BudgetConfig config;
    config.budget_bytes = budget_bytes;
    config.solver = solver;
    return budget::planWithBudget(model.graph(), model.fetches(),
                                  model.weightGrads(), config);
}

/** [tightest, baseline] learned from a sacrificial 1-byte-budget run
 *  (always infeasible; leaves its model untouched and unused). */
template <typename ModelT, typename ConfigT>
void
feasibleBand(const ConfigT &cfg, int64_t *tightest, int64_t *baseline)
{
    const budget::BudgetPlan probe =
        planFresh<ModelT>(cfg, int64_t{1}, budget::Solver::kGreedy);
    *tightest = probe.tightest_pool_peak;
    *baseline = probe.baseline_pool_peak;
}

template <typename ModelT, typename ConfigT>
void
sweep(const std::string &preset, const ConfigT &cfg,
      const std::vector<double> &band_fractions,
      const std::vector<budget::Solver> &solvers,
      std::vector<Point> *points)
{
    int64_t tightest = 0, baseline = 0;
    feasibleBand<ModelT>(cfg, &tightest, &baseline);
    bench::note(preset + ": baseline pool peak " +
                budget::formatBytes(baseline) +
                ", tightest achievable " +
                budget::formatBytes(tightest));
    for (const double f : band_fractions) {
        const int64_t budget_bytes =
            tightest + static_cast<int64_t>(std::llround(
                           f * static_cast<double>(baseline - tightest)));
        for (const budget::Solver solver : solvers) {
            Point p;
            p.preset = preset;
            p.solver = solver;
            p.budget_bytes = budget_bytes;
            p.band_fraction = f;
            p.plan = planFresh<ModelT>(cfg, budget_bytes, solver);
            points->push_back(std::move(p));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        quick = quick || std::strcmp(argv[i], "--quick") == 0;

    bench::begin(
        "Budget-planner Pareto sweep (greedy vs chain DP vs Lagrange)",
        std::string("Byte budgets across each preset's feasible band; "
                    "replay time at matched memory peaks") +
            (quick ? " [--quick]" : ""));

    const std::vector<double> fractions =
        quick ? std::vector<double>{0.25, 0.75}
              : std::vector<double>{0.05, 0.25, 0.50, 0.75};
    const std::vector<budget::Solver> solvers =
        quick ? std::vector<budget::Solver>{budget::Solver::kGreedy,
                                            budget::Solver::kChainDp}
              : std::vector<budget::Solver>{budget::Solver::kGreedy,
                                            budget::Solver::kChainDp,
                                            budget::Solver::kLagrange};

    std::vector<Point> points;
    sweep<models::WordLmModel>("word_lm", wordLmPreset(), fractions,
                               solvers, &points);
    sweep<models::NmtModel>("nmt", nmtPreset(), fractions, solvers,
                            &points);

    Table table({"preset", "band pos", "budget", "solver", "feasible",
                 "planned peak", "replay us", "regions", "exact",
                 "replay ok"});
    for (const Point &p : points) {
        table.addRow({p.preset, Table::fmt(p.band_fraction, 2),
                      budget::formatBytes(p.budget_bytes),
                      budget::solverName(p.solver),
                      p.plan.feasible ? "yes" : "NO",
                      budget::formatBytes(p.plan.planned_pool_peak),
                      Table::fmt(p.plan.pass.replay_time_us, 1),
                      std::to_string(p.plan.pass.num_regions),
                      p.plan.solved.exact ? "yes" : "no",
                      p.plan.replay_ok ? "yes" : "NO"});
    }
    bench::emit(table, "budget_pareto");

    // Acceptance evidence: at every matched budget point the DP's
    // applied replay must be <= greedy's, strictly lower somewhere.
    int compared = 0, strict_wins = 0, regressions = 0, violations = 0;
    for (const Point &dp : points) {
        if (dp.solver != budget::Solver::kChainDp)
            continue;
        if (dp.plan.feasible &&
            (!dp.plan.replay_ok ||
             dp.plan.planned_pool_peak > dp.budget_bytes))
            ++violations;
        for (const Point &gr : points) {
            if (gr.solver != budget::Solver::kGreedy ||
                gr.preset != dp.preset ||
                gr.budget_bytes != dp.budget_bytes)
                continue;
            if (!gr.plan.feasible || !dp.plan.feasible)
                continue;
            ++compared;
            if (dp.plan.pass.replay_time_us <
                gr.plan.pass.replay_time_us - 1e-9)
                ++strict_wins;
            if (dp.plan.pass.replay_time_us >
                gr.plan.pass.replay_time_us + 1e-6)
                ++regressions;
        }
    }
    bench::note("DP vs greedy at matched budgets: " +
                std::to_string(compared) + " comparable point(s), " +
                std::to_string(strict_wins) + " strict DP win(s), " +
                std::to_string(regressions) + " regression(s)");
    if (violations > 0)
        bench::note("ERROR: " + std::to_string(violations) +
                    " feasible plan(s) failed the pool-peak / timeline "
                    "cross-check");
    // The full sweep must also show at least one strict DP win; the
    // trimmed --quick sweep only gates on correctness.
    const bool fail = regressions > 0 || violations > 0 ||
                      (!quick && strict_wins == 0);
    return fail ? 1 : 0;
}
