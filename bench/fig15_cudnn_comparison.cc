/**
 * @file
 * Fig. 15 — NMT comparison against cuDNN: CuDNN speeds the RNN layers
 * up slightly but does nothing for memory (its reserved space even
 * grows the footprint), so it cannot reach the batch size Echo's
 * footprint reduction enables.
 */
#include "bench_common.h"
#include "train/nmt_eval.h"

using namespace echo;
using pass::PassConfig;

int
main()
{
    bench::begin("Fig. 15: Default vs CuDNN vs Echo (NMT)",
                 "cuDNN optimizes runtime only; Echo converts memory "
                 "into throughput via batch size.");

    struct Config
    {
        const char *name;
        int64_t batch;
        rnn::RnnBackend encoder;
        PassConfig::Policy policy;
    };
    const Config configs[] = {
        {"Default (par_rev), B=128", 128, rnn::RnnBackend::kDefault,
         PassConfig::Policy::kOff},
        {"CuDNN encoder, B=128", 128, rnn::RnnBackend::kCudnn,
         PassConfig::Policy::kOff},
        // The full EcoRNN system: layout-optimized encoder backend +
        // partial forward propagation + the batch the freed memory
        // admits.
        {"EcoRNN (layout + pass), B=256", 256, rnn::RnnBackend::kEco,
         PassConfig::Policy::kManual},
    };

    Table table({"configuration", "memory (max bucket)",
                 "throughput (samples/s)", "memory vs baseline",
                 "throughput vs baseline"});
    double base_thpt = 0.0;
    int64_t base_mem = 0;
    double cudnn_thpt = 0.0, eco_thpt = 0.0;
    for (const Config &c : configs) {
        models::NmtConfig cfg;
        cfg.batch = c.batch;
        cfg.encoder_backend = c.encoder;
        train::NmtEvalOptions opts;
        opts.policy = c.policy;
        const auto prof =
            train::profileNmtBucketed(cfg, train::iwsltBuckets(), opts);
        if (base_thpt == 0.0) {
            base_thpt = prof.throughput;
            base_mem = prof.device_bytes;
        }
        if (c.encoder == rnn::RnnBackend::kCudnn)
            cudnn_thpt = prof.throughput;
        if (c.policy == PassConfig::Policy::kManual)
            eco_thpt = prof.throughput;
        table.addRow(
            {c.name,
             Table::fmtBytes(static_cast<uint64_t>(prof.device_bytes)),
             Table::fmt(prof.throughput, 1),
             Table::fmt(static_cast<double>(prof.device_bytes) /
                            base_mem,
                        2) +
                 "x",
             Table::fmt(prof.throughput / base_thpt, 2) + "x"});
    }
    bench::emit(table, "fig15");
    if (cudnn_thpt > 0.0 && eco_thpt > 0.0) {
        bench::note("Echo over CuDNN: " +
                    Table::fmt(eco_thpt / cudnn_thpt, 2) + "x");
    }
    bench::note("paper: CuDNN gives +8% throughput but +7% memory; "
                "Echo at batch 256 outperforms CuDNN by 1.27x.");
    return 0;
}
