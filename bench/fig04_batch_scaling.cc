/**
 * @file
 * Fig. 4 — training throughput versus batch size.
 *
 * (a) The ResNet-50-class CNN proxy: compute-bound, so throughput
 *     saturates once the GPU is full (~batch 32).
 * (b) NMT: throughput keeps growing with batch size until the model no
 *     longer fits in the 12 GB Titan Xp — the memory capacity wall that
 *     motivates footprint reduction.
 */
#include "bench_common.h"
#include "models/cnn_proxy.h"
#include "train/nmt_eval.h"

using namespace echo;

int
main()
{
    bench::begin("Fig. 4(a): ResNet-50 proxy throughput vs batch size",
                 "CNN training saturates the GPU compute units early.");
    {
        Table table({"batch", "throughput (samples/s)", "scaling vs B/2",
                     "GPU busy fraction"});
        double prev = 0.0;
        for (const int64_t batch : {4, 8, 16, 32, 64, 128}) {
            models::CnnConfig cfg;
            cfg.batch = batch;
            models::CnnModel model(cfg);
            const auto prof = train::profileIteration(
                model.fetches(), model.weightGrads());
            const double thpt = prof.throughput(batch);
            table.addRow(
                {std::to_string(batch), Table::fmt(thpt, 1),
                 prev > 0.0 ? Table::fmt(thpt / prev, 2) + "x" : "-",
                 Table::fmt(prof.runtime.gpu_kernel_time_us /
                                prof.runtime.wall_time_us,
                            2)});
            prev = thpt;
        }
        bench::emit(table, "fig04a_cnn");
        bench::note("paper: ResNet-50 throughput saturates from batch "
                    "~32 (compute-bound); scaling factor -> 1x.");
    }

    bench::begin("Fig. 4(b): NMT throughput and memory vs batch size",
                 "LSTM NMT keeps scaling until it hits the 12 GB wall.");
    {
        Table table({"batch", "throughput (samples/s)",
                     "memory (max bucket)", "fits 12 GB?"});
        for (const int64_t batch : {16, 32, 64, 128, 256}) {
            models::NmtConfig cfg;
            cfg.batch = batch;
            const auto prof = train::profileNmtBucketed(
                cfg, train::iwsltBuckets());
            table.addRow({std::to_string(batch),
                          Table::fmt(prof.throughput, 1),
                          Table::fmtBytes(static_cast<uint64_t>(
                              prof.device_bytes)),
                          prof.fits ? "yes" : "NO (memory wall)"});
        }
        bench::emit(table, "fig04b_nmt");
        bench::note("paper: NMT throughput grows with batch size; "
                    "memory hits the 12 GB capacity at batch 128 and "
                    "batch cannot be increased further.");
    }
    return 0;
}
