/**
 * @file
 * Fig. 21 — word-level language-modeling training throughput on the
 * PTB-scale and Wikitext-2-scale configurations, across the hidden
 * sizes of MXNet's example hyperparameters, for all three backends.
 */
#include "bench_common.h"
#include "models/word_lm.h"
#include "train/simulation.h"

using namespace echo;

namespace {

void
runDataset(const char *name, int64_t vocab, const std::string &csv_name)
{
    std::printf("--- %s (vocab %lld, L=2, B=32, T=35) ---\n", name,
                static_cast<long long>(vocab));
    Table table({"hidden", "Default (samp/s)", "CuDNN (samp/s)",
                 "Eco (samp/s)", "Eco/Default", "Eco/CuDNN"});
    for (const int64_t hidden : {200, 650, 1500}) {
        double thpt[3];
        int idx = 0;
        for (const rnn::RnnBackend backend :
             {rnn::RnnBackend::kDefault, rnn::RnnBackend::kCudnn,
              rnn::RnnBackend::kEco}) {
            models::WordLmConfig cfg;
            cfg.vocab = vocab;
            cfg.hidden = hidden;
            cfg.layers = 2;
            cfg.batch = 32;
            cfg.seq_len = 35;
            cfg.backend = backend;
            models::WordLmModel model(cfg);
            const auto prof = train::profileIteration(
                model.fetches(), model.weightGrads());
            thpt[idx++] = prof.throughput(cfg.batch);
        }
        table.addRow({std::to_string(hidden), Table::fmt(thpt[0], 0),
                      Table::fmt(thpt[1], 0), Table::fmt(thpt[2], 0),
                      Table::fmt(thpt[2] / thpt[0], 2) + "x",
                      Table::fmt(thpt[2] / thpt[1], 2) + "x"});
    }
    bench::emit(table, csv_name);
}

} // namespace

int
main()
{
    bench::begin("Fig. 21: word-level LM training throughput",
                 "Eco beats Default everywhere and cuDNN in most "
                 "configurations thanks to the data-layout "
                 "optimization.");
    runDataset("PTB-scale", 10000, "fig21a_ptb");
    runDataset("Wikitext-2-scale", 33278, "fig21b_wikitext2");
    bench::note("paper: Eco up to 2x over Default and up to 1.2x over "
                "cuDNN on the LM task; the few cuDNN wins are within "
                "20% and the autotuner falls back to cuDNN there.");
    return 0;
}
