/**
 * @file
 * Steady-state execution bench: interpreter (map) vs compiled tape on
 * repeated training iterations, with a global allocation counter.
 *
 * Measures, for the word-LM and NMT training graphs:
 *
 *  - iterations/s for the interpreter and the tape (serial, 1 thread);
 *  - heap allocations per steady-state iteration for both paths —
 *    counted by overriding global operator new/delete;
 *  - the pack-cache contribution (word-LM with the cache cleared
 *    before every iteration, i.e. every GEMM re-packs);
 *  - byte-identity of tape fetches vs the interpreter at 1/2/4
 *    threads, serial and parallel.
 *
 * Exits nonzero if the serial tape performs ANY heap allocation in
 * steady state, or if any fetch differs from the interpreter by a
 * single bit.  Mirrors everything to results/BENCH_steady_state.json.
 */
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <new>
#include <vector>

#include "analysis/numeric_verify.h"
#include "bench_common.h"
#include "core/thread_pool.h"
#include "data/batcher.h"
#include "graph/executor.h"
#include "graph/tape.h"
#include "models/nmt.h"
#include "models/word_lm.h"
#include "tensor/pack_cache.h"

// ---------------------------------------------------------------------
// Global allocation counter (armed only around the timed loops).
// ---------------------------------------------------------------------

namespace {
std::atomic<long long> g_alloc_count{0};
std::atomic<bool> g_alloc_armed{false};

void *
countedAlloc(std::size_t n)
{
    if (g_alloc_armed.load(std::memory_order_relaxed)) {
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
#ifdef ECHO_ALLOC_TRACE
        void *frames[12];
        int depth = backtrace(frames, 12);
        backtrace_symbols_fd(frames + 2, depth - 2, 2);
        write(2, "----\n", 5);
#endif
    }
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}
} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

using namespace echo;

namespace {

/** Allocation count across @p fn (this thread plus any pool thread). */
template <typename Fn>
long long
countAllocs(Fn &&fn)
{
    g_alloc_count.store(0);
    g_alloc_armed.store(true);
    fn();
    g_alloc_armed.store(false);
    return g_alloc_count.load();
}

template <typename Fn>
double
secondsOf(Fn &&fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

struct PathResult
{
    double iters_per_s = 0.0;
    long long allocs_per_iter = 0;
};

/** Time @p iters steady-state runs of @p step (already warmed). */
template <typename Fn>
PathResult
measure(int iters, Fn &&step)
{
    PathResult r;
    r.allocs_per_iter =
        countAllocs([&] { step(); }); // one counted steady iteration
    const double s = secondsOf([&] {
        for (int i = 0; i < iters; ++i)
            step();
    });
    r.iters_per_s = iters / s;
    return r;
}

struct Workload
{
    const char *name;
    std::vector<graph::Val> fetches;
    graph::FeedDict feed;
    int iters;
};

bool
byteIdenticalAcrossThreads(const Workload &w)
{
    graph::Executor ex(w.fetches, graph::ExecMode::kSerial);
    graph::Tape tape(w.fetches);
    bool ok = tape.arenaBytes() == tape.plan().pool_peak_bytes;
    if (!ok)
        bench::note("FAIL: arena bytes != planner pool peak");
    for (const int threads : {1, 2, 4}) {
        ThreadPool::setGlobalNumThreads(threads);
        const std::vector<Tensor> ref = ex.run(w.feed);
        tape.bindFeeds(w.feed);
        for (const bool parallel : {false, true}) {
            const std::vector<Tensor> out = tape.run(parallel);
            const analysis::VerifyResult vr =
                analysis::compareFetches(out, ref);
            if (!vr.shapes_match || vr.max_abs_diff != 0.0) {
                bench::note(std::string("FAIL: ") + w.name +
                            " differs from the interpreter at threads=" +
                            std::to_string(threads) +
                            (parallel ? " (parallel)" : " (serial)"));
                ok = false;
            }
        }
    }
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
    return ok;
}

} // namespace

int
main()
{
    bench::begin("Steady-state execution: interpreter vs compiled tape",
                 "One training iteration repeated; the tape replays "
                 "planner-addressed records from an arena with zero "
                 "steady-state allocations (target >= 1.15x on the "
                 "word-LM iteration).");

    models::WordLmConfig lm_cfg;
    lm_cfg.vocab = 2000;
    lm_cfg.hidden = 200;
    lm_cfg.layers = 2;
    lm_cfg.batch = 16;
    lm_cfg.seq_len = 20;
    models::WordLmModel lm(lm_cfg);
    Rng lm_rng(7);
    models::ParamStore lm_params = lm.initialParams(lm_rng);
    data::CorpusConfig cc;
    cc.vocab = data::Vocab{lm_cfg.vocab};
    cc.num_tokens = 20000;
    cc.seed = 3;
    data::Corpus corpus = data::Corpus::generate(cc);
    data::LmBatcher lm_batcher(corpus, lm_cfg.batch, lm_cfg.seq_len);
    std::vector<graph::Val> lm_fetches = lm.fetches();
    lm_fetches.insert(lm_fetches.end(), lm.weightGrads().begin(),
                      lm.weightGrads().end());
    Workload lm_work{"word-lm-train", lm_fetches,
                     lm.makeFeed(lm_params, lm_batcher.next()), 20};

    models::NmtConfig nmt_cfg;
    nmt_cfg.src_vocab = 800;
    nmt_cfg.tgt_vocab = 800;
    nmt_cfg.hidden = 64;
    nmt_cfg.enc_layers = 1;
    nmt_cfg.batch = 8;
    nmt_cfg.src_len = 12;
    nmt_cfg.tgt_len = 12;
    models::NmtModel nmt(nmt_cfg);
    Rng nmt_rng(5);
    models::ParamStore nmt_params = nmt.initialParams(nmt_rng);
    data::ParallelCorpusConfig pcc;
    pcc.src_vocab = data::Vocab{nmt_cfg.src_vocab};
    pcc.tgt_vocab = data::Vocab{nmt_cfg.tgt_vocab};
    pcc.num_pairs = 256;
    pcc.min_len = 6;
    pcc.max_len = 12;
    pcc.seed = 11;
    data::ParallelCorpus pc = data::ParallelCorpus::generate(pcc);
    data::NmtBatcher nmt_batcher(pc, nmt_cfg.batch, nmt_cfg.src_len,
                                 nmt_cfg.tgt_len);
    std::vector<graph::Val> nmt_fetches = nmt.fetches();
    nmt_fetches.insert(nmt_fetches.end(), nmt.weightGrads().begin(),
                       nmt.weightGrads().end());
    Workload nmt_work{"nmt-train", nmt_fetches,
                      nmt.makeFeed(nmt_params, nmt_batcher.next()), 20};

    int exit_code = 0;
    Table table({"workload", "path", "iters/s", "allocs/iter",
                 "speedup vs map"});
    std::ofstream json;
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    json.open("results/BENCH_steady_state.json");
    json << "{\n  \"workloads\": [\n";

    bool first_json = true;
    for (Workload *w : {&lm_work, &nmt_work}) {
        ThreadPool::setGlobalNumThreads(1);

        graph::Executor ex(w->fetches, graph::ExecMode::kSerial);
        (void)ex.run(w->feed); // warm: packs built, caches primed
        const PathResult map_r =
            measure(w->iters, [&] { (void)ex.run(w->feed); });

        graph::Tape tape(w->fetches);
        tape.bindFeeds(w->feed);
        std::vector<Tensor> out;
        tape.runInto(out, false); // warm: arena claimed, scratch sized
        tape.runInto(out, false); // both parity halves touched
        const PathResult tape_r =
            measure(w->iters, [&] { tape.runInto(out, false); });

        // Pack-cache contribution: clear before every iteration so
        // every GEMM re-packs its panels (the no-reuse baseline).
        const PathResult cold_r = measure(w->iters, [&] {
            ops::clearPackCacheForTest();
            tape.runInto(out, false);
        });
        ops::clearPackCacheForTest();
        tape.runInto(out, false); // re-prime for any later use

        const double speedup = tape_r.iters_per_s / map_r.iters_per_s;
        table.addRow({w->name, "interpreter", Table::fmt(map_r.iters_per_s, 2),
                      std::to_string(map_r.allocs_per_iter), "1.00x"});
        table.addRow({w->name, "tape", Table::fmt(tape_r.iters_per_s, 2),
                      std::to_string(tape_r.allocs_per_iter),
                      Table::fmt(speedup, 2) + "x"});
        table.addRow({w->name, "tape, packs cleared/iter",
                      Table::fmt(cold_r.iters_per_s, 2),
                      std::to_string(cold_r.allocs_per_iter),
                      Table::fmt(cold_r.iters_per_s / map_r.iters_per_s,
                                 2) +
                          "x"});

        if (tape_r.allocs_per_iter != 0) {
            bench::note(std::string("FAIL: ") + w->name +
                        " serial tape performed " +
                        std::to_string(tape_r.allocs_per_iter) +
                        " heap allocation(s) in steady state (want 0)");
            exit_code = 1;
        }
        if (!byteIdenticalAcrossThreads(*w))
            exit_code = 1;

        if (!first_json)
            json << ",\n";
        first_json = false;
        json << "    {\"workload\": \"" << w->name
             << "\", \"map_iters_per_s\": " << map_r.iters_per_s
             << ", \"map_allocs_per_iter\": " << map_r.allocs_per_iter
             << ", \"tape_iters_per_s\": " << tape_r.iters_per_s
             << ", \"tape_allocs_per_iter\": " << tape_r.allocs_per_iter
             << ", \"tape_cold_pack_iters_per_s\": " << cold_r.iters_per_s
             << ", \"speedup\": " << speedup << "}";
    }
    json << "\n  ],\n  \"target_speedup\": 1.15\n}\n";
    json.close();

    bench::emit(table, "steady_state");
    bench::note("tape steady state must allocate nothing: the arena "
                "serves every transient at its planned offset and "
                "feeds re-bind by index.");
    bench::note("target: >= 1.15x on the word-LM training iteration "
                "(pack cache + zero-alloc dispatch).");
    if (exit_code != 0)
        bench::note("STEADY-STATE CONTRACT VIOLATED (see FAIL lines)");
    return exit_code;
}
