/**
 * @file
 * google-benchmark microbenchmark of the element-wise fusion pass.
 *
 * Times the LSTM cell's gate-nonlinearity tail — the canonical fused
 * chain: i = sigmoid(i_pre), f = sigmoid(f_pre), g = tanh(g_pre),
 * o = sigmoid(o_pre), c = f*c_prev + i*g, h = o*tanh(c) — once as the
 * unfused 10-op graph (9 materialized intermediates) and once after
 * runFusionPass folds it into a single FusedElementwiseOp (0
 * intermediates).  Both run through the real Executor, so the measured
 * win is exactly what training iterations see: no intermediate
 * allocation/zeroing, one pass over the data instead of ten.
 * EXPERIMENTS.md expects >= 1.5x on this chain.
 *
 * To record results for EXPERIMENTS.md / CI:
 *
 *   ./bench/fusion_elementwise \
 *       --benchmark_out=results/BENCH_fusion.json \
 *       --benchmark_out_format=json
 */
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "core/rng.h"
#include "graph/executor.h"
#include "graph/fusion.h"
#include "graph/ops/oplib.h"
#include "models/word_lm.h"

using namespace echo;
namespace ol = graph::oplib;
using graph::Graph;
using graph::Val;

namespace {

/** The gate-chain graph plus a ready Executor and feed. */
struct GateChain
{
    std::unique_ptr<Graph> g = std::make_unique<Graph>();
    graph::FeedDict feed;
    std::unique_ptr<graph::Executor> exec;
    int fused_groups = 0;

    GateChain(int64_t n, bool fuse)
    {
        const Shape s({n});
        std::vector<Val> pre;
        Rng rng(42);
        for (const char *name :
             {"i_pre", "f_pre", "g_pre", "o_pre", "c_prev"}) {
            const Val p = g->placeholder(s, name);
            pre.push_back(p);
            feed[p.node] = Tensor::uniform(s, rng, -1.5f, 1.5f);
        }
        const Val i = g->apply1(ol::sigmoidOp(), {pre[0]});
        const Val f = g->apply1(ol::sigmoidOp(), {pre[1]});
        const Val cand = g->apply1(ol::tanhOp(), {pre[2]});
        const Val o = g->apply1(ol::sigmoidOp(), {pre[3]});
        const Val c = g->apply1(
            ol::add(), {g->apply1(ol::mul(), {f, pre[4]}),
                        g->apply1(ol::mul(), {i, cand})});
        const Val h =
            g->apply1(ol::mul(), {o, g->apply1(ol::tanhOp(), {c})});
        if (fuse)
            fused_groups =
                fusion::runFusionPass(*g, {h}).num_groups;
        exec = std::make_unique<graph::Executor>(
            std::vector<Val>{h});
    }
};

void
gateChain(benchmark::State &state, bool fuse)
{
    const int64_t n = state.range(0);
    GateChain chain(n, fuse);
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain.exec->run(chain.feed));
    }
    state.counters["fused_groups"] =
        static_cast<double>(chain.fused_groups);
    // 10 original ops' worth of elements either way, so items/s are
    // comparable across the two variants.
    state.SetItemsProcessed(state.iterations() * n * 10);
}

void
BM_GateChainUnfused(benchmark::State &state)
{
    gateChain(state, false);
}
BENCHMARK(BM_GateChainUnfused)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18);

void
BM_GateChainFused(benchmark::State &state)
{
    gateChain(state, true);
}
BENCHMARK(BM_GateChainFused)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18);

/**
 * The LSTM cell's BACKWARD element-wise tail — the chain autodiff
 * emits per time step: from (dh, dc_in) and the saved gate activations
 * to the four pre-activation gradients and dc_prev.  Unlike the
 * forward chain it contains no transcendentals (the *_grad lowerings
 * are mul/add over saved activations), so it is bandwidth-bound and
 * shows fusion's full effect: every op's intermediate is one more
 * alloc + zero + write + read pass the fused program never makes.
 */
struct GateGradChain
{
    std::unique_ptr<Graph> g = std::make_unique<Graph>();
    graph::FeedDict feed;
    std::unique_ptr<graph::Executor> exec;
    int fused_groups = 0;

    GateGradChain(int64_t n, bool fuse)
    {
        const Shape s({n});
        Rng rng(43);
        auto ph = [&](const char *name) {
            const Val p = g->placeholder(s, name);
            feed[p.node] = Tensor::uniform(s, rng, -0.9f, 0.9f);
            return p;
        };
        const Val dh = ph("dh"), dc_in = ph("dc_in");
        const Val i = ph("i"), f = ph("f"), cand = ph("g");
        const Val o = ph("o"), c_prev = ph("c_prev");
        const Val tanh_c = ph("tanh_c");

        const Val d_o = g->apply1(ol::mul(), {dh, tanh_c});
        const Val d_tanh_c = g->apply1(ol::mul(), {dh, o});
        const Val dc = g->apply1(
            ol::add(),
            {dc_in, g->apply1(ol::tanhGrad(), {d_tanh_c, tanh_c})});
        const Val di = g->apply1(ol::mul(), {dc, cand});
        const Val dg = g->apply1(ol::mul(), {dc, i});
        const Val df = g->apply1(ol::mul(), {dc, c_prev});
        const Val dc_prev = g->apply1(ol::mul(), {dc, f});
        std::vector<Val> fetches{
            g->apply1(ol::sigmoidGrad(), {di, i}),
            g->apply1(ol::sigmoidGrad(), {df, f}),
            g->apply1(ol::tanhGrad(), {dg, cand}),
            g->apply1(ol::sigmoidGrad(), {d_o, o}), dc_prev};
        if (fuse)
            fused_groups =
                fusion::runFusionPass(*g, fetches).num_groups;
        exec = std::make_unique<graph::Executor>(std::move(fetches));
    }
};

void
gateGradChain(benchmark::State &state, bool fuse)
{
    const int64_t n = state.range(0);
    GateGradChain chain(n, fuse);
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain.exec->run(chain.feed));
    }
    state.counters["fused_groups"] =
        static_cast<double>(chain.fused_groups);
    state.SetItemsProcessed(state.iterations() * n * 11);
}

void
BM_GateGradChainUnfused(benchmark::State &state)
{
    gateGradChain(state, false);
}
BENCHMARK(BM_GateGradChainUnfused)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18);

void
BM_GateGradChainFused(benchmark::State &state)
{
    gateGradChain(state, true);
}
BENCHMARK(BM_GateGradChainFused)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18);

/**
 * One full word-LM training iteration (forward + backward, loss and
 * all weight gradients) — the fig21-style end-to-end number.  The
 * GEMMs are untouched by fusion, so the headline ratio here is
 * diluted; the two chain benches above isolate the fused fraction.
 */
void
wordLmIteration(benchmark::State &state, bool fuse)
{
    setenv("ECHO_FUSION", fuse ? "1" : "0", 1);
    models::WordLmConfig cfg;
    cfg.vocab = 120;
    cfg.hidden = 32;
    cfg.layers = 2;
    cfg.batch = 32;
    cfg.seq_len = 16;
    models::WordLmModel model(cfg);
    unsetenv("ECHO_FUSION");

    Rng rng(7);
    const models::ParamStore params = model.initialParams(rng);
    data::LmBatch batch;
    batch.tokens = Tensor(Shape({cfg.batch, cfg.seq_len}));
    for (int64_t i = 0; i < batch.tokens.numel(); ++i)
        batch.tokens.data()[i] = static_cast<float>(
            rng.uniformInt(static_cast<uint64_t>(cfg.vocab)));
    batch.labels = Tensor(Shape({cfg.batch * cfg.seq_len}));
    for (int64_t i = 0; i < batch.labels.numel(); ++i)
        batch.labels.data()[i] = static_cast<float>(
            rng.uniformInt(static_cast<uint64_t>(cfg.vocab)));
    const graph::FeedDict feed = model.makeFeed(params, batch);

    graph::Executor exec(model.fetches());
    for (auto _ : state) {
        benchmark::DoNotOptimize(exec.run(feed));
    }
    state.counters["fused_groups"] =
        static_cast<double>(model.fusionResult().num_groups);
    state.SetItemsProcessed(state.iterations() * cfg.batch);
}

void
BM_WordLmIterationUnfused(benchmark::State &state)
{
    wordLmIteration(state, false);
}
BENCHMARK(BM_WordLmIterationUnfused);

void
BM_WordLmIterationFused(benchmark::State &state)
{
    wordLmIteration(state, true);
}
BENCHMARK(BM_WordLmIterationFused);

} // namespace

BENCHMARK_MAIN();
