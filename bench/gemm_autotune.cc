/**
 * @file
 * Tuned-vs-fixed GEMM schedule comparison (the autotuner's headline
 * number).
 *
 * For every shape in the skewed real-workload suite — the word-LM
 * vocab projection, single-slot decode, beam-widened decode, and the
 * K-skewed weight gradient, each under all four transpose combos —
 * plus the square control sizes, the harness:
 *
 *  1. runs a measured search for the shape (fresh in-memory registry,
 *     no cache file, so results reflect this machine and build);
 *  2. times the fixed pre-tuner schedule and the tuned winner
 *     back-to-back with the same median-of-N harness;
 *  3. reports the per-shape speedup, the skewed-suite geometric mean,
 *     and the worst square regression.
 *
 * Emits results/BENCH_gemm_autotune.csv (Table mirror) and
 * results/BENCH_gemm_autotune.json with the raw rows plus the two
 * aggregates, so CI can archive the run and EXPERIMENTS.md can quote
 * it.  Exit status is nonzero when a tuned schedule failed validation
 * (tune.validate_reject != 0) — the bitwise contract is part of what
 * this bench certifies.
 */
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "obs/counters.h"
#include "tensor/gemm_schedule.h"
#include "tune/measure.h"
#include "tune/tuner.h"

using namespace echo;

namespace {

struct SuiteShape
{
    const char *name;
    int64_t m, n, k;
    bool trans_a, trans_b;
    bool square; // control shape: regression-gated, not in the geomean
};

struct Row
{
    SuiteShape shape;
    ops::GemmSchedule best;
    double fixed_us = 0.0;
    double tuned_us = 0.0;

    double speedup() const { return fixed_us / tuned_us; }
};

std::string
comboName(bool ta, bool tb)
{
    std::string s;
    s += ta ? 'T' : 'N';
    s += tb ? 'T' : 'N';
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    // --reps N: timed runs per measurement, both during the search and
    // in the final back-to-back comparison (CI uses 1 for speed; the
    // recorded numbers use the defaults).
    int reps = 5;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--reps" && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr, "usage: %s [--reps N]\n", argv[0]);
            return 2;
        }
    }

    bench::begin("BENCH_gemm_autotune — tuned vs fixed GEMM schedules",
                 "Shape-specialized schedule search on the skewed "
                 "workload suite; squares are the no-regression "
                 "control.");

    std::vector<SuiteShape> suite;
    const struct
    {
        const char *name;
        int64_t m, n, k;
    } workloads[] = {
        {"vocab_proj", 32, 10000, 650},
        {"step_decode", 1, 2600, 650},
        {"beam_decode", 8, 2600, 650},
        {"weight_grad", 2600, 650, 1120},
    };
    for (const auto &w : workloads)
        for (int combo = 0; combo < 4; ++combo)
            suite.push_back({w.name, w.m, w.n, w.k, (combo & 2) != 0,
                             (combo & 1) != 0, false});
    for (int64_t s : {128, 256, 512})
        suite.push_back({"square", s, s, s, false, false, true});

    // In-memory tuner: no cache file, so every row is searched on this
    // machine; persist=false keeps the bench from writing anywhere.
    tune::TuneOptions topt;
    topt.cache_path = "/dev/null";
    topt.persist = false;
    topt.reps = std::min(reps, 3);
    tune::Autotuner tuner(topt);
    const int threads = ThreadPool::global().numThreads();

    std::vector<Row> rows;
    for (const SuiteShape &s : suite) {
        const ops::GemmKey key{s.m, s.n, s.k, s.trans_a, s.trans_b,
                               threads};
        const tune::TuneOutcome outcome = tuner.tuneKey(key);
        // Re-measure both schedules back-to-back (median of N) so the
        // comparison is not polluted by search-time cache state.  When
        // the search kept the fixed default there is nothing to
        // compare — the "two" schedules run identical code, so timing
        // them twice would only measure machine noise — and the row is
        // a definitional 1.00x.
        const double fixed_us =
            tune::measureSchedule(key, ops::GemmSchedule::fixedDefault(),
                                  1, reps)
                .seconds *
            1e6;
        const double tuned_us =
            outcome.best == ops::GemmSchedule::fixedDefault()
                ? fixed_us
                : tune::measureSchedule(key, outcome.best, 1, reps)
                          .seconds *
                      1e6;
        rows.push_back({s, outcome.best, fixed_us, tuned_us});
        std::printf("  %-12s %5lld x %-5lld x %-5lld %s  fixed %9.1f us"
                    "  tuned %9.1f us  %.2fx\n",
                    s.name, static_cast<long long>(s.m),
                    static_cast<long long>(s.n),
                    static_cast<long long>(s.k),
                    comboName(s.trans_a, s.trans_b).c_str(), fixed_us,
                    tuned_us, fixed_us / tuned_us);
    }

    double log_sum = 0.0;
    int skewed = 0;
    double worst_square = 1e9;
    for (const Row &r : rows) {
        if (r.shape.square) {
            worst_square = std::min(worst_square, r.speedup());
        } else {
            log_sum += std::log(r.speedup());
            ++skewed;
        }
    }
    const double geomean = std::exp(log_sum / skewed);

    Table table({"shape", "M", "N", "K", "combo", "fixed_us", "tuned_us",
                 "speedup", "schedule"});
    for (const Row &r : rows)
        table.addRow({r.shape.name, std::to_string(r.shape.m),
                      std::to_string(r.shape.n),
                      std::to_string(r.shape.k),
                      comboName(r.shape.trans_a, r.shape.trans_b),
                      Table::fmt(r.fixed_us, 1), Table::fmt(r.tuned_us, 1),
                      Table::fmt(r.speedup(), 2), r.best.toString()});
    bench::emit(table, "BENCH_gemm_autotune");

    std::printf("skewed-suite geomean speedup: %.3fx (%d shapes)\n",
                geomean, skewed);
    std::printf("worst square tuned/fixed: %.3fx\n", worst_square);

    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    std::ofstream json("results/BENCH_gemm_autotune.json");
    json << "{\n  \"isa\": \"" << ops::gemmIsaName() << "\",\n"
         << "  \"threads\": " << threads << ",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        json << "    {\"shape\": \"" << r.shape.name << "\", \"m\": "
             << r.shape.m << ", \"n\": " << r.shape.n << ", \"k\": "
             << r.shape.k << ", \"combo\": \""
             << comboName(r.shape.trans_a, r.shape.trans_b)
             << "\", \"fixed_us\": " << r.fixed_us
             << ", \"tuned_us\": " << r.tuned_us << ", \"speedup\": "
             << r.speedup() << ", \"square\": "
             << (r.shape.square ? "true" : "false") << ", \"schedule\": \""
             << r.best.toString() << "\"}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"skewed_geomean_speedup\": " << geomean
         << ",\n  \"worst_square_ratio\": " << worst_square << "\n}\n";
    json.close();
    bench::note("results/BENCH_gemm_autotune.json written");

    const int64_t rejects =
        obs::counter("tune.validate_reject", obs::CounterKind::kScheduling)
            .value();
    if (rejects != 0) {
        std::printf("FAIL: %lld tuned schedules were not byte-identical "
                    "to gemmReference\n",
                    static_cast<long long>(rejects));
        return 1;
    }
    return 0;
}
