/**
 * @file
 * Fig. 7 — runtime profile of a 1-layer LSTM (B=64, H=512):
 * (a) Default vs CuDNN: Default splits the "f" block into many tiny
 *     kernels, so cudaLaunch time rivals GPU kernel time;
 * (b) CuDNN's kernel breakdown: sgemm (fully-connected) dominates.
 */
#include "bench_common.h"
#include "graph/autodiff.h"
#include "graph/ops/oplib.h"
#include "gpusim/timeline.h"
#include "rnn/stack.h"

using namespace echo;
namespace ol = echo::graph::oplib;

namespace {

gpusim::ProfileReport
profileBackend(rnn::RnnBackend backend)
{
    graph::Graph g;
    rnn::LstmSpec spec;
    spec.input_size = 512;
    spec.hidden = 512;
    spec.layers = 1;
    spec.batch = 64;
    spec.seq_len = 50;
    const graph::Val x = g.placeholder(
        Shape({spec.seq_len, spec.batch, spec.input_size}), "x");
    const rnn::LstmStack stack =
        rnn::buildLstmStack(g, x, spec, backend, "lstm");
    const int64_t numel = spec.seq_len * spec.batch * spec.hidden;
    const graph::Val flat =
        g.apply1(ol::reshape(Shape({1, 1, numel})), {stack.hs});
    const graph::Val ones =
        g.apply1(ol::constant(Shape({numel}), 1.0f), {});
    const graph::Val loss = g.apply1(
        ol::reshape(Shape({1})),
        {g.apply1(ol::dotLastAxis(), {flat, ones})});
    std::vector<graph::Val> wrt;
    for (const rnn::LstmWeights &w : stack.weights) {
        wrt.push_back(w.wx);
        wrt.push_back(w.wh);
        wrt.push_back(w.bias);
    }
    const auto gr = graph::backward(g, loss, wrt);
    std::vector<graph::Val> fetches = {loss};
    fetches.insert(fetches.end(), gr.weight_grads.begin(),
                   gr.weight_grads.end());
    return gpusim::simulateRun(fetches, gpusim::GpuSpec::titanXp());
}

} // namespace

int
main()
{
    bench::begin("Fig. 7(a): Default vs CuDNN profile "
                 "(1-layer LSTM, B=64, H=512, T=50)",
                 "Default's unfused cells spend as much CPU time in "
                 "cudaLaunch as the GPU spends computing.");

    Table table({"impl", "GPU kernels (ms)", "cudaLaunch (ms)",
                 "launch/kernel ratio", "kernel launches"});
    for (const rnn::RnnBackend backend :
         {rnn::RnnBackend::kDefault, rnn::RnnBackend::kCudnn}) {
        const auto rep = profileBackend(backend);
        table.addRow({rnn::backendName(backend),
                      Table::fmt(rep.gpu_kernel_time_us / 1e3, 2),
                      Table::fmt(rep.cuda_launch_time_us / 1e3, 2),
                      Table::fmt(rep.cuda_launch_time_us /
                                     rep.gpu_kernel_time_us,
                                 2),
                      std::to_string(rep.kernel_launches)});
    }
    bench::emit(table, "fig07a_profile");
    bench::note("paper: Default spends almost equal time in cudaLaunch "
                "and GPU kernels; CuDNN launches far fewer kernels.");

    bench::begin("Fig. 7(b): CuDNN GPU-kernel breakdown",
                 "sgemm-class (fully-connected) kernels dominate.");
    const auto cudnn = profileBackend(rnn::RnnBackend::kCudnn);
    Table breakdown({"kernel category", "time (ms)", "fraction"});
    for (const auto &[cat, us] : cudnn.kernel_time_by_category) {
        breakdown.addRow({cat, Table::fmt(us / 1e3, 2),
                          Table::fmtPercent(
                              us / cudnn.gpu_kernel_time_us)});
    }
    bench::emit(breakdown, "fig07b_cudnn_kernels");
    bench::note("paper: cuDNN runtime is dominated by sgemm "
                "(fully-connected) kernels.");
    return 0;
}
