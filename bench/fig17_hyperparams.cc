/**
 * @file
 * Fig. 17 — memory and throughput under the two Hieber et al. (Sockeye
 * paper) hyperparameter settings, "Groundhog" and "Best", which differ
 * from Zhu et al.'s on every axis — the generality check for the
 * footprint reduction.
 *
 * Stand-in settings (the Sockeye paper's configurations, adapted to
 * this model family): Groundhog = 1-layer bi-encoder with hidden 1024,
 * batch 80; Best = 4-layer encoder with hidden 512, batch 64.
 */
#include "bench_common.h"
#include "train/nmt_eval.h"

using namespace echo;
using pass::PassConfig;

namespace {

void
runSetting(const char *name, const models::NmtConfig &base,
           const std::string &csv_name)
{
    std::printf("--- %s (B=%lld, H=%lld, layers=%lld) ---\n", name,
                static_cast<long long>(base.batch),
                static_cast<long long>(base.hidden),
                static_cast<long long>(base.enc_layers));
    Table table({"impl", "memory (max bucket)",
                 "throughput (samples/s)", "memory reduction"});
    int64_t base_mem = 0;
    for (const PassConfig::Policy policy :
         {PassConfig::Policy::kOff, PassConfig::Policy::kManual}) {
        train::NmtEvalOptions opts;
        opts.policy = policy;
        const auto prof = train::profileNmtBucketed(
            base, train::iwsltBuckets(), opts);
        if (base_mem == 0)
            base_mem = prof.device_bytes;
        table.addRow(
            {policy == PassConfig::Policy::kOff ? "Default" : "EcoRNN",
             Table::fmtBytes(static_cast<uint64_t>(prof.device_bytes)),
             Table::fmt(prof.throughput, 1),
             Table::fmt(static_cast<double>(base_mem) /
                            prof.device_bytes,
                        2) +
                 "x"});
    }
    bench::emit(table, csv_name);
}

} // namespace

int
main()
{
    bench::begin("Fig. 17: Groundhog and Best hyperparameter settings",
                 "The reduction generalizes beyond Zhu et al.'s "
                 "hyperparameters.");

    models::NmtConfig groundhog;
    groundhog.batch = 80;
    groundhog.hidden = 1024;
    groundhog.enc_layers = 1;
    runSetting("Groundhog", groundhog, "fig17a_groundhog");

    models::NmtConfig best;
    best.batch = 64;
    best.hidden = 512;
    best.enc_layers = 4;
    runSetting("Best", best, "fig17b_best");

    bench::note("paper: EcoRNN reduces the footprint in both settings "
                "without losing performance.");
    return 0;
}
