/**
 * @file
 * Fig. 18 — the same Default-vs-Echo comparison on newer GPU
 * generations (Titan V, RTX 2080 Ti): faster parts benefit even more
 * from the larger batch the footprint reduction enables.
 */
#include "bench_common.h"
#include "train/nmt_eval.h"

using namespace echo;
using pass::PassConfig;

namespace {

void
runGpu(const gpusim::GpuSpec &gpu, const std::string &csv_name)
{
    std::printf("--- %s (%.1f TFLOPS, %.0f GB/s, %s) ---\n",
                gpu.name.c_str(), gpu.fp32_tflops, gpu.dram_gbps,
                Table::fmtBytes(static_cast<uint64_t>(
                                    gpu.mem_capacity_bytes))
                    .c_str());
    struct Config
    {
        const char *name;
        int64_t batch;
        PassConfig::Policy policy;
    };
    const Config configs[] = {
        {"Default, B=128", 128, PassConfig::Policy::kOff},
        {"EcoRNN, B=256", 256, PassConfig::Policy::kManual},
    };
    Table table({"configuration", "memory", "fits?",
                 "throughput (samples/s)", "vs Default"});
    double base = 0.0;
    for (const Config &c : configs) {
        models::NmtConfig cfg;
        cfg.batch = c.batch;
        train::NmtEvalOptions opts;
        opts.gpu = gpu;
        opts.policy = c.policy;
        const auto prof =
            train::profileNmtBucketed(cfg, train::iwsltBuckets(), opts);
        if (base == 0.0)
            base = prof.throughput;
        table.addRow(
            {c.name,
             Table::fmtBytes(static_cast<uint64_t>(prof.device_bytes)),
             prof.fits ? "yes" : "NO",
             Table::fmt(prof.throughput, 1),
             Table::fmt(prof.throughput / base, 2) + "x"});
    }
    bench::emit(table, csv_name);
}

} // namespace

int
main()
{
    bench::begin("Fig. 18: GPU hardware sensitivity",
                 "Newer GPUs benefit at least as much from the larger "
                 "batch Echo enables.");
    runGpu(gpusim::GpuSpec::titanXp(), "fig18_titan_xp");
    runGpu(gpusim::GpuSpec::titanV(), "fig18_titan_v");
    runGpu(gpusim::GpuSpec::rtx2080Ti(), "fig18_rtx2080ti");
    bench::note("paper: the batch-256 improvement grows from 1.3x "
                "(Titan Xp) to 1.5x (Titan V) and 1.4x (2080 Ti).");
    return 0;
}
