/**
 * @file
 * The element-wise fusion pass's contract suite:
 *
 *  - group legality: single-consumer interiors only, fetched and
 *    externally consumed values stay materialized, groups never span
 *    phases or time steps,
 *  - the hard byte-identity contract: fused vs. unfused word-LM
 *    training fetches and step-decoder outputs are bit-equal at 1, 2,
 *    and 4 threads,
 *  - the fusion.* counters are deterministic across identical builds,
 *  - footprint: fusion strictly shrinks the transient-liveness
 *    integral, and under the Echo recompute policy (echo-trace's
 *    default) strictly lowers the planner's pool peak at the
 *    echo-trace word-LM preset,
 *  - analysis::auditFusion is clean on the real model and catches a
 *    tampered fused program and a diverged frontier,
 *  - the Echo recompute pass still rewrites and audits cleanly on a
 *    fused graph.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "analysis/analysis.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "echo/recompute_pass.h"
#include "graph/autodiff.h"
#include "graph/executor.h"
#include "graph/fusion.h"
#include "graph/ops/op_fused_elementwise.h"
#include "graph/ops/oplib.h"
#include "memory/liveness.h"
#include "memory/planner.h"
#include "models/word_lm.h"
#include "obs/counters.h"

namespace echo::fusion {
namespace {

namespace ol = graph::oplib;
using graph::Graph;
using graph::Val;

/** Set ECHO_FUSION for a scope and restore the old value on exit. */
class FusionEnv
{
  public:
    explicit FusionEnv(const char *value)
    {
        const char *old = std::getenv("ECHO_FUSION");
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        if (value == nullptr)
            unsetenv("ECHO_FUSION");
        else
            setenv("ECHO_FUSION", value, 1);
    }
    ~FusionEnv()
    {
        if (had_old_)
            setenv("ECHO_FUSION", old_.c_str(), 1);
        else
            unsetenv("ECHO_FUSION");
    }

  private:
    bool had_old_ = false;
    std::string old_;
};

bool
bytesEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

/** Small word-LM config shared by the model-level tests. */
models::WordLmConfig
smallConfig()
{
    models::WordLmConfig cfg;
    cfg.vocab = 60;
    cfg.hidden = 16;
    cfg.layers = 2;
    cfg.batch = 4;
    cfg.seq_len = 8;
    return cfg;
}

/** Deterministic synthetic batch for @p cfg. */
data::LmBatch
syntheticBatch(const models::WordLmConfig &cfg, uint64_t seed)
{
    Rng rng(seed);
    data::LmBatch batch;
    batch.tokens = Tensor(Shape({cfg.batch, cfg.seq_len}));
    for (int64_t i = 0; i < batch.tokens.numel(); ++i)
        batch.tokens.data()[i] = static_cast<float>(
            rng.uniformInt(static_cast<uint64_t>(cfg.vocab)));
    batch.labels = Tensor(Shape({cfg.batch * cfg.seq_len}));
    for (int64_t i = 0; i < batch.labels.numel(); ++i)
        batch.labels.data()[i] = static_cast<float>(
            rng.uniformInt(static_cast<uint64_t>(cfg.vocab)));
    return batch;
}

TEST(Fusion, FusesGateChainIntoOneNode)
{
    Graph g;
    const Shape s({4, 8});
    const Val a = g.placeholder(s, "a");
    const Val b = g.placeholder(s, "b");
    const Val i = g.apply1(ol::sigmoidOp(), {a});
    const Val t = g.apply1(ol::tanhOp(), {b});
    const Val m = g.apply1(ol::mul(), {i, t});
    const Val out = g.apply1(ol::add(), {m, a});

    const FusionResult r = runFusionPass(g, {out});
    ASSERT_EQ(r.num_groups, 1);
    EXPECT_EQ(r.num_ops_fused, 4);
    EXPECT_EQ(r.num_values_elided, 3);
    EXPECT_EQ(r.bytes_elided, 3 * s.numel() * 4);

    ASSERT_EQ(r.groups.size(), 1u);
    const FusedGroup &group = r.groups[0];
    EXPECT_EQ(group.sink, out.node);
    EXPECT_EQ(out.node->op->name(), "fused_ew");
    // Frontier: the two placeholders (a appears once despite two uses).
    EXPECT_EQ(group.frontier.size(), 2u);
    EXPECT_EQ(out.node->inputs, group.frontier);
    // Interiors are orphaned: the fused graph reaches no sigmoid node.
    for (const graph::Node *n : graph::reachableNodes({out}))
        if (n->op != nullptr)
            EXPECT_EQ(n->op->name(), "fused_ew");
}

TEST(Fusion, FetchedAndExternallyConsumedValuesStayMaterialized)
{
    Graph g;
    const Shape s({3, 5});
    const Val a = g.placeholder(s, "a");
    const Val c = g.apply1(ol::sigmoidOp(), {a});
    const Val d = g.apply1(ol::tanhOp(), {c});
    const Val e = g.apply1(ol::mul(), {c, d});

    // c is fetched, so it must survive as a frontier input even though
    // every consumer sits inside the group.
    const FusionResult r = runFusionPass(g, {e, c});
    ASSERT_EQ(r.num_groups, 1);
    EXPECT_EQ(r.num_ops_fused, 2); // tanh + mul only
    EXPECT_EQ(c.node->op->name(), "sigmoid");
    ASSERT_EQ(r.groups[0].frontier.size(), 1u);
    EXPECT_EQ(r.groups[0].frontier[0], c);

    // A non-element-wise consumer outside the group pins its input too.
    Graph g2;
    const Val x = g2.placeholder(s, "x");
    const Val w = g2.weight(Shape({5, 5}), "w");
    const Val t = g2.apply1(ol::tanhOp(), {x});
    const Val u = g2.apply1(ol::sigmoidOp(), {t});
    const Val v = g2.apply1(ol::mul(), {t, u});
    const Val mm = g2.apply1(ol::gemm(false, false), {v, w});
    const Val y = g2.apply1(ol::gemm(false, false), {t, w});
    const FusionResult r2 = runFusionPass(g2, {mm, y});
    // t feeds the second gemm, so only {sigmoid, mul} can fuse.
    ASSERT_EQ(r2.num_groups, 1);
    EXPECT_EQ(r2.num_ops_fused, 2);
    EXPECT_EQ(t.node->op->name(), "tanh");
}

TEST(Fusion, GroupsNeverSpanPhasesOrTimeSteps)
{
    FusionEnv env("0"); // fuse explicitly below, after autodiff
    models::WordLmModel model(smallConfig());
    const FusionResult r =
        runFusionPass(model.graph(), model.fetches());
    ASSERT_GT(r.num_groups, 0);
    for (const FusedGroup &group : r.groups) {
        for (const graph::Node *m : group.members) {
            EXPECT_EQ(m->phase, group.sink->phase);
            EXPECT_EQ(m->time_step, group.sink->time_step);
        }
    }
}

TEST(Fusion, WordLmTrainingByteIdenticalAcrossThreads)
{
    const models::WordLmConfig cfg = smallConfig();
    std::unique_ptr<models::WordLmModel> unfused, fused;
    {
        FusionEnv env("0");
        unfused = std::make_unique<models::WordLmModel>(cfg);
    }
    {
        FusionEnv env("1");
        fused = std::make_unique<models::WordLmModel>(cfg);
    }
    ASSERT_GT(fused->fusionResult().num_groups, 0);

    Rng rng(7);
    const models::ParamStore params = unfused->initialParams(rng);
    const data::LmBatch batch = syntheticBatch(cfg, 11);

    graph::Executor ex_u(unfused->fetches());
    graph::Executor ex_f(fused->fetches());

    std::vector<Tensor> ref; // fused outputs at 1 thread
    for (const int threads : {1, 2, 4}) {
        ThreadPool::setGlobalNumThreads(threads);
        const std::vector<Tensor> out_u =
            ex_u.run(unfused->makeFeed(params, batch));
        const std::vector<Tensor> out_f =
            ex_f.run(fused->makeFeed(params, batch));
        ASSERT_EQ(out_u.size(), out_f.size());
        for (size_t i = 0; i < out_u.size(); ++i)
            EXPECT_TRUE(bytesEqual(out_u[i], out_f[i]))
                << "fetch " << i << " at " << threads << " threads";
        if (ref.empty()) {
            ref = out_f;
        } else {
            for (size_t i = 0; i < ref.size(); ++i)
                EXPECT_TRUE(bytesEqual(ref[i], out_f[i]))
                    << "fused fetch " << i << " differs between 1 and "
                    << threads << " threads";
        }
    }
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}

TEST(Fusion, StepDecoderByteIdenticalFusedVsUnfused)
{
    models::WordLmConfig cfg = smallConfig();
    std::unique_ptr<models::WordLmStepper> unfused, fused;
    {
        FusionEnv env("0");
        unfused = std::make_unique<models::WordLmStepper>(cfg, 3);
    }
    {
        FusionEnv env("1");
        fused = std::make_unique<models::WordLmStepper>(cfg, 3);
    }

    Rng rng(21);
    models::WordLmModel ref_model(cfg);
    const models::ParamStore params = ref_model.initialParams(rng);

    models::WordLmStepper::State st_u = unfused->initialState();
    models::WordLmStepper::State st_f = fused->initialState();
    Tensor token(Shape({3}));
    for (int step = 0; step < 4; ++step) {
        for (int64_t i = 0; i < token.numel(); ++i)
            token.data()[i] =
                static_cast<float>((step * 7 + i) % cfg.vocab);
        const Tensor logits_u = unfused->step(params, token, st_u);
        const Tensor logits_f = fused->step(params, token, st_f);
        EXPECT_TRUE(bytesEqual(logits_u, logits_f)) << "step " << step;
        for (int64_t l = 0; l < cfg.layers; ++l) {
            EXPECT_TRUE(bytesEqual(st_u.h[static_cast<size_t>(l)],
                                   st_f.h[static_cast<size_t>(l)]));
            EXPECT_TRUE(bytesEqual(st_u.c[static_cast<size_t>(l)],
                                   st_f.c[static_cast<size_t>(l)]));
        }
    }
}

TEST(Fusion, CountersAreDeterministicAcrossIdenticalBuilds)
{
    FusionEnv env("1");
    auto counterValue = [](const std::string &name) {
        for (const obs::CounterSample &c : obs::snapshotCounters())
            if (c.name == name) {
                EXPECT_EQ(c.kind, obs::CounterKind::kDeterministic);
                return c.value;
            }
        return int64_t{0};
    };

    const char *names[] = {"fusion.groups", "fusion.ops_fused",
                           "fusion.values_elided",
                           "fusion.bytes_elided"};
    int64_t before[4], delta1[4];
    for (int i = 0; i < 4; ++i)
        before[i] = counterValue(names[i]);
    models::WordLmModel first(smallConfig());
    for (int i = 0; i < 4; ++i)
        delta1[i] = counterValue(names[i]) - before[i];
    for (int i = 0; i < 4; ++i)
        before[i] = counterValue(names[i]);
    models::WordLmModel second(smallConfig());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(counterValue(names[i]) - before[i], delta1[i])
            << names[i];

    // The counter deltas mirror the journaled result exactly.
    const FusionResult &r = second.fusionResult();
    EXPECT_EQ(delta1[0], r.num_groups);
    EXPECT_EQ(delta1[1], r.num_ops_fused);
    EXPECT_EQ(delta1[2], r.num_values_elided);
    EXPECT_EQ(delta1[3], r.bytes_elided);
}

TEST(Fusion, ShrinksTransientFootprint)
{
    // The echo-trace word-LM preset.
    models::WordLmConfig cfg;
    cfg.vocab = 120;
    cfg.hidden = 32;
    cfg.layers = 2;
    cfg.batch = 8;
    cfg.seq_len = 16;

    // The liveness integral (transient byte-positions) must strictly
    // drop: every elided interior was live for at least one position.
    auto transientIntegral = [](const memory::LivenessResult &lv) {
        int64_t sum = 0;
        for (const memory::ValueInfo &v : lv.values)
            if (!v.persistent)
                sum += v.bytes * (v.last_use_pos - v.def_pos + 1);
        return sum;
    };

    // Under the Echo recompute policy — echo-trace's default — the
    // pool peak itself must strictly drop: fused nodes are cheap
    // recompute candidates, so the pass finds better regions.
    auto poolPeakUnderRecompute = [](models::WordLmModel &model) {
        pass::PassConfig pcfg;
        pcfg.policy = pass::PassConfig::Policy::kAuto;
        pass::runRecomputePass(model.graph(), model.fetches(), pcfg);
        const memory::LivenessResult lv = memory::analyzeLiveness(
            model.fetches(), model.weightGrads());
        return memory::planMemory(lv).pool_peak_bytes;
    };

    int64_t integral_u, integral_f, peak_u, peak_f;
    {
        FusionEnv env("0");
        models::WordLmModel model(cfg);
        integral_u = transientIntegral(memory::analyzeLiveness(
            model.fetches(), model.weightGrads()));
        peak_u = poolPeakUnderRecompute(model);
    }
    {
        FusionEnv env("1");
        models::WordLmModel model(cfg);
        ASSERT_GT(model.fusionResult().bytes_elided, 0);
        integral_f = transientIntegral(memory::analyzeLiveness(
            model.fetches(), model.weightGrads()));
        peak_f = poolPeakUnderRecompute(model);
    }
    EXPECT_LT(integral_f, integral_u);
    EXPECT_LT(peak_f, peak_u);
}

TEST(Fusion, AuditCleanOnWordLmAndCatchesTampering)
{
    FusionEnv env("1");
    models::WordLmModel model(smallConfig());
    const FusionResult &r = model.fusionResult();
    ASSERT_GT(r.num_groups, 0);
    EXPECT_TRUE(analysis::auditFusion(model.fetches(), r).ok());

    // Tamper with the fused program: the value-equality-metadata check
    // must flag the signature divergence.
    graph::Node *sink = r.groups[0].sink;
    const graph::OpPtr original = sink->op;
    const auto *fused_op =
        dynamic_cast<const graph::oplib::FusedElementwiseOp *>(
            original.get());
    ASSERT_NE(fused_op, nullptr);
    graph::oplib::FusedElementwiseSpec spec = fused_op->spec();
    graph::EwInstr &instr = spec.program.back();
    switch (instr.opcode) {
      case graph::EwOpcode::kAdd:
        instr.opcode = graph::EwOpcode::kSub;
        break;
      case graph::EwOpcode::kSub:
      case graph::EwOpcode::kMul:
        instr.opcode = graph::EwOpcode::kAdd;
        break;
      case graph::EwOpcode::kAddScalar:
      case graph::EwOpcode::kMulScalar:
        instr.scalar += 0.5f;
        break;
      case graph::EwOpcode::kTanh:
        instr.opcode = graph::EwOpcode::kSigmoid;
        break;
      default:
        instr.opcode = graph::EwOpcode::kTanh;
        break;
    }
    sink->op = graph::oplib::fusedElementwise(spec);
    analysis::AnalysisReport tampered =
        analysis::auditFusion(model.fetches(), r);
    EXPECT_FALSE(tampered.ok());
    bool mismatch_flagged = false;
    for (const analysis::Diagnostic &d : tampered.diagnostics)
        mismatch_flagged |=
            d.check == analysis::Check::kFusionValueMismatch;
    EXPECT_TRUE(mismatch_flagged);
    sink->op = original;

    // A frontier that diverged from the journal is an illegal group.
    if (sink->inputs.size() >= 2) {
        std::swap(sink->inputs[0], sink->inputs[1]);
        analysis::AnalysisReport diverged =
            analysis::auditFusion(model.fetches(), r);
        EXPECT_FALSE(diverged.ok());
        bool illegal_flagged = false;
        for (const analysis::Diagnostic &d : diverged.diagnostics)
            illegal_flagged |=
                d.check == analysis::Check::kFusionIllegalGroup;
        EXPECT_TRUE(illegal_flagged);
        std::swap(sink->inputs[0], sink->inputs[1]);
    }
    EXPECT_TRUE(analysis::auditFusion(model.fetches(), r).ok());
}

TEST(Fusion, RecomputePassRewritesAndAuditsCleanlyOnFusedGraph)
{
    FusionEnv env("1");
    models::WordLmModel model(smallConfig());
    ASSERT_GT(model.fusionResult().num_groups, 0);

    const analysis::GraphSnapshot snapshot = analysis::snapshotGraph(
        model.graph(), model.fetches(), model.weightGrads());
    pass::PassConfig cfg;
    cfg.policy = pass::PassConfig::Policy::kAuto;
    const pass::PassResult result = pass::runRecomputePass(
        model.graph(), model.fetches(), cfg);
    EXPECT_GT(result.num_regions, 0);

    analysis::AnalysisReport report =
        analysis::analyzeAll(model.fetches(), model.weightGrads());
    report.merge(analysis::auditRecomputePass(
        snapshot, model.graph(), model.fetches(), model.weightGrads(),
        result));
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(Fusion, EnvSwitchDisablesPass)
{
    {
        FusionEnv env("0");
        EXPECT_FALSE(fusionEnvEnabled());
        Graph g;
        const Val a = g.placeholder(Shape({2, 2}), "a");
        const Val b =
            g.apply1(ol::tanhOp(), {g.apply1(ol::sigmoidOp(), {a})});
        EXPECT_EQ(fuseIfEnabled(g, {b}).num_groups, 0);
        EXPECT_EQ(b.node->op->name(), "tanh");
    }
    {
        FusionEnv env("1");
        EXPECT_TRUE(fusionEnvEnabled());
    }
    {
        FusionEnv env(nullptr); // unset = on by default
        EXPECT_TRUE(fusionEnvEnabled());
    }
}

} // namespace
} // namespace echo::fusion
