/**
 * @file
 * Autodiff correctness: every differentiable op's analytic gradient is
 * checked against central finite differences.  This is the foundation
 * the Echo pass's gradient-equivalence verification builds on.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/rng.h"
#include "graph/autodiff.h"
#include "graph/executor.h"
#include "graph/ops/op_fused_rnn.h"
#include "graph/ops/oplib.h"

namespace echo::graph {
namespace {

namespace ol = oplib;

/**
 * Compare analytic gradients of @p loss w.r.t.\ @p wrt against central
 * finite differences, perturbing every element of every wrt tensor.
 */
void
checkGradients(Graph &g, const Val &loss, const std::vector<Val> &wrt,
               FeedDict feed, double eps = 1e-3, double tol = 2e-2)
{
    GradientResult gr = backward(g, loss, wrt);

    std::vector<Val> fetches = {loss};
    for (const Val &gv : gr.weight_grads)
        fetches.push_back(gv);
    Executor ex(fetches);
    const std::vector<Tensor> analytic = ex.run(feed);

    Executor loss_ex({loss});
    for (size_t wi = 0; wi < wrt.size(); ++wi) {
        Tensor &param = feed[wrt[wi].node];
        const Tensor &grad = analytic[wi + 1];
        ASSERT_EQ(grad.shape(), param.shape());
        for (int64_t i = 0; i < param.numel(); ++i) {
            const float saved = param.at(i);
            param.at(i) = saved + static_cast<float>(eps);
            const double up = loss_ex.run(feed)[0].at(0);
            param.at(i) = saved - static_cast<float>(eps);
            const double down = loss_ex.run(feed)[0].at(0);
            param.at(i) = saved;
            const double numeric = (up - down) / (2.0 * eps);
            EXPECT_NEAR(grad.at(i), numeric,
                        tol * std::max(1.0, std::abs(numeric)))
                << "wrt #" << wi << " ("
                << wrt[wi].node->name << ") element " << i;
        }
    }
}

/** Reduce any value to a scalar via a fixed random projection + CE-free
 *  quadratic bowl, keeping gradients well-conditioned. */
Val
scalarize(Graph &g, const Val &v)
{
    const Shape &s = Graph::shapeOf(v);
    Val flat = v;
    if (s.ndim() != 2)
        flat = g.apply1(ol::reshape(Shape({1, s.numel()})), {v});
    else if (s[0] != 1)
        flat = g.apply1(ol::reshape(Shape({1, s.numel()})), {v});
    // loss = sum(tanh(flat)) realized via dot with ones.
    Val t = g.apply1(ol::tanhOp(), {flat});
    Val ones = g.apply1(ol::constant(Shape({s.numel()}), 1.0f), {});
    Val dotted = g.apply1(
        ol::reshape(Shape({1, 1, s.numel()})), {t});
    Val score = g.apply1(ol::dotLastAxis(), {dotted, ones});
    return g.apply1(ol::reshape(Shape({1})), {score});
}

TEST(Autodiff, ScaleChain)
{
    Graph g;
    Val x = g.placeholder(Shape({1, 3}), "x");
    Val y = g.apply1(ol::scale(2.5f), {x});
    Val loss = scalarize(g, y);
    Rng rng(1);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({1, 3}), rng, -0.5f, 0.5f);
    checkGradients(g, loss, {x}, feed);
}

class BinaryOpGrad
    : public ::testing::TestWithParam<std::function<OpPtr()>>
{
};

TEST_P(BinaryOpGrad, MatchesFiniteDifference)
{
    Graph g;
    Val a = g.placeholder(Shape({2, 3}), "a");
    Val b = g.placeholder(Shape({2, 3}), "b");
    Val y = g.apply1(GetParam()(), {a, b});
    Val loss = scalarize(g, y);
    Rng rng(2);
    FeedDict feed;
    feed[a.node] = Tensor::uniform(Shape({2, 3}), rng, 0.2f, 0.8f);
    feed[b.node] = Tensor::uniform(Shape({2, 3}), rng, 0.2f, 0.8f);
    checkGradients(g, loss, {a, b}, feed);
}

INSTANTIATE_TEST_SUITE_P(
    AddSubMul, BinaryOpGrad,
    ::testing::Values(std::function<OpPtr()>(&ol::add),
                      std::function<OpPtr()>(&ol::sub),
                      std::function<OpPtr()>(&ol::mul)));

class UnaryOpGrad
    : public ::testing::TestWithParam<std::function<OpPtr()>>
{
};

TEST_P(UnaryOpGrad, MatchesFiniteDifference)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 4}), "x");
    Val y = g.apply1(GetParam()(), {x});
    Val loss = scalarize(g, y);
    Rng rng(3);
    FeedDict feed;
    // Stay away from relu's kink at 0.
    feed[x.node] = Tensor::uniform(Shape({2, 4}), rng, 0.3f, 1.2f);
    checkGradients(g, loss, {x}, feed);
}

INSTANTIATE_TEST_SUITE_P(
    Activations, UnaryOpGrad,
    ::testing::Values(std::function<OpPtr()>(&ol::tanhOp),
                      std::function<OpPtr()>(&ol::sigmoidOp),
                      std::function<OpPtr()>(&ol::reluOp),
                      std::function<OpPtr()>(&ol::neg)));

class GemmGrad
    : public ::testing::TestWithParam<std::tuple<bool, bool>>
{
};

TEST_P(GemmGrad, MatchesFiniteDifference)
{
    const auto [ta, tb] = GetParam();
    const int64_t m = 2, n = 3, k = 4;
    Graph g;
    Val a = g.placeholder(ta ? Shape({k, m}) : Shape({m, k}), "a");
    Val b = g.placeholder(tb ? Shape({n, k}) : Shape({k, n}), "b");
    Val y = g.apply1(ol::gemm(ta, tb), {a, b});
    Val loss = scalarize(g, y);
    Rng rng(4);
    FeedDict feed;
    feed[a.node] = Tensor::uniform(Graph::shapeOf(a), rng, -0.5f, 0.5f);
    feed[b.node] = Tensor::uniform(Graph::shapeOf(b), rng, -0.5f, 0.5f);
    checkGradients(g, loss, {a, b}, feed);
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmGrad,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

class BmmGrad : public ::testing::TestWithParam<std::tuple<bool, bool>>
{
};

TEST_P(BmmGrad, MatchesFiniteDifference)
{
    const auto [ta, tb] = GetParam();
    const int64_t bt = 2, m = 2, n = 2, k = 3;
    Graph g;
    Val a = g.placeholder(ta ? Shape({bt, k, m}) : Shape({bt, m, k}),
                          "a");
    Val b = g.placeholder(tb ? Shape({bt, n, k}) : Shape({bt, k, n}),
                          "b");
    Val y = g.apply1(ol::bmm(ta, tb), {a, b});
    Val loss = scalarize(g, y);
    Rng rng(5);
    FeedDict feed;
    feed[a.node] = Tensor::uniform(Graph::shapeOf(a), rng, -0.5f, 0.5f);
    feed[b.node] = Tensor::uniform(Graph::shapeOf(b), rng, -0.5f, 0.5f);
    checkGradients(g, loss, {a, b}, feed);
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, BmmGrad,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Autodiff, AddBias)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 3}), "x");
    Val b = g.placeholder(Shape({3}), "b");
    Val loss = scalarize(g, g.apply1(ol::addBias(), {x, b}));
    Rng rng(6);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({2, 3}), rng, -0.5f, 0.5f);
    feed[b.node] = Tensor::uniform(Shape({3}), rng, -0.5f, 0.5f);
    checkGradients(g, loss, {x, b}, feed);
}

TEST(Autodiff, BroadcastAddBT)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 3, 2}), "x");
    Val q = g.placeholder(Shape({2, 2}), "q");
    Val loss = scalarize(g, g.apply1(ol::broadcastAddBT(), {x, q}));
    Rng rng(7);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({2, 3, 2}), rng, -0.5f, 0.5f);
    feed[q.node] = Tensor::uniform(Shape({2, 2}), rng, -0.5f, 0.5f);
    checkGradients(g, loss, {x, q}, feed);
}

TEST(Autodiff, SumAxis1)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 3, 2}), "x");
    Val loss = scalarize(g, g.apply1(ol::sumAxis1(), {x}));
    Rng rng(8);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({2, 3, 2}), rng, -0.3f, 0.3f);
    checkGradients(g, loss, {x}, feed);
}

TEST(Autodiff, AttentionScoreComposite)
{
    // dot(tanh(layernorm(broadcast(x) + q)), v) — the O-shape region.
    Graph g;
    Val hs = g.placeholder(Shape({2, 3, 4}), "hs");
    Val q = g.placeholder(Shape({2, 4}), "q");
    Val v = g.placeholder(Shape({4}), "v");
    Val e = g.apply1(ol::broadcastAddBT(), {hs, q});
    Val ln = g.apply(ol::layerNorm(), {e})[0];
    Val th = g.apply1(ol::tanhOp(), {ln});
    Val scores = g.apply1(ol::dotLastAxis(), {th, v});
    Val loss = scalarize(g, scores);
    Rng rng(9);
    FeedDict feed;
    feed[hs.node] = Tensor::uniform(Shape({2, 3, 4}), rng, -1.0f, 1.0f);
    feed[q.node] = Tensor::uniform(Shape({2, 4}), rng, -1.0f, 1.0f);
    feed[v.node] = Tensor::uniform(Shape({4}), rng, -1.0f, 1.0f);
    checkGradients(g, loss, {hs, q, v}, feed, 1e-3, 5e-2);
}

TEST(Autodiff, ScaleRowsAndRowDot)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 2, 3}), "x");
    Val w = g.placeholder(Shape({2, 2}), "w");
    Val y = g.apply1(ol::scaleRowsBT(), {x, w});
    Val d = g.apply1(ol::rowDotBT(), {y, x});
    Val loss = scalarize(g, d);
    Rng rng(10);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({2, 2, 3}), rng, -0.5f, 0.5f);
    feed[w.node] = Tensor::uniform(Shape({2, 2}), rng, -0.5f, 0.5f);
    checkGradients(g, loss, {x, w}, feed);
}

TEST(Autodiff, Softmax)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 5}), "x");
    Val loss = scalarize(g, g.apply1(ol::softmax(), {x}));
    Rng rng(11);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({2, 5}), rng, -1.0f, 1.0f);
    checkGradients(g, loss, {x}, feed);
}

TEST(Autodiff, CrossEntropy)
{
    Graph g;
    Val logits = g.placeholder(Shape({3, 4}), "logits");
    Val labels = g.placeholder(Shape({3}), "labels");
    Val loss = g.apply1(ol::crossEntropyLoss(), {logits, labels});
    Rng rng(12);
    FeedDict feed;
    feed[logits.node] =
        Tensor::uniform(Shape({3, 4}), rng, -1.0f, 1.0f);
    feed[labels.node] = Tensor(Shape({3}), {0, 2, 3});
    checkGradients(g, loss, {logits}, feed);
}

TEST(Autodiff, CrossEntropyWithPadding)
{
    Graph g;
    Val logits = g.placeholder(Shape({3, 4}), "logits");
    Val labels = g.placeholder(Shape({3}), "labels");
    Val loss = g.apply1(ol::crossEntropyLoss(), {logits, labels});
    Rng rng(13);
    FeedDict feed;
    feed[logits.node] =
        Tensor::uniform(Shape({3, 4}), rng, -1.0f, 1.0f);
    feed[labels.node] = Tensor(Shape({3}), {0, -1.0f, 3});
    checkGradients(g, loss, {logits}, feed);
}

TEST(Autodiff, Embedding)
{
    Graph g;
    Val table = g.placeholder(Shape({4, 3}), "table");
    Val ids = g.placeholder(Shape({2, 2}), "ids");
    Val emb = g.apply1(ol::embedding(), {table, ids});
    Val loss = scalarize(g, emb);
    Rng rng(14);
    FeedDict feed;
    feed[table.node] =
        Tensor::uniform(Shape({4, 3}), rng, -0.5f, 0.5f);
    feed[ids.node] = Tensor(Shape({2, 2}), {0, 3, 3, 1});
    checkGradients(g, loss, {table}, feed);
}

TEST(Autodiff, ShapePlumbingChain)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 3, 4}), "x");
    Val p = g.apply1(ol::permute3d({1, 0, 2}), {x});
    Val r = g.apply1(ol::reverseAxis(0, true), {p});
    Val s = g.apply1(ol::sliceOp(2, 1, 3), {r});
    Val f = g.apply1(ol::reshape(Shape({3, 4})), {s});
    Val t = g.apply1(ol::transpose2d(), {f});
    Val loss = scalarize(g, t);
    Rng rng(15);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({2, 3, 4}), rng, -0.5f, 0.5f);
    checkGradients(g, loss, {x}, feed);
}

TEST(Autodiff, ConcatGrad)
{
    Graph g;
    Val a = g.placeholder(Shape({2, 2}), "a");
    Val b = g.placeholder(Shape({2, 3}), "b");
    Val c = g.apply1(ol::concat(1), {a, b});
    Val loss = scalarize(g, c);
    Rng rng(16);
    FeedDict feed;
    feed[a.node] = Tensor::uniform(Shape({2, 2}), rng, -0.5f, 0.5f);
    feed[b.node] = Tensor::uniform(Shape({2, 3}), rng, -0.5f, 0.5f);
    checkGradients(g, loss, {a, b}, feed);
}

TEST(Autodiff, GradAccumulationAcrossConsumers)
{
    // x feeds two branches; gradient must be the sum of both paths.
    Graph g;
    Val x = g.placeholder(Shape({1, 3}), "x");
    Val y1 = g.apply1(ol::scale(2.0f), {x});
    Val y2 = g.apply1(ol::tanhOp(), {x});
    Val y = g.apply1(ol::add(), {y1, y2});
    Val loss = scalarize(g, y);
    Rng rng(17);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({1, 3}), rng, -0.5f, 0.5f);
    checkGradients(g, loss, {x}, feed);
}

TEST(Autodiff, UnusedWeightGetsZeroGrad)
{
    Graph g;
    Val x = g.placeholder(Shape({1, 2}), "x");
    Val w = g.weight(Shape({3, 3}), "unused");
    Val loss = scalarize(g, g.apply1(ol::tanhOp(), {x}));
    GradientResult gr = backward(g, loss, {w});
    ASSERT_EQ(gr.weight_grads.size(), 1u);
    Executor ex({gr.weight_grads[0]});
    FeedDict feed;
    Rng rng(18);
    feed[x.node] = Tensor::uniform(Shape({1, 2}), rng);
    feed[w.node] = Tensor::uniform(Shape({3, 3}), rng);
    auto out = ex.run(feed);
    EXPECT_DOUBLE_EQ(out[0].sum(), 0.0);
}

TEST(Autodiff, BackwardNodesTagged)
{
    Graph g;
    Val x = g.placeholder(Shape({1, 2}), "x");
    Val y;
    {
        TagScope tag(g, "attention");
        y = g.apply1(ol::tanhOp(), {x});
    }
    Val loss = scalarize(g, y);
    backward(g, loss, {});
    bool found_tagged_bwd = false;
    for (const auto &n : g.nodes())
        if (n->phase == Phase::kBackward &&
            n->layer_tag == "attention")
            found_tagged_bwd = true;
    EXPECT_TRUE(found_tagged_bwd);
}

TEST(Autodiff, FusedLstmLayerGradient)
{
    const int64_t t = 2, b = 2, i = 3, h = 2;
    Graph g;
    Val x = g.placeholder(Shape({t, b, i}), "x");
    Val wx = g.weight(Shape({4 * h, i}), "wx");
    Val wh = g.weight(Shape({4 * h, h}), "wh");
    Val bias = g.weight(Shape({4 * h}), "bias");
    Val h0 = g.placeholder(Shape({b, h}), "h0");
    Val c0 = g.placeholder(Shape({b, h}), "c0");
    auto outs = g.apply(ol::fusedLstmLayer(ol::FusedRnnStyle::kCudnn),
                        {x, wx, wh, bias, h0, c0});
    Val loss = scalarize(g, outs[0]);
    Rng rng(19);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({t, b, i}), rng, -0.5f, 0.5f);
    feed[wx.node] =
        Tensor::uniform(Shape({4 * h, i}), rng, -0.5f, 0.5f);
    feed[wh.node] =
        Tensor::uniform(Shape({4 * h, h}), rng, -0.5f, 0.5f);
    feed[bias.node] = Tensor::uniform(Shape({4 * h}), rng, -0.2f, 0.2f);
    feed[h0.node] = Tensor::uniform(Shape({b, h}), rng, -0.3f, 0.3f);
    feed[c0.node] = Tensor::uniform(Shape({b, h}), rng, -0.3f, 0.3f);
    checkGradients(g, loss, {x, wx, wh, bias, h0, c0}, feed, 1e-3,
                   5e-2);
}

TEST(Autodiff, Conv2dGradient)
{
    Graph g;
    Val x = g.placeholder(Shape({1, 2, 4, 4}), "x");
    Val w = g.weight(Shape({2, 2, 3, 3}), "w");
    Val y = g.apply1(ol::conv2d(1), {x, w});
    Val pooled = g.apply1(ol::globalAvgPool(), {y});
    Val loss = scalarize(g, pooled);
    Rng rng(20);
    FeedDict feed;
    feed[x.node] =
        Tensor::uniform(Shape({1, 2, 4, 4}), rng, -0.5f, 0.5f);
    feed[w.node] =
        Tensor::uniform(Shape({2, 2, 3, 3}), rng, -0.3f, 0.3f);
    checkGradients(g, loss, {x, w}, feed, 1e-3, 5e-2);
}

TEST(Autodiff, StridedConvGradient)
{
    Graph g;
    Val x = g.placeholder(Shape({1, 1, 4, 4}), "x");
    Val w = g.weight(Shape({2, 1, 3, 3}), "w");
    Val y = g.apply1(ol::conv2d(2), {x, w});
    Val pooled = g.apply1(ol::globalAvgPool(), {y});
    Val loss = scalarize(g, pooled);
    Rng rng(21);
    FeedDict feed;
    feed[x.node] =
        Tensor::uniform(Shape({1, 1, 4, 4}), rng, -0.5f, 0.5f);
    feed[w.node] =
        Tensor::uniform(Shape({2, 1, 3, 3}), rng, -0.3f, 0.3f);
    checkGradients(g, loss, {x, w}, feed, 1e-3, 5e-2);
}

} // namespace
} // namespace echo::graph
