/**
 * @file
 * Tests for the graph IR: construction, shape inference, tagging,
 * scheduling, and the numeric executor.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "analysis/graph_verifier.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "graph/executor.h"
#include "graph/graph.h"
#include "graph/ops/op_fused_rnn.h"
#include "graph/ops/oplib.h"
#include "graph/schedule.h"
#include "tensor/ops.h"

namespace echo::graph {
namespace {

namespace ol = oplib;

TEST(Graph, PlaceholderAndWeightShapes)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 3}), "x");
    Val w = g.weight(Shape({4, 3}), "w");
    EXPECT_EQ(Graph::shapeOf(x), Shape({2, 3}));
    EXPECT_EQ(Graph::shapeOf(w), Shape({4, 3}));
    EXPECT_EQ(g.numNodes(), 2u);
    EXPECT_EQ(g.weights().size(), 1u);
    EXPECT_EQ(g.placeholders().size(), 1u);
}

TEST(Graph, ApplyInfersShapes)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 3}), "x");
    Val w = g.weight(Shape({4, 3}), "w");
    Val y = g.apply1(ol::gemm(false, true), {x, w});
    EXPECT_EQ(Graph::shapeOf(y), Shape({2, 4}));
}

TEST(Graph, TagScopePropagates)
{
    Graph g;
    Val x = g.placeholder(Shape({2}), "x");
    {
        TagScope scope(g, "attention");
        Val y = g.apply1(ol::tanhOp(), {x});
        EXPECT_EQ(y.node->layer_tag, "attention");
    }
    Val z = g.apply1(ol::tanhOp(), {x});
    EXPECT_EQ(z.node->layer_tag, "");
}

TEST(Graph, TimeStepRecorded)
{
    Graph g;
    Val x = g.placeholder(Shape({2}), "x");
    g.setTimeStep(5);
    Val y = g.apply1(ol::tanhOp(), {x});
    EXPECT_EQ(y.node->time_step, 5);
    g.setTimeStep(-1);
    EXPECT_EQ(x.node->time_step, -1);
}

TEST(Graph, ToStringMentionsOps)
{
    Graph g;
    Val x = g.placeholder(Shape({2}), "input_x");
    g.apply1(ol::tanhOp(), {x});
    const std::string s = g.toString();
    EXPECT_NE(s.find("input_x"), std::string::npos);
    EXPECT_NE(s.find("tanh"), std::string::npos);
}

TEST(Reachable, OnlyAncestorsIncluded)
{
    Graph g;
    Val x = g.placeholder(Shape({2}), "x");
    Val used = g.apply1(ol::tanhOp(), {x});
    g.apply1(ol::sigmoidOp(), {x}); // dead branch
    auto nodes = reachableNodes({used});
    EXPECT_EQ(nodes.size(), 2u);
}

TEST(Schedule, TopologicalAndComplete)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 3}), "x");
    Val w = g.weight(Shape({4, 3}), "w");
    Val y = g.apply1(ol::gemm(false, true), {x, w});
    Val z = g.apply1(ol::tanhOp(), {y});
    auto sched = buildSchedule({z});
    ASSERT_EQ(sched.size(), 4u);
    EXPECT_EQ(sched.back()->op->name(), "tanh");
}

TEST(Graph, BuiltGraphsPassStaticVerifier)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 3}), "x");
    Val w = g.weight(Shape({4, 3}), "w");
    Val y = g.apply1(ol::gemm(false, true), {x, w});
    Val z = g.apply1(ol::tanhOp(), {y});
    EXPECT_TRUE(analysis::verifyGraph(g).ok());
    EXPECT_TRUE(analysis::verifyFetches({z}).ok());
}

TEST(Schedule, RecomputeNodesAnchorBeforeConsumer)
{
    Graph g;
    Val x = g.placeholder(Shape({2}), "x");
    Val a = g.apply1(ol::tanhOp(), {x});

    // Fake a backward region with an intervening node, then a recompute
    // node consumed late.
    g.setPhase(Phase::kBackward);
    Val b1 = g.apply1(ol::sigmoidOp(), {x}, "bwd_early");
    g.setPhase(Phase::kRecompute);
    Val r = g.apply1(ol::tanhOp(), {x}, "replay");
    g.setPhase(Phase::kBackward);
    Val b2 = g.apply1(ol::mul(), {r, b1}, "bwd_late");
    g.setPhase(Phase::kForward);

    auto sched = buildSchedule({a, b2});
    // Expected order: x, a(fwd), bwd_early, replay, bwd_late.
    std::vector<std::string> names;
    for (Node *n : sched)
        names.push_back(n->name);
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[2], "bwd_early");
    EXPECT_EQ(names[3], "replay");
    EXPECT_EQ(names[4], "bwd_late");
}

TEST(Executor, RunsSimpleChain)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 2}), "x");
    Val y = g.apply1(ol::scale(2.0f), {x});
    Val z = g.apply1(ol::tanhOp(), {y});

    Executor ex({z});
    FeedDict feed;
    feed[x.node] = Tensor(Shape({2, 2}), {0.0f, 1.0f, -1.0f, 0.5f});
    auto out = ex.run(feed);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0].at(0, 1), std::tanh(2.0f), 1e-6);
    EXPECT_NEAR(out[0].at(1, 0), std::tanh(-2.0f), 1e-6);
}

TEST(Executor, MultiOutputOpFetches)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 4}), "x");
    std::vector<Val> outs = g.apply(ol::layerNorm(), {x});
    ASSERT_EQ(outs.size(), 2u);

    Executor ex({outs[0], outs[1]});
    Rng rng(7);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({2, 4}), rng, -2.0f, 2.0f);
    auto result = ex.run(feed);
    EXPECT_EQ(result[0].shape(), Shape({2, 4}));
    EXPECT_EQ(result[1].shape(), Shape({2}));
    EXPECT_GT(result[1].at(0), 0.0f); // rstd is positive
}

TEST(Executor, DiamondDependency)
{
    Graph g;
    Val x = g.placeholder(Shape({3}), "x");
    Val a = g.apply1(ol::scale(2.0f), {x});
    Val b = g.apply1(ol::scale(3.0f), {x});
    Val c = g.apply1(ol::add(), {a, b});

    Executor ex({c});
    FeedDict feed;
    feed[x.node] = Tensor(Shape({3}), {1, 2, 3});
    auto out = ex.run(feed);
    EXPECT_FLOAT_EQ(out[0].at(2), 15.0f);
}

TEST(Executor, SameValueUsedTwice)
{
    Graph g;
    Val x = g.placeholder(Shape({2}), "x");
    Val y = g.apply1(ol::mul(), {x, x});
    Executor ex({y});
    FeedDict feed;
    feed[x.node] = Tensor(Shape({2}), {3.0f, -4.0f});
    auto out = ex.run(feed);
    EXPECT_FLOAT_EQ(out[0].at(0), 9.0f);
    EXPECT_FLOAT_EQ(out[0].at(1), 16.0f);
}

TEST(Executor, MissingFeedDies)
{
    Graph g;
    Val x = g.placeholder(Shape({2}), "x");
    Val y = g.apply1(ol::tanhOp(), {x});
    Executor ex({y});
    FeedDict feed;
    EXPECT_EXIT({ ex.run(feed); },
                ::testing::ExitedWithCode(1), "no feed");
}

TEST(Executor, ConstantNeedsNoFeed)
{
    Graph g;
    Val c = g.apply1(ol::constant(Shape({2, 2}), 3.5f), {});
    Executor ex({c});
    auto out = ex.run({});
    EXPECT_DOUBLE_EQ(out[0].sum(), 14.0);
}

TEST(Executor, ParallelMatchesSerialBitExact)
{
    // Wide fan graph: many independent branches merged pairwise, so
    // the ready queue actually dispatches concurrent nodes.  The
    // parallel run must reproduce the serial run byte for byte.
    Graph g;
    Rng rng(41);
    Val x = g.placeholder(Shape({64, 64}), "x");
    std::vector<Val> branches;
    for (int i = 0; i < 8; ++i) {
        Val s = g.apply1(ol::scale(0.1f * static_cast<float>(i + 1)),
                         {x});
        branches.push_back(g.apply1(ol::tanhOp(), {s}));
    }
    while (branches.size() > 1) {
        std::vector<Val> next;
        for (size_t i = 0; i + 1 < branches.size(); i += 2)
            next.push_back(
                g.apply1(ol::add(), {branches[i], branches[i + 1]}));
        branches = std::move(next);
    }
    Val top = g.apply1(ol::mul(), {branches[0], branches[0]});

    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({64, 64}), rng, -2.0f, 2.0f);

    ThreadPool::setGlobalNumThreads(4);
    Executor serial({top, branches[0]}, ExecMode::kSerial);
    Executor parallel({top, branches[0]}, ExecMode::kParallel);
    const auto a = serial.run(feed);
    const auto b = parallel.run(feed);
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());

    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].shape(), b[i].shape());
        EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(),
                              static_cast<size_t>(a[i].numel()) *
                                  sizeof(float)),
                  0)
            << "fetch " << i;
    }
}

TEST(Executor, ParallelHandlesMultiOutputAndSharedInputs)
{
    Graph g;
    Rng rng(43);
    Val x = g.placeholder(Shape({4, 8}), "x");
    auto ln = g.apply(ol::layerNorm(), {x});
    Val doubled = g.apply1(ol::mul(), {ln[0], ln[0]});

    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({4, 8}), rng, -2.0f, 2.0f);

    ThreadPool::setGlobalNumThreads(4);
    Executor parallel({doubled, ln[1]}, ExecMode::kParallel);
    Executor serial({doubled, ln[1]}, ExecMode::kSerial);
    const auto p = parallel.run(feed);
    const auto s = serial.run(feed);
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());

    EXPECT_EQ(std::memcmp(p[0].data(), s[0].data(),
                          static_cast<size_t>(p[0].numel()) *
                              sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(p[1].data(), s[1].data(),
                          static_cast<size_t>(p[1].numel()) *
                              sizeof(float)),
              0);
}

TEST(Executor, AutoModeIsDefaultAndRuns)
{
    Graph g;
    Val x = g.placeholder(Shape({2}), "x");
    Val y = g.apply1(ol::tanhOp(), {x});
    Executor ex({y});
    EXPECT_EQ(ex.mode(), ExecMode::kAuto);
    FeedDict feed;
    feed[x.node] = Tensor(Shape({2}), {0.5f, -0.5f});
    const auto out = ex.run(feed);
    EXPECT_NEAR(out[0].at(0), std::tanh(0.5f), 1e-6);
}

TEST(FusedLstm, ShapesAndFiniteness)
{
    const int64_t t = 3, b = 2, i = 4, h = 5;
    Graph g;
    Rng rng(11);
    Val x = g.placeholder(Shape({t, b, i}), "x");
    Val wx = g.weight(Shape({4 * h, i}), "wx");
    Val wh = g.weight(Shape({4 * h, h}), "wh");
    Val bias = g.weight(Shape({4 * h}), "b");
    Val h0 = g.placeholder(Shape({b, h}), "h0");
    Val c0 = g.placeholder(Shape({b, h}), "c0");
    auto outs = g.apply(ol::fusedLstmLayer(ol::FusedRnnStyle::kCudnn),
                        {x, wx, wh, bias, h0, c0});
    ASSERT_EQ(outs.size(), 4u);
    EXPECT_EQ(Graph::shapeOf(outs[0]), Shape({t, b, h}));
    EXPECT_EQ(Graph::shapeOf(outs[3]), Shape({t, b, 5 * h}));

    Executor ex({outs[0], outs[1], outs[2]});
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({t, b, i}), rng);
    feed[wx.node] = Tensor::uniform(Shape({4 * h, i}), rng);
    feed[wh.node] = Tensor::uniform(Shape({4 * h, h}), rng);
    feed[bias.node] = Tensor::zeros(Shape({4 * h}));
    feed[h0.node] = Tensor::zeros(Shape({b, h}));
    feed[c0.node] = Tensor::zeros(Shape({b, h}));
    auto out = ex.run(feed);
    EXPECT_TRUE(out[0].allFinite());
    // Last row of HS equals hT.
    for (int64_t r = 0; r < b; ++r)
        for (int64_t j = 0; j < h; ++j)
            EXPECT_FLOAT_EQ(out[0].at(t - 1, r, j), out[1].at(r, j));
}


TEST(Graph, ToDotRendersPhasesAndEdges)
{
    Graph g;
    Val x = g.placeholder(Shape({2}), "input_x");
    Val y = g.apply1(ol::tanhOp(), {x}, "act");
    g.setPhase(Phase::kRecompute);
    Val r = g.apply1(ol::tanhOp(), {x}, "replay");
    g.setPhase(Phase::kForward);
    (void)y;
    (void)r;
    const std::string dot = g.toDot();
    EXPECT_NE(dot.find("digraph echo"), std::string::npos);
    EXPECT_NE(dot.find("input_x"), std::string::npos);
    EXPECT_NE(dot.find("palegreen"), std::string::npos); // recompute
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);  // edge
}

TEST(KernelDesc, GemmOpReportsGeometry)
{
    Graph g;
    Val x = g.placeholder(Shape({64, 512}), "x");
    Val w = g.weight(Shape({2048, 512}), "w");
    Val y = g.apply1(ol::gemm(false, true), {x, w});
    auto ks = y.node->op->kernels(
        {Shape({64, 512}), Shape({2048, 512})}, {Shape({64, 2048})});
    ASSERT_EQ(ks.size(), 1u);
    EXPECT_TRUE(ks[0].is_gemm);
    EXPECT_EQ(ks[0].gemm_m, 64);
    EXPECT_EQ(ks[0].gemm_n, 2048);
    EXPECT_EQ(ks[0].gemm_k, 512);
    EXPECT_EQ(ks[0].flops, 2ll * 64 * 2048 * 512);
}

TEST(KernelDesc, ReshapeHasNoKernels)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 3}), "x");
    Val y = g.apply1(ol::reshape(Shape({6})), {x});
    EXPECT_TRUE(y.node->op->kernels({Shape({2, 3})}, {Shape({6})})
                    .empty());
}

TEST(KernelDesc, SequenceReverseCoalescingFlag)
{
    auto par = ol::reverseAxis(0, true);
    auto seq = ol::reverseAxis(0, false);
    auto kp = par->kernels({Shape({4, 2, 3})}, {Shape({4, 2, 3})});
    auto ks = seq->kernels({Shape({4, 2, 3})}, {Shape({4, 2, 3})});
    EXPECT_TRUE(kp[0].coalesced);
    EXPECT_FALSE(ks[0].coalesced);
}

TEST(Recompute, GemmNotCheap)
{
    EXPECT_FALSE(ol::gemm(false, false)->cheapToRecompute());
    EXPECT_FALSE(ol::bmm(false, false)->cheapToRecompute());
    EXPECT_TRUE(ol::tanhOp()->cheapToRecompute());
    EXPECT_TRUE(ol::layerNorm()->cheapToRecompute());
    EXPECT_TRUE(ol::broadcastAddBT()->cheapToRecompute());
}

} // namespace
} // namespace echo::graph
