/**
 * @file
 * Tests of the GEMM autotuner stack: schedule legality, the bitwise
 * contract (every legal schedule byte-identical to gemmReference,
 * across micro-tiles, packing modes, loop orders, parallel axes, and
 * thread counts), the persistent cache's robustness guarantees, and
 * the search/warm-cache flow (a warm cache performs zero measurement
 * runs).
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "obs/counters.h"
#include "tensor/ops.h"
#include "tune/cache.h"
#include "tune/measure.h"
#include "tune/search_space.h"
#include "tune/tuner.h"

namespace echo::tune {
namespace {

class TuneTest : public ::testing::Test
{
  protected:
    void SetUp() override { ops::clearTunedSchedulesForTest(); }
    void
    TearDown() override
    {
        ops::clearTunedSchedulesForTest();
        ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
    }
};

/** Byte equality with a useful failure message. */
::testing::AssertionResult
bytesEqual(const Tensor &want, const Tensor &got)
{
    if (!(want.shape() == got.shape()))
        return ::testing::AssertionFailure()
               << "shape " << got.shape().toString() << " != "
               << want.shape().toString();
    if (std::memcmp(want.data(), got.data(),
                    static_cast<size_t>(want.shape().bytes())) != 0) {
        for (int64_t i = 0; i < want.shape().numel(); ++i)
            if (want.data()[i] != got.data()[i])
                return ::testing::AssertionFailure()
                       << "first byte difference at flat index " << i
                       << ": " << want.data()[i] << " vs "
                       << got.data()[i];
        return ::testing::AssertionFailure() << "memcmp != 0";
    }
    return ::testing::AssertionSuccess();
}

std::pair<Tensor, Tensor>
operands(int64_t m, int64_t n, int64_t k, bool ta, bool tb,
         uint64_t seed)
{
    Rng rng(seed);
    return {Tensor::uniform(ta ? Shape({k, m}) : Shape({m, k}), rng),
            Tensor::uniform(tb ? Shape({n, k}) : Shape({k, n}), rng)};
}

/** A scratch directory per test, removed on destruction. */
struct ScratchDir
{
    std::filesystem::path path;
    explicit ScratchDir(const std::string &name)
    {
        path = std::filesystem::temp_directory_path() /
               ("echo_tune_test_" + name + "_" +
                std::to_string(::getpid()));
        std::filesystem::create_directories(path);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
};

// ------------------------------------------------------- legality --

TEST_F(TuneTest, FixedDefaultIsLegal)
{
    std::string why;
    EXPECT_TRUE(ops::scheduleLegal(ops::GemmSchedule::fixedDefault(),
                                   false, &why))
        << why;
    EXPECT_TRUE(ops::scheduleLegal(ops::GemmSchedule::fixedDefault(),
                                   true, &why))
        << why;
}

TEST_F(TuneTest, IllegalSchedulesAreNamed)
{
    std::string why;
    ops::GemmSchedule s;

    s.mr = 3; // not a compiled micro-tile
    EXPECT_FALSE(ops::scheduleLegal(s, false, &why));
    EXPECT_NE(why.find("micro-tile"), std::string::npos) << why;

    s = {};
    s.mc = 60; // not a multiple of mr=8
    EXPECT_FALSE(ops::scheduleLegal(s, false, &why));
    EXPECT_NE(why.find("mc"), std::string::npos) << why;

    s = {};
    s.kc = ops::kGemmMaxKc + 1;
    EXPECT_FALSE(ops::scheduleLegal(s, false, &why));
    EXPECT_NE(why.find("kc"), std::string::npos) << why;

    s = {};
    s.pack_b = ops::GemmPackB::kDirect;
    EXPECT_TRUE(ops::scheduleLegal(s, false, &why)) << why;
    EXPECT_FALSE(ops::scheduleLegal(s, true, &why));
    EXPECT_NE(why.find("directB"), std::string::npos) << why;
}

TEST_F(TuneTest, GemmWithIllegalScheduleDies)
{
    const auto [a, b] = operands(4, 4, 4, false, true, 1);
    ops::GemmSchedule s;
    s.pack_b = ops::GemmPackB::kDirect; // illegal for trans_b
    EXPECT_DEATH(
        (void)ops::gemmWithSchedule(a, false, b, true, 1.0f, s),
        "directB");
}

TEST_F(TuneTest, RandomLegalSchedulesAreLegal)
{
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const bool tb = rng.uniformInt(2) != 0;
        const ops::GemmSchedule s = randomLegalSchedule(rng, tb, 4);
        std::string why;
        EXPECT_TRUE(ops::scheduleLegal(s, tb, &why))
            << s.toString() << ": " << why;
    }
}

// ------------------------------------------- the bitwise contract --

/**
 * The acceptance sweep: every (M, N, K) in {1,7,8,9,15,16,17,63,65}^3
 * under all four transpose combos, byte-compared against
 * gemmReference under 1-, 2-, and 4-thread pools.  The reference is
 * computed once per geometry; the tail extents straddle every
 * micro-tile and block boundary of the default schedule.
 */
TEST_F(TuneTest, TailShapesMatchReferenceAcrossThreadCounts)
{
    const int64_t extents[] = {1, 7, 8, 9, 15, 16, 17, 63, 65};
    // Exercise the parallel paths even at tiny sizes.
    ops::GemmSchedule par = ops::GemmSchedule::fixedDefault();
    par.parallel_min_madds = 0;
    for (const int64_t m : extents)
        for (const int64_t n : extents)
            for (const int64_t k : extents)
                for (int combo = 0; combo < 4; ++combo) {
                    const bool ta = (combo & 2) != 0;
                    const bool tb = (combo & 1) != 0;
                    const auto [a, b] =
                        operands(m, n, k, ta, tb,
                                 static_cast<uint64_t>(
                                     (m * 73 + n) * 73 + k + combo));
                    const Tensor want =
                        ops::gemmReference(a, ta, b, tb);
                    for (const int threads : {1, 2, 4}) {
                        ThreadPool::setGlobalNumThreads(threads);
                        ASSERT_TRUE(bytesEqual(
                            want, ops::gemmWithSchedule(a, ta, b, tb,
                                                        1.0f, par)))
                            << m << "x" << n << "x" << k << " combo "
                            << combo << " threads " << threads;
                    }
                }
}

/** Handwritten schedule corners: multi-panel kc, direct B, every
 *  micro-tile row count, column parallelism, K-outer order. */
TEST_F(TuneTest, ScheduleVariantsMatchReference)
{
    struct Case
    {
        const char *what;
        ops::GemmSchedule s;
        bool tb;
    };
    std::vector<Case> cases;
    auto add = [&cases](const char *what, bool tb,
                        auto mutate) {
        ops::GemmSchedule s;
        s.parallel_min_madds = 0;
        mutate(s);
        cases.push_back({what, s, tb});
    };
    add("kc splits K into panels", false,
        [](ops::GemmSchedule &s) { s.kc = 16; });
    add("kc=1 degenerate panels", true,
        [](ops::GemmSchedule &s) { s.kc = 1; });
    add("direct B", false,
        [](ops::GemmSchedule &s) { s.pack_b = ops::GemmPackB::kDirect; });
    add("mr=1", false, [](ops::GemmSchedule &s) {
        s.mr = 1;
        s.mc = 7;
    });
    add("mr=2 nr=32", true, [](ops::GemmSchedule &s) {
        s.mr = 2;
        s.nr = 32;
        s.mc = 6;
        s.nc = 64;
    });
    add("mr=4 nr=8", false, [](ops::GemmSchedule &s) {
        s.mr = 4;
        s.nr = 8;
        s.mc = 12;
        s.nc = 24;
    });
    add("column parallel", false, [](ops::GemmSchedule &s) {
        s.parallel = ops::GemmParallel::kCols;
        s.nc = 16;
    });
    add("K-outer order", false, [](ops::GemmSchedule &s) {
        s.loop_order = ops::GemmLoopOrder::kKOuter;
        s.kc = 24;
    });
    add("K-outer + direct B + cols", false, [](ops::GemmSchedule &s) {
        s.loop_order = ops::GemmLoopOrder::kKOuter;
        s.pack_b = ops::GemmPackB::kDirect;
        s.parallel = ops::GemmParallel::kCols;
        s.kc = 10;
        s.nc = 16;
    });

    const int64_t m = 37, n = 53, k = 41;
    for (const Case &c : cases) {
        std::string why;
        ASSERT_TRUE(ops::scheduleLegal(c.s, c.tb, &why))
            << c.what << ": " << why;
        const auto [a, b] = operands(m, n, k, false, c.tb, 99);
        const Tensor want = ops::gemmReference(a, false, b, c.tb);
        for (const int threads : {1, 2, 4}) {
            ThreadPool::setGlobalNumThreads(threads);
            ASSERT_TRUE(bytesEqual(
                want,
                ops::gemmWithSchedule(a, false, b, c.tb, 1.0f, c.s)))
                << c.what << " threads " << threads;
        }
    }
}

TEST_F(TuneTest, AlphaScalingMatchesReference)
{
    const auto [a, b] = operands(17, 23, 9, false, false, 3);
    ops::GemmSchedule s;
    s.kc = 4;
    const Tensor want = ops::gemmReference(a, false, b, false, 0.25f);
    ASSERT_TRUE(bytesEqual(
        want, ops::gemmWithSchedule(a, false, b, false, 0.25f, s)));
}

TEST_F(TuneTest, BmmMatchesPerItemGemmUnderAnySchedule)
{
    Rng rng(11);
    const int64_t batch = 3, m = 9, n = 17, k = 5;
    const Tensor a = Tensor::uniform(Shape({batch, m, k}), rng);
    const Tensor b = Tensor::uniform(Shape({batch, k, n}), rng);
    ops::GemmSchedule s;
    s.mr = 2;
    s.nr = 8;
    s.mc = 4;
    s.nc = 16;
    s.kc = 3;
    s.parallel_min_madds = 0;
    s.batch_parallel = 1;
    for (const int threads : {1, 2, 4}) {
        ThreadPool::setGlobalNumThreads(threads);
        const Tensor out = ops::bmmWithSchedule(a, false, b, false, s);
        for (int64_t i = 0; i < batch; ++i) {
            const Tensor ai = ops::slice(a, 0, i, i + 1);
            const Tensor bi = ops::slice(b, 0, i, i + 1);
            const Tensor want = ops::gemmReference(
                Tensor(Shape({m, k}),
                       std::vector<float>(ai.data(),
                                          ai.data() + m * k)),
                false,
                Tensor(Shape({k, n}),
                       std::vector<float>(bi.data(),
                                          bi.data() + k * n)),
                false);
            EXPECT_EQ(std::memcmp(want.data(),
                                  out.data() + i * m * n,
                                  static_cast<size_t>(m * n) * 4),
                      0)
                << "batch item " << i << " threads " << threads;
        }
    }
}

// ------------------------------------------------------- registry --

TEST_F(TuneTest, RegistryRoundTripAndCounters)
{
    const ops::GemmKey key{12, 34, 56, false, true, 1};
    EXPECT_FALSE(ops::findTunedSchedule(key).has_value());

    ops::GemmSchedule s;
    s.mr = 4;
    s.nr = 8;
    s.mc = 8;
    s.nc = 16;
    ops::setTunedSchedule(key, s);
    ASSERT_TRUE(ops::findTunedSchedule(key).has_value());
    EXPECT_EQ(*ops::findTunedSchedule(key), s);
    EXPECT_EQ(ops::tunedScheduleCount(), 1u);

    const int64_t hits_before =
        obs::counter("tune.sched_hit", obs::CounterKind::kScheduling)
            .value();
    const ops::GemmSchedule got = ops::scheduleForCall(
        key.m, key.n, key.k, key.trans_a, key.trans_b, key.threads);
    EXPECT_EQ(got, s);
    EXPECT_EQ(obs::counter("tune.sched_hit",
                           obs::CounterKind::kScheduling)
                  .value(),
              hits_before + 1);
}

TEST_F(TuneTest, SetTunedScheduleRejectsIllegal)
{
    ops::GemmSchedule s;
    s.pack_b = ops::GemmPackB::kDirect;
    EXPECT_DEATH(
        ops::setTunedSchedule({4, 4, 4, false, true, 1}, s),
        "illegal schedule");
}

// ---------------------------------------------------------- cache --

CacheEntry
sampleEntry(int64_t m = 32, const char *isa = "avx512")
{
    CacheEntry e;
    e.key = {m, 10000, 650, false, true, 1};
    e.isa = isa;
    e.vector_width_bytes = 64;
    e.schedule.mr = 4;
    e.schedule.nr = 16;
    e.schedule.mc = 32;
    e.schedule.kc = 512;
    e.schedule.nc = 4096;
    e.schedule.loop_order = ops::GemmLoopOrder::kKOuter;
    e.schedule.parallel = ops::GemmParallel::kNone;
    e.schedule.parallel_min_madds = 0;
    return e;
}

TEST_F(TuneTest, CacheRoundTrip)
{
    ScratchDir dir("roundtrip");
    const std::string path = dir.file("cache");
    const std::vector<CacheEntry> entries{sampleEntry(32),
                                          sampleEntry(64, "avx2")};
    ASSERT_TRUE(saveTuneCache(path, entries));

    const CacheLoadResult loaded = loadTuneCache(path);
    EXPECT_TRUE(loaded.ok);
    EXPECT_TRUE(loaded.existed);
    EXPECT_EQ(loaded.rejected, 0);
    ASSERT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.entries[0], entries[0]);
    EXPECT_EQ(loaded.entries[1], entries[1]);
}

TEST_F(TuneTest, MissingCacheIsNotAnError)
{
    const CacheLoadResult loaded =
        loadTuneCache("/nonexistent/echo-tune-cache");
    EXPECT_TRUE(loaded.ok);
    EXPECT_FALSE(loaded.existed);
    EXPECT_TRUE(loaded.entries.empty());
}

TEST_F(TuneTest, WrongVersionFailsTheLoad)
{
    ScratchDir dir("version");
    const std::string path = dir.file("cache");
    {
        std::ofstream out(path);
        out << "echo-tune-cache 999\n" << cacheLine(sampleEntry())
            << "\n";
    }
    const CacheLoadResult loaded = loadTuneCache(path);
    EXPECT_FALSE(loaded.ok);
    EXPECT_TRUE(loaded.existed);
    EXPECT_TRUE(loaded.entries.empty());
}

TEST_F(TuneTest, TruncatedEntryIsRejectedRestLoads)
{
    ScratchDir dir("truncated");
    const std::string path = dir.file("cache");
    {
        std::ofstream out(path);
        out << "echo-tune-cache 1\n";
        out << cacheLine(sampleEntry(32)) << "\n";
        const std::string full = cacheLine(sampleEntry(64));
        out << full.substr(0, full.size() / 2) << "\n"; // torn write
    }
    const CacheLoadResult loaded = loadTuneCache(path);
    EXPECT_TRUE(loaded.ok);
    EXPECT_EQ(loaded.rejected, 1);
    ASSERT_EQ(loaded.entries.size(), 1u);
    EXPECT_EQ(loaded.entries[0].key.m, 32);
}

TEST_F(TuneTest, CorruptFieldFailsChecksum)
{
    const std::string line = cacheLine(sampleEntry());
    // Flip one digit of the first field (m=32 -> m=33): the checksum
    // over the prefix must catch it.
    std::string tampered = line;
    const auto pos = tampered.find("32");
    ASSERT_NE(pos, std::string::npos);
    tampered[pos + 1] = '3';
    CacheEntry out;
    EXPECT_TRUE(parseCacheLine(line, &out));
    EXPECT_FALSE(parseCacheLine(tampered, &out));
}

TEST_F(TuneTest, IllegalScheduleInCacheIsRejected)
{
    CacheEntry bad = sampleEntry();
    bad.schedule.pack_b = ops::GemmPackB::kDirect; // illegal: trans_b
    CacheEntry out;
    EXPECT_FALSE(parseCacheLine(cacheLine(bad), &out));
}

TEST_F(TuneTest, SaveIsAtomicNoTmpLeftBehind)
{
    ScratchDir dir("atomic");
    const std::string path = dir.file("cache");
    ASSERT_TRUE(saveTuneCache(path, {sampleEntry()}));
    ASSERT_TRUE(saveTuneCache(path, {sampleEntry(64)})); // overwrite
    int files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path)) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 1) << "tmp file left behind";
    const CacheLoadResult loaded = loadTuneCache(path);
    ASSERT_EQ(loaded.entries.size(), 1u);
    EXPECT_EQ(loaded.entries[0].key.m, 64);
}

// --------------------------------------------------- search space --

TEST_F(TuneTest, CandidatesAreLegalDedupedAndIncludeFixed)
{
    const ops::GemmKey key{32, 10000, 650, false, true, 1};
    const auto candidates = enumerateCandidates(key, 16);
    ASSERT_LE(candidates.size(), 17u); // 16 + possibly appended fixed
    bool have_fixed = false;
    for (size_t i = 0; i < candidates.size(); ++i) {
        std::string why;
        EXPECT_TRUE(
            ops::scheduleLegal(candidates[i].schedule, key.trans_b, &why))
            << candidates[i].schedule.toString() << ": " << why;
        if (candidates[i].schedule == ops::GemmSchedule::fixedDefault())
            have_fixed = true;
        for (size_t j = i + 1; j < candidates.size(); ++j)
            EXPECT_FALSE(candidates[i].schedule ==
                         candidates[j].schedule)
                << "duplicate candidate "
                << candidates[i].schedule.toString();
    }
    EXPECT_TRUE(have_fixed);
}

TEST_F(TuneTest, SingleThreadKeyEnumeratesNoParallelSchedules)
{
    // The fixed default is always appended (it carries kRows, gated
    // by its madds threshold); every *enumerated* candidate must be
    // serial for a single-thread key.
    for (const auto &c :
         enumerateCandidates({64, 64, 64, false, false, 1}, 32)) {
        if (c.schedule == ops::GemmSchedule::fixedDefault())
            continue;
        EXPECT_EQ(c.schedule.parallel, ops::GemmParallel::kNone)
            << c.schedule.toString();
    }
}

// --------------------------------------------------------- tuner --

TEST_F(TuneTest, SearchThenWarmCacheRunsZeroMeasurements)
{
    ScratchDir dir("tuner");
    TuneOptions opts;
    opts.cache_path = dir.file("cache");
    opts.max_candidates = 4;
    opts.warmup = 0;
    opts.reps = 1;

    obs::Counter &measure_runs = obs::counter(
        "tune.measure_runs", obs::CounterKind::kScheduling);
    const ops::GemmKey key{9, 33, 17, false, false, 1};

    {
        Autotuner tuner(opts);
        const int64_t before = measure_runs.value();
        const ops::GemmSchedule best = tuner.resolve(key);
        EXPECT_GT(measure_runs.value(), before) << "search measured";
        std::string why;
        EXPECT_TRUE(ops::scheduleLegal(best, key.trans_b, &why)) << why;
        // The decision is registered: gemm's own path now hits.
        ASSERT_TRUE(ops::findTunedSchedule(key).has_value());
        EXPECT_EQ(*ops::findTunedSchedule(key), best);
        // Resolving again searches nothing.
        const int64_t after_search = measure_runs.value();
        EXPECT_EQ(tuner.resolve(key), best);
        EXPECT_EQ(measure_runs.value(), after_search);
    }

    // "Second process": fresh registry, fresh tuner over the same
    // cache file — zero measurement runs, same decision.
    ops::clearTunedSchedulesForTest();
    {
        Autotuner tuner(opts);
        const int64_t before = measure_runs.value();
        const ops::GemmSchedule best = tuner.resolve(key);
        EXPECT_EQ(measure_runs.value(), before)
            << "warm cache must not measure";
        ASSERT_TRUE(ops::findTunedSchedule(key).has_value());
        EXPECT_EQ(*ops::findTunedSchedule(key), best);
    }
}

TEST_F(TuneTest, WarmKeysCountsOnlySearchedKeys)
{
    ScratchDir dir("warm");
    TuneOptions opts;
    opts.cache_path = dir.file("cache");
    opts.max_candidates = 2;
    opts.warmup = 0;
    opts.reps = 1;
    Autotuner tuner(opts);

    const std::vector<ops::GemmKey> keys{{5, 6, 7, false, false, 1},
                                         {6, 7, 8, false, true, 1}};
    EXPECT_EQ(tuner.warmKeys(keys), 2);
    EXPECT_EQ(tuner.warmKeys(keys), 0); // already tuned
    EXPECT_EQ(ops::tunedScheduleCount(), 2u);
}

TEST_F(TuneTest, TunedResultsAreByteIdenticalAcrossThreadCounts)
{
    ScratchDir dir("threads");
    TuneOptions opts;
    opts.cache_path = dir.file("cache");
    opts.max_candidates = 6;
    opts.warmup = 0;
    opts.reps = 1;
    Autotuner tuner(opts);

    const ops::GemmKey key{33, 65, 40, false, false, 1};
    const TuneOutcome outcome = tuner.tuneKey(key);
    const auto [a, b] =
        operands(key.m, key.n, key.k, key.trans_a, key.trans_b, 21);
    const Tensor want = ops::gemmReference(a, false, b, false);
    for (const int threads : {1, 2, 4}) {
        ThreadPool::setGlobalNumThreads(threads);
        ASSERT_TRUE(bytesEqual(want,
                               ops::gemmWithSchedule(a, false, b, false,
                                                     1.0f, outcome.best)))
            << "threads " << threads;
        // And through the registry-resolving public entry point.
        ASSERT_TRUE(bytesEqual(want, ops::gemm(a, false, b, false)))
            << "threads " << threads;
    }
}

TEST_F(TuneTest, MeasureScheduleTicksCounter)
{
    obs::Counter &measure_runs = obs::counter(
        "tune.measure_runs", obs::CounterKind::kScheduling);
    const int64_t before = measure_runs.value();
    const Measurement m = measureSchedule(
        {8, 8, 8, false, false, 1}, ops::GemmSchedule::fixedDefault(),
        /*warmup=*/0, /*reps=*/3);
    EXPECT_EQ(measure_runs.value(), before + 3);
    EXPECT_GT(m.seconds, 0.0);
    EXPECT_EQ(m.timed_runs, 3);
}

} // namespace
} // namespace echo::tune
