/**
 * @file
 * Observability-layer tests:
 *
 *  - trace schema: the exported Trace Event Format JSON parses, every
 *    event carries the required fields, B/E pairs balance per thread,
 *    and per-thread timestamps are monotone,
 *  - counters: exact totals on a hand-built graph, monotone across
 *    runs,
 *  - disabled mode: instrumented code emits no events and allocates no
 *    event buffers,
 *  - memory timeline: the replayed plan matches MemoryPlan accounting
 *    byte-for-byte for the built-in models, with and without the Echo
 *    pass, pooled and unpooled.
 */
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "echo/recompute_pass.h"
#include "graph/executor.h"
#include "graph/ops/oplib.h"
#include "memory/planner.h"
#include "models/nmt.h"
#include "models/word_lm.h"
#include "obs/obs.h"

namespace echo::obs {
namespace {

namespace ol = graph::oplib;
using graph::FeedDict;
using graph::Graph;
using graph::Val;

// ----------------------------------------------------------------------
// A minimal JSON reader, just rich enough to validate our own export.
// ----------------------------------------------------------------------

struct JsonValue
{
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind = Kind::kNull;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue *
    field(const std::string &key) const
    {
        for (const auto &[k, v] : fields)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    /** Parse the whole document; false on any syntax error. */
    bool
    parse(JsonValue &out)
    {
        pos_ = 0;
        if (!parseValue(out))
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return false;
                char esc = text_[pos_++];
                switch (esc) {
                  case '"':
                  case '\\':
                  case '/':
                    out += esc;
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u':
                    if (pos_ + 4 > text_.size())
                        return false;
                    pos_ += 4; // decoded value irrelevant to the schema
                    out += '?';
                    break;
                  default:
                    return false;
                }
            } else {
                out += c;
            }
        }
        return false;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::kObject;
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                std::string key;
                JsonValue val;
                if (!parseString(key) || !consume(':') ||
                    !parseValue(val))
                    return false;
                out.fields.emplace_back(std::move(key),
                                        std::move(val));
                if (consume(','))
                    continue;
                return consume('}');
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::kArray;
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                JsonValue val;
                if (!parseValue(val))
                    return false;
                out.items.push_back(std::move(val));
                if (consume(','))
                    continue;
                return consume(']');
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::kString;
            return parseString(out.str);
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            out.kind = JsonValue::Kind::kBool;
            out.b = true;
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out.kind = JsonValue::Kind::kBool;
            pos_ += 5;
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return true;
        }
        // Number.
        char *end = nullptr;
        out.num = std::strtod(text_.c_str() + pos_, &end);
        if (end == text_.c_str() + pos_)
            return false;
        out.kind = JsonValue::Kind::kNumber;
        pos_ = static_cast<size_t>(end - text_.c_str());
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

// ----------------------------------------------------------------------
// Fixtures
// ----------------------------------------------------------------------

/** y = tanh(x + w) * (x + w): 3 op nodes, 1 placeholder, 1 weight. */
struct TinyModel
{
    Graph g;
    Val x, w, y;

    TinyModel()
    {
        x = g.placeholder(Shape({2, 3}), "x");
        w = g.weight(Shape({2, 3}), "w");
        const Val sum = g.apply1(ol::add(), {x, w});
        const Val t = g.apply1(ol::tanhOp(), {sum});
        y = g.apply1(ol::mul(), {sum, t});
    }

    FeedDict
    feed() const
    {
        Rng rng(3);
        FeedDict f;
        f[x.node] = Tensor::uniform(Shape({2, 3}), rng, -1.f, 1.f);
        f[w.node] = Tensor::uniform(Shape({2, 3}), rng, -1.f, 1.f);
        return f;
    }
};

int64_t
counterValue(const std::string &name)
{
    for (const CounterSample &c : snapshotCounters())
        if (c.name == name)
            return c.value;
    return 0;
}

/** Validate the span/timestamp schema over a set of events. */
void
checkSpanSchema(const std::vector<TraceEvent> &events)
{
    std::map<uint32_t, int> depth;
    std::map<uint32_t, int64_t> last_ts;
    for (const TraceEvent &e : events) {
        EXPECT_TRUE(e.ph == 'B' || e.ph == 'E' || e.ph == 'i' ||
                    e.ph == 'C')
            << "unknown phase " << e.ph;
        auto it = last_ts.find(e.tid);
        if (it != last_ts.end()) {
            EXPECT_GE(e.ts_ns, it->second)
                << "timestamps regressed on tid " << e.tid;
        }
        last_ts[e.tid] = e.ts_ns;
        if (e.ph == 'B')
            ++depth[e.tid];
        if (e.ph == 'E') {
            --depth[e.tid];
            EXPECT_GE(depth[e.tid], 0)
                << "E without matching B on tid " << e.tid;
        }
    }
    for (const auto &[tid, d] : depth)
        EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
}

// ----------------------------------------------------------------------
// Tests
// ----------------------------------------------------------------------

TEST(Trace, SpansBalanceAcrossThreads)
{
    ThreadPool::setGlobalNumThreads(4);
    startTrace();
    {
        std::vector<ThreadPool::Task> tasks;
        for (int i = 0; i < 16; ++i) {
            tasks.push_back(ThreadPool::global().submit([i] {
                Span outer("test", "outer", {{"i", i}});
                Span inner("test", "inner");
                emitEvent('i', "test", "instant", {{"i", i}});
            }));
        }
        for (const auto &t : tasks)
            t.wait();
    }
    stopTrace();
    const std::vector<TraceEvent> events = snapshotEvents();
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());

    // 16 tasks x (2 B + 2 E + 1 i), plus worker.task spans from the
    // instrumented pool and queue-depth counter samples.
    size_t outers = 0;
    for (const TraceEvent &e : events)
        if (e.ph == 'B' && e.name == "outer")
            ++outers;
    EXPECT_EQ(outers, 16u);
    checkSpanSchema(events);
}

TEST(Trace, ExportedJsonIsSchemaValid)
{
    const std::string path = ::testing::TempDir() + "echo_obs_test.json";
    TinyModel m;
    graph::Executor ex({m.y}, graph::ExecMode::kSerial);

    startTrace(path);
    ex.run(m.feed());
    const std::string json = stopTrace();

    // The returned JSON and the written file are identical.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string file_json((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    EXPECT_EQ(json, file_json);
    std::remove(path.c_str());

    JsonValue doc;
    ASSERT_TRUE(JsonParser(json).parse(doc)) << json.substr(0, 200);
    ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
    const JsonValue *events = doc.field("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
    ASSERT_GT(events->items.size(), 0u);

    std::map<double, int> depth;
    std::map<double, double> last_ts;
    for (const JsonValue &e : events->items) {
        ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
        const JsonValue *ph = e.field("ph");
        const JsonValue *ts = e.field("ts");
        const JsonValue *tid = e.field("tid");
        const JsonValue *pid = e.field("pid");
        const JsonValue *name = e.field("name");
        const JsonValue *cat = e.field("cat");
        ASSERT_NE(ph, nullptr);
        ASSERT_EQ(ph->kind, JsonValue::Kind::kString);
        ASSERT_EQ(ph->str.size(), 1u);
        EXPECT_NE(std::string("BEiC").find(ph->str), std::string::npos);
        ASSERT_NE(ts, nullptr);
        ASSERT_EQ(ts->kind, JsonValue::Kind::kNumber);
        ASSERT_NE(tid, nullptr);
        ASSERT_EQ(tid->kind, JsonValue::Kind::kNumber);
        ASSERT_NE(pid, nullptr);
        ASSERT_NE(name, nullptr);
        ASSERT_EQ(name->kind, JsonValue::Kind::kString);
        ASSERT_NE(cat, nullptr);
        const JsonValue *args = e.field("args");
        if (args != nullptr) {
            EXPECT_EQ(args->kind, JsonValue::Kind::kObject);
        }

        if (last_ts.count(tid->num)) {
            EXPECT_GE(ts->num, last_ts[tid->num]);
        }
        last_ts[tid->num] = ts->num;
        if (ph->str == "B")
            ++depth[tid->num];
        if (ph->str == "E") {
            --depth[tid->num];
            ASSERT_GE(depth[tid->num], 0);
        }
    }
    for (const auto &[tid, d] : depth)
        EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;

    // The op spans of the tiny graph are all present by name.
    size_t add_spans = 0, tanh_spans = 0, mul_spans = 0;
    for (const JsonValue &e : events->items) {
        if (e.field("ph")->str != "B")
            continue;
        const std::string &n = e.field("name")->str;
        add_spans += n == "add";
        tanh_spans += n == "tanh";
        mul_spans += n == "mul";
    }
    EXPECT_EQ(add_spans, 1u);
    EXPECT_EQ(tanh_spans, 1u);
    EXPECT_EQ(mul_spans, 1u);
}

TEST(Counters, ExactOnHandBuiltGraph)
{
    TinyModel m;
    graph::Executor ex({m.y}, graph::ExecMode::kSerial);

    resetCountersForTest();
    ex.run(m.feed());
    EXPECT_EQ(counterValue("exec.ops"), 3);
    EXPECT_EQ(counterValue("exec.runs"), 1);
    EXPECT_EQ(counterValue("exec.replays"), 0);

    // Monotone: a second run adds, never resets.
    ex.run(m.feed());
    EXPECT_EQ(counterValue("exec.ops"), 6);
    EXPECT_EQ(counterValue("exec.runs"), 2);

    // Planner counters: the tiny graph has exactly two transients (the
    // add and tanh outputs; the fetched mul output is persistent),
    // each 2x3 floats aligned up to 256 bytes.
    const auto live = memory::analyzeLiveness({m.y});
    memory::planMemory(live);
    EXPECT_EQ(counterValue("mem.allocs"), 2);
    EXPECT_EQ(counterValue("mem.frees"), 2);
    EXPECT_EQ(counterValue("mem.bytes_allocated"), 512);
    EXPECT_EQ(counterValue("mem.bytes_freed"), 512);
}

TEST(Counters, SnapshotSortedAndTagged)
{
    counter("zz.test_scheduling", CounterKind::kScheduling).add(1);
    counter("aa.test_deterministic").add(2);
    const auto samples = snapshotCounters();
    ASSERT_GE(samples.size(), 2u);
    for (size_t i = 1; i < samples.size(); ++i)
        EXPECT_LT(samples[i - 1].name, samples[i].name);
    bool saw_sched = false, saw_det = false;
    for (const auto &s : samples) {
        if (s.name == "zz.test_scheduling") {
            EXPECT_EQ(s.kind, CounterKind::kScheduling);
            saw_sched = true;
        }
        if (s.name == "aa.test_deterministic") {
            EXPECT_EQ(s.kind, CounterKind::kDeterministic);
            saw_det = true;
        }
    }
    EXPECT_TRUE(saw_sched);
    EXPECT_TRUE(saw_det);
}

TEST(Trace, DisabledModeEmitsNothingAndAllocatesNothing)
{
    ASSERT_FALSE(traceEnabled());
    const size_t buffers_before = debugBufferCount();
    const size_t events_before = snapshotEvents().size();

    TinyModel m;
    graph::Executor ex({m.y}, graph::ExecMode::kSerial);
    ex.run(m.feed());
    const auto live = memory::analyzeLiveness({m.y});
    memory::planMemory(live);
    emitEvent('i', "test", "dropped");
    {
        Span s; // never begun: must stay inert
    }

    EXPECT_EQ(debugBufferCount(), buffers_before);
    EXPECT_EQ(snapshotEvents().size(), events_before);
}

TEST(Trace, RestartClearsPreviousEvents)
{
    startTrace();
    emitEvent('i', "test", "first");
    stopTrace();
    ASSERT_GE(snapshotEvents().size(), 1u);

    startTrace();
    emitEvent('i', "test", "second");
    stopTrace();
    const auto events = snapshotEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "second");
}

// ----------------------------------------------------------------------
// Memory timeline replay vs planner, on the built-in models
// ----------------------------------------------------------------------

void
expectTimelineMatchesPlan(const std::vector<Val> &fetches,
                          const std::vector<Val> &weight_grads,
                          bool reuse, const std::string &what)
{
    const auto live = memory::analyzeLiveness(fetches, weight_grads);
    MemoryTimeline timeline;
    memory::PlannerOptions opts;
    opts.reuse_transients = reuse;
    opts.timeline = &timeline;
    const memory::MemoryPlan plan = memory::planMemory(live, opts);
    const TimelineReplay replay = replayTimeline(timeline);

    for (const std::string &v : replay.violations)
        ADD_FAILURE() << what << ": " << v;
    EXPECT_EQ(replay.outstanding_bytes, 0) << what;
    EXPECT_EQ(replay.address_peak_bytes, plan.pool_peak_bytes) << what;
    EXPECT_LE(replay.live_peak_bytes, plan.pool_peak_bytes) << what;
    EXPECT_GT(replay.live_peak_bytes, 0) << what;
    EXPECT_EQ(replay.peak_pos, plan.peak_pos) << what;
    EXPECT_FALSE(replay.curve.empty()) << what;
}

TEST(MemoryTimeline, WordLmReplayMatchesPlan)
{
    for (const bool run_pass : {false, true}) {
        models::WordLmConfig cfg;
        cfg.vocab = 120;
        cfg.hidden = 16;
        cfg.layers = 2;
        cfg.batch = 4;
        cfg.seq_len = 10;
        models::WordLmModel model(cfg);
        if (run_pass)
            pass::runRecomputePass(model.graph(), model.fetches(), {});
        const std::string what =
            std::string("word_lm pass=") + (run_pass ? "on" : "off");
        expectTimelineMatchesPlan(model.fetches(), model.weightGrads(),
                                  true, what);
        expectTimelineMatchesPlan(model.fetches(), model.weightGrads(),
                                  false, what + " no-reuse");
    }
}

TEST(MemoryTimeline, NmtReplayMatchesPlan)
{
    for (const bool run_pass : {false, true}) {
        models::NmtConfig cfg;
        cfg.src_vocab = 60;
        cfg.tgt_vocab = 70;
        cfg.hidden = 16;
        cfg.enc_layers = 1;
        cfg.batch = 3;
        cfg.src_len = 8;
        cfg.tgt_len = 8;
        models::NmtModel model(cfg);
        if (run_pass)
            pass::runRecomputePass(model.graph(), model.fetches(), {});
        const std::string what =
            std::string("nmt pass=") + (run_pass ? "on" : "off");
        expectTimelineMatchesPlan(model.fetches(), model.weightGrads(),
                                  true, what);
        expectTimelineMatchesPlan(model.fetches(), model.weightGrads(),
                                  false, what + " no-reuse");
    }
}

TEST(MemoryTimeline, ReplayFlagsOverlapsAndLeaks)
{
    // Hand-built broken timelines exercise the replay checks
    // themselves: overlapping live blocks, an unknown free, a leak.
    MemoryTimeline bad;
    bad.events.push_back({0, true, 0, 512, 1, 0, "a"});
    bad.events.push_back({1, true, 256, 512, 2, 0, "b"}); // overlaps a
    const TimelineReplay overlap = replayTimeline(bad);
    ASSERT_EQ(overlap.violations.size(), 1u);
    EXPECT_NE(overlap.violations[0].find("overlap"), std::string::npos);

    MemoryTimeline unknown;
    unknown.events.push_back({0, false, 128, 64, 1, 0, "ghost"});
    EXPECT_EQ(replayTimeline(unknown).violations.size(), 1u);

    MemoryTimeline leak;
    leak.events.push_back({0, true, 0, 256, 1, 0, "kept"});
    const TimelineReplay leaked = replayTimeline(leak);
    EXPECT_TRUE(leaked.violations.empty());
    EXPECT_EQ(leaked.outstanding_bytes, 256);
    EXPECT_FALSE(leaked.ok());
}

} // namespace
} // namespace echo::obs
