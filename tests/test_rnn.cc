/**
 * @file
 * Tests for the RNN library: numerical equivalence of the three
 * backends (the paper's correctness requirement — "almost completely
 * overlapping training curves"), kernel-count profiles, GRU cells, and
 * SequenceReverse.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "graph/autodiff.h"
#include "graph/executor.h"
#include "graph/ops/oplib.h"
#include "gpusim/timeline.h"
#include "rnn/gru_stack.h"
#include "rnn/sequence_reverse.h"
#include "rnn/stack.h"

namespace echo::rnn {
namespace {

namespace ol = graph::oplib;
using graph::FeedDict;
using graph::Graph;
using graph::Val;

/** Build one LSTM stack + scalar loss + gradients for a backend. */
struct StackHarness
{
    std::unique_ptr<Graph> g = std::make_unique<Graph>();
    Val x;
    LstmStack stack;
    Val loss;
    std::vector<Val> fetches;

    void
    build(const LstmSpec &spec, RnnBackend backend)
    {
        x = g->placeholder(
            Shape({spec.seq_len, spec.batch, spec.input_size}), "x");
        stack = buildLstmStack(*g, x, spec, backend, "lstm");
        const int64_t numel =
            spec.seq_len * spec.batch * spec.hidden;
        const Val flat = g->apply1(
            ol::reshape(Shape({1, 1, numel})), {stack.hs});
        const Val ones =
            g->apply1(ol::constant(Shape({numel}), 1.0f), {});
        const Val tanhed = g->apply1(ol::tanhOp(), {flat});
        const Val score =
            g->apply1(ol::dotLastAxis(), {tanhed, ones});
        loss = g->apply1(ol::reshape(Shape({1})), {score});

        std::vector<Val> wrt;
        for (const LstmWeights &w : stack.weights) {
            wrt.push_back(w.wx);
            wrt.push_back(w.wh);
            wrt.push_back(w.bias);
        }
        auto gr = graph::backward(*g, loss, wrt);
        fetches = {loss};
        fetches.insert(fetches.end(), gr.weight_grads.begin(),
                       gr.weight_grads.end());
    }

    FeedDict
    feed(const LstmSpec &spec, uint64_t seed) const
    {
        Rng rng(seed);
        FeedDict f;
        f[x.node] = Tensor::uniform(
            Shape({spec.seq_len, spec.batch, spec.input_size}), rng,
            -0.5f, 0.5f);
        for (const LstmWeights &w : stack.weights) {
            f[w.wx.node] = Tensor::uniform(
                graph::Graph::shapeOf(w.wx), rng, -0.3f, 0.3f);
            f[w.wh.node] = Tensor::uniform(
                graph::Graph::shapeOf(w.wh), rng, -0.3f, 0.3f);
            f[w.bias.node] = Tensor::uniform(
                graph::Graph::shapeOf(w.bias), rng, -0.1f, 0.1f);
        }
        return f;
    }
};

class BackendEquivalence
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>>
{
};

TEST_P(BackendEquivalence, AllBackendsMatchNumerically)
{
    const auto [layers, seq_len] = GetParam();
    LstmSpec spec;
    spec.input_size = 5;
    spec.hidden = 4;
    spec.layers = layers;
    spec.batch = 3;
    spec.seq_len = seq_len;

    std::vector<std::vector<Tensor>> results;
    for (const RnnBackend backend :
         {RnnBackend::kDefault, RnnBackend::kCudnn, RnnBackend::kEco}) {
        StackHarness h;
        h.build(spec, backend);
        graph::Executor ex(h.fetches);
        results.push_back(ex.run(h.feed(spec, 77)));
    }
    for (size_t variant = 1; variant < results.size(); ++variant) {
        ASSERT_EQ(results[variant].size(), results[0].size());
        for (size_t i = 0; i < results[0].size(); ++i) {
            ASSERT_EQ(results[variant][i].shape(),
                      results[0][i].shape());
            for (int64_t j = 0; j < results[0][i].numel(); ++j)
                EXPECT_NEAR(results[variant][i].at(j),
                            results[0][i].at(j), 2e-4)
                    << "fetch " << i << " element " << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    LayersBySeqLen, BackendEquivalence,
    ::testing::Combine(::testing::Values<int64_t>(1, 2),
                       ::testing::Values<int64_t>(1, 3, 6)));

TEST(Backends, DefaultLaunchesManyMoreKernels)
{
    LstmSpec spec;
    spec.input_size = 64;
    spec.hidden = 64;
    spec.layers = 1;
    spec.batch = 16;
    spec.seq_len = 20;

    int64_t launches[2];
    int idx = 0;
    for (const RnnBackend backend :
         {RnnBackend::kDefault, RnnBackend::kCudnn}) {
        StackHarness h;
        h.build(spec, backend);
        const auto rep = gpusim::simulateRun(
            h.fetches, gpusim::GpuSpec::titanXp());
        launches[idx++] = rep.kernel_launches;
    }
    // Fig. 7a: Default slices the "f" block into many small kernels.
    EXPECT_GT(launches[0], launches[1] * 4);
}

TEST(Backends, EcoFasterThanDefaultAtPaperScale)
{
    LstmSpec spec;
    spec.input_size = 512;
    spec.hidden = 512;
    spec.layers = 1;
    spec.batch = 64;
    spec.seq_len = 50;

    double wall[3];
    int idx = 0;
    for (const RnnBackend backend :
         {RnnBackend::kDefault, RnnBackend::kCudnn, RnnBackend::kEco}) {
        StackHarness h;
        h.build(spec, backend);
        wall[idx++] = gpusim::simulateRun(
                          h.fetches, gpusim::GpuSpec::titanXp())
                          .wall_time_us;
    }
    EXPECT_LT(wall[2], wall[0]); // Eco < Default
    EXPECT_LT(wall[2], wall[1]); // Eco < CuDNN
    EXPECT_LT(wall[1], wall[0]); // CuDNN < Default
}

TEST(LstmCell, SingleStepMatchesManualMath)
{
    Graph g;
    const int64_t b = 2, h = 3, i = 2;
    Val x = g.placeholder(Shape({b, i}), "x");
    LstmWeights w = makeLstmWeights(g, i, h, "cell");
    CellState prev;
    prev.h = g.placeholder(Shape({b, h}), "h0");
    prev.c = g.placeholder(Shape({b, h}), "c0");
    CellState next = buildLstmCell(g, x, prev, w);

    Rng rng(5);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({b, i}), rng, -1.0f, 1.0f);
    feed[w.wx.node] =
        Tensor::uniform(Shape({4 * h, i}), rng, -0.5f, 0.5f);
    feed[w.wh.node] =
        Tensor::uniform(Shape({4 * h, h}), rng, -0.5f, 0.5f);
    feed[w.bias.node] =
        Tensor::uniform(Shape({4 * h}), rng, -0.1f, 0.1f);
    feed[prev.h.node] =
        Tensor::uniform(Shape({b, h}), rng, -0.5f, 0.5f);
    feed[prev.c.node] =
        Tensor::uniform(Shape({b, h}), rng, -0.5f, 0.5f);

    graph::Executor ex({next.h, next.c});
    const auto out = ex.run(feed);

    // Manual reference for element (0, 0).
    auto sigmoid = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
    const Tensor &xt = feed[x.node];
    const Tensor &wx = feed[w.wx.node];
    const Tensor &wh = feed[w.wh.node];
    const Tensor &bias = feed[w.bias.node];
    const Tensor &h0 = feed[prev.h.node];
    const Tensor &c0 = feed[prev.c.node];
    float gates[4];
    for (int gate = 0; gate < 4; ++gate) {
        double acc = bias.at(gate * h + 0);
        for (int64_t k = 0; k < i; ++k)
            acc += xt.at(0, k) * wx.at(gate * h + 0, k);
        for (int64_t k = 0; k < h; ++k)
            acc += h0.at(0, k) * wh.at(gate * h + 0, k);
        gates[gate] = static_cast<float>(acc);
    }
    const float c_ref = sigmoid(gates[1]) * c0.at(0, 0) +
                        sigmoid(gates[0]) * std::tanh(gates[2]);
    const float h_ref = sigmoid(gates[3]) * std::tanh(c_ref);
    EXPECT_NEAR(out[1].at(0, 0), c_ref, 1e-5);
    EXPECT_NEAR(out[0].at(0, 0), h_ref, 1e-5);
}

TEST(GruCell, GatesBoundOutput)
{
    // GRU output is a convex-ish mix of candidate and previous state;
    // with tanh candidate, |h| stays within [-1, 1] + |h_prev|.
    Graph g;
    const int64_t b = 4, h = 8, i = 6;
    Val x = g.placeholder(Shape({b, i}), "x");
    Val h0 = g.placeholder(Shape({b, h}), "h0");
    GruWeights w = makeGruWeights(g, i, h, "gru");
    Val h1 = buildGruCell(g, x, h0, w);

    Rng rng(9);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({b, i}), rng, -2.0f, 2.0f);
    feed[h0.node] = Tensor::uniform(Shape({b, h}), rng, -1.0f, 1.0f);
    feed[w.wx.node] =
        Tensor::uniform(Shape({3 * h, i}), rng, -0.5f, 0.5f);
    feed[w.wh.node] =
        Tensor::uniform(Shape({3 * h, h}), rng, -0.5f, 0.5f);
    feed[w.bias.node] =
        Tensor::uniform(Shape({3 * h}), rng, -0.1f, 0.1f);

    graph::Executor ex({h1});
    const auto out = ex.run(feed);
    EXPECT_TRUE(out[0].allFinite());
    for (int64_t j = 0; j < out[0].numel(); ++j)
        EXPECT_LE(std::abs(out[0].at(j)), 2.0f);
}

TEST(GruStack, GradientCheck)
{
    Graph g;
    LstmSpec spec;
    spec.input_size = 3;
    spec.hidden = 2;
    spec.layers = 1;
    spec.batch = 2;
    spec.seq_len = 3;
    Val x = g.placeholder(
        Shape({spec.seq_len, spec.batch, spec.input_size}), "x");
    GruStack stack = buildGruStack(g, x, spec, "gru");

    const int64_t numel = spec.seq_len * spec.batch * spec.hidden;
    const Val flat =
        g.apply1(ol::reshape(Shape({1, 1, numel})), {stack.hs});
    const Val ones = g.apply1(ol::constant(Shape({numel}), 1.0f), {});
    const Val loss = g.apply1(
        ol::reshape(Shape({1})),
        {g.apply1(ol::dotLastAxis(), {flat, ones})});

    const GruWeights &w = stack.weights[0];
    auto gr = graph::backward(g, loss, {w.wx, w.wh, w.bias});

    Rng rng(11);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(
        Shape({spec.seq_len, spec.batch, spec.input_size}), rng,
        -0.5f, 0.5f);
    feed[w.wx.node] = Tensor::uniform(graph::Graph::shapeOf(w.wx),
                                      rng, -0.4f, 0.4f);
    feed[w.wh.node] = Tensor::uniform(graph::Graph::shapeOf(w.wh),
                                      rng, -0.4f, 0.4f);
    feed[w.bias.node] = Tensor::uniform(graph::Graph::shapeOf(w.bias),
                                        rng, -0.1f, 0.1f);

    std::vector<Val> fetches = {loss};
    fetches.insert(fetches.end(), gr.weight_grads.begin(),
                   gr.weight_grads.end());
    graph::Executor ex(fetches);
    const auto analytic = ex.run(feed);

    graph::Executor loss_ex({loss});
    const double eps = 1e-3;
    const Val wrt[] = {w.wx, w.wh, w.bias};
    for (int wi = 0; wi < 3; ++wi) {
        Tensor &param = feed[wrt[wi].node];
        for (int64_t j = 0; j < param.numel(); ++j) {
            const float saved = param.at(j);
            param.at(j) = saved + static_cast<float>(eps);
            const double up = loss_ex.run(feed)[0].at(0);
            param.at(j) = saved - static_cast<float>(eps);
            const double down = loss_ex.run(feed)[0].at(0);
            param.at(j) = saved;
            const double numeric = (up - down) / (2.0 * eps);
            EXPECT_NEAR(analytic[static_cast<size_t>(wi) + 1].at(j),
                        numeric,
                        5e-2 * std::max(1.0, std::abs(numeric)));
        }
    }
}

TEST(SequenceReverse, ParallelAndSequentialAgreeNumerically)
{
    Graph g;
    Val x = g.placeholder(Shape({4, 2, 3}), "x");
    Val rp = sequenceReverse(g, x, true);
    Val rs = sequenceReverse(g, x, false);

    Rng rng(3);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({4, 2, 3}), rng);
    graph::Executor ex({rp, rs});
    const auto out = ex.run(feed);
    for (int64_t i = 0; i < out[0].numel(); ++i)
        EXPECT_FLOAT_EQ(out[0].at(i), out[1].at(i));
}

TEST(SequenceReverse, ParallelKernelIsOrdersOfMagnitudeFaster)
{
    // The §5.1 fix: same math, wildly different modelled bandwidth.
    Graph g;
    Val x = g.placeholder(Shape({100, 128, 512}), "x");
    Val rp = sequenceReverse(g, x, true);

    Graph g2;
    Val x2 = g2.placeholder(Shape({100, 128, 512}), "x");
    Val rs = sequenceReverse(g2, x2, false);

    const auto rep_p =
        gpusim::simulateRun({rp}, gpusim::GpuSpec::titanXp());
    const auto rep_s =
        gpusim::simulateRun({rs}, gpusim::GpuSpec::titanXp());
    EXPECT_GT(rep_s.wall_time_us / rep_p.wall_time_us, 50.0);
}


TEST(PeepholeLstm, MatchesManualReference)
{
    Graph g;
    const int64_t b = 2, h = 3, i = 2;
    Val x = g.placeholder(Shape({b, i}), "x");
    LstmWeights w = makeLstmWeights(g, i, h, "cell");
    PeepholeWeights p = makePeepholeWeights(g, h, "cell");
    CellState prev;
    prev.h = g.placeholder(Shape({b, h}), "h0");
    prev.c = g.placeholder(Shape({b, h}), "c0");
    CellState next = buildPeepholeLstmCell(g, x, prev, w, p);

    Rng rng(13);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({b, i}), rng, -1.0f, 1.0f);
    feed[w.wx.node] =
        Tensor::uniform(Shape({4 * h, i}), rng, -0.5f, 0.5f);
    feed[w.wh.node] =
        Tensor::uniform(Shape({4 * h, h}), rng, -0.5f, 0.5f);
    feed[w.bias.node] =
        Tensor::uniform(Shape({4 * h}), rng, -0.1f, 0.1f);
    feed[p.p_i.node] = Tensor::uniform(Shape({h}), rng, -0.5f, 0.5f);
    feed[p.p_f.node] = Tensor::uniform(Shape({h}), rng, -0.5f, 0.5f);
    feed[p.p_o.node] = Tensor::uniform(Shape({h}), rng, -0.5f, 0.5f);
    feed[prev.h.node] =
        Tensor::uniform(Shape({b, h}), rng, -0.5f, 0.5f);
    feed[prev.c.node] =
        Tensor::uniform(Shape({b, h}), rng, -0.5f, 0.5f);

    graph::Executor ex({next.h, next.c});
    const auto out = ex.run(feed);

    auto sigmoid = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
    const Tensor &xt = feed[x.node];
    const Tensor &wx = feed[w.wx.node];
    const Tensor &wh = feed[w.wh.node];
    const Tensor &bias = feed[w.bias.node];
    const Tensor &h0 = feed[prev.h.node];
    const Tensor &c0 = feed[prev.c.node];
    for (int64_t r = 0; r < b; ++r)
        for (int64_t j = 0; j < h; ++j) {
            float gates[4];
            for (int gate = 0; gate < 4; ++gate) {
                double acc = bias.at(gate * h + j);
                for (int64_t k = 0; k < i; ++k)
                    acc += xt.at(r, k) * wx.at(gate * h + j, k);
                for (int64_t k = 0; k < h; ++k)
                    acc += h0.at(r, k) * wh.at(gate * h + j, k);
                gates[gate] = static_cast<float>(acc);
            }
            const float gi = sigmoid(
                gates[0] + feed[p.p_i.node].at(j) * c0.at(r, j));
            const float gf = sigmoid(
                gates[1] + feed[p.p_f.node].at(j) * c0.at(r, j));
            const float c_ref =
                gf * c0.at(r, j) + gi * std::tanh(gates[2]);
            const float go = sigmoid(
                gates[3] + feed[p.p_o.node].at(j) * c_ref);
            const float h_ref = go * std::tanh(c_ref);
            EXPECT_NEAR(out[1].at(r, j), c_ref, 1e-5);
            EXPECT_NEAR(out[0].at(r, j), h_ref, 1e-5);
        }
}

TEST(PeepholeLstm, GradientCheck)
{
    Graph g;
    const int64_t b = 2, h = 2, i = 2;
    Val x = g.placeholder(Shape({b, i}), "x");
    LstmWeights w = makeLstmWeights(g, i, h, "cell");
    PeepholeWeights p = makePeepholeWeights(g, h, "cell");
    CellState prev;
    prev.h = g.placeholder(Shape({b, h}), "h0");
    prev.c = g.placeholder(Shape({b, h}), "c0");
    CellState next = buildPeepholeLstmCell(g, x, prev, w, p);

    const Val flat =
        g.apply1(ol::reshape(Shape({1, 1, b * h})), {next.h});
    const Val ones =
        g.apply1(ol::constant(Shape({b * h}), 1.0f), {});
    const Val loss = g.apply1(
        ol::reshape(Shape({1})),
        {g.apply1(ol::dotLastAxis(), {flat, ones})});
    auto gr = graph::backward(g, loss, {p.p_i, p.p_f, p.p_o, w.wx});

    Rng rng(15);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({b, i}), rng, -0.5f, 0.5f);
    feed[w.wx.node] =
        Tensor::uniform(Shape({4 * h, i}), rng, -0.4f, 0.4f);
    feed[w.wh.node] =
        Tensor::uniform(Shape({4 * h, h}), rng, -0.4f, 0.4f);
    feed[w.bias.node] =
        Tensor::uniform(Shape({4 * h}), rng, -0.1f, 0.1f);
    feed[p.p_i.node] = Tensor::uniform(Shape({h}), rng, -0.4f, 0.4f);
    feed[p.p_f.node] = Tensor::uniform(Shape({h}), rng, -0.4f, 0.4f);
    feed[p.p_o.node] = Tensor::uniform(Shape({h}), rng, -0.4f, 0.4f);
    feed[prev.h.node] =
        Tensor::uniform(Shape({b, h}), rng, -0.4f, 0.4f);
    feed[prev.c.node] =
        Tensor::uniform(Shape({b, h}), rng, -0.4f, 0.4f);

    std::vector<Val> fetches = {loss};
    fetches.insert(fetches.end(), gr.weight_grads.begin(),
                   gr.weight_grads.end());
    graph::Executor ex(fetches);
    const auto analytic = ex.run(feed);
    graph::Executor loss_ex({loss});
    const Val wrt[] = {p.p_i, p.p_f, p.p_o, w.wx};
    const double eps = 1e-3;
    for (int wi = 0; wi < 4; ++wi) {
        Tensor &param = feed[wrt[wi].node];
        for (int64_t j = 0; j < param.numel(); ++j) {
            const float saved = param.at(j);
            param.at(j) = saved + static_cast<float>(eps);
            const double up = loss_ex.run(feed)[0].at(0);
            param.at(j) = saved - static_cast<float>(eps);
            const double down = loss_ex.run(feed)[0].at(0);
            param.at(j) = saved;
            const double numeric = (up - down) / (2.0 * eps);
            EXPECT_NEAR(analytic[static_cast<size_t>(wi) + 1].at(j),
                        numeric,
                        5e-2 * std::max(1.0, std::abs(numeric)));
        }
    }
}

TEST(BackendNames, Printable)
{
    EXPECT_STREQ(backendName(RnnBackend::kDefault), "Default");
    EXPECT_STREQ(backendName(RnnBackend::kCudnn), "CuDNN");
    EXPECT_STREQ(backendName(RnnBackend::kEco), "EcoRNN");
}

} // namespace
} // namespace echo::rnn
