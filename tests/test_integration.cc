/**
 * @file
 * Cross-module integration tests: whole-pipeline invariants that no
 * single module's suite covers — executor determinism across runs,
 * schedule stability, stashed-input classification after the rewrite,
 * end-to-end LM training with the autotuned backend, and the
 * quickstart flow itself.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "data/batcher.h"
#include "echo/feature_maps.h"
#include "echo/recompute_pass.h"
#include "graph/autodiff.h"
#include "graph/executor.h"
#include "graph/ops/oplib.h"
#include "layout/autotuner.h"
#include "memory/liveness.h"
#include "models/attention.h"
#include "models/word_lm.h"
#include "train/optimizer.h"
#include "train/simulation.h"

namespace echo {
namespace {

namespace ol = graph::oplib;
using graph::FeedDict;
using graph::Graph;
using graph::Val;

TEST(Integration, ExecutorIsDeterministicAcrossRuns)
{
    models::WordLmConfig cfg;
    cfg.vocab = 40;
    cfg.hidden = 8;
    cfg.layers = 1;
    cfg.batch = 4;
    cfg.seq_len = 5;
    models::WordLmModel model(cfg);
    Rng rng(3);
    models::ParamStore params = model.initialParams(rng);

    data::CorpusConfig ccfg;
    ccfg.vocab = data::Vocab{40};
    ccfg.num_tokens = 2000;
    data::Corpus corpus = data::Corpus::generate(ccfg);
    data::LmBatcher batcher(corpus, 4, 5);
    const data::LmBatch batch = batcher.next();

    graph::Executor ex(model.fetches());
    const auto a = ex.run(model.makeFeed(params, batch));
    const auto b = ex.run(model.makeFeed(params, batch));
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        for (int64_t j = 0; j < a[i].numel(); ++j)
            EXPECT_EQ(a[i].at(j), b[i].at(j));
}

TEST(Integration, ScheduleIsStableAcrossCalls)
{
    models::WordLmConfig cfg;
    cfg.vocab = 30;
    cfg.hidden = 8;
    cfg.layers = 1;
    cfg.batch = 2;
    cfg.seq_len = 4;
    models::WordLmModel model(cfg);
    const auto s1 = graph::buildSchedule(model.fetches());
    const auto s2 = graph::buildSchedule(model.fetches());
    ASSERT_EQ(s1.size(), s2.size());
    for (size_t i = 0; i < s1.size(); ++i)
        EXPECT_EQ(s1[i], s2[i]);
}

TEST(Integration, StashedFrontierBecomesFeatureMapAfterRewrite)
{
    // After the pass, the frontier values the replay reads must be
    // classified as feature maps (they stay alive into the backward
    // region), while the dropped interiors become forward-local.
    Graph g;
    const int64_t b = 2, t = 6, h = 8;
    Val hs = g.placeholder(Shape({b, t, h}), "hs");
    Val q0 = g.placeholder(Shape({b, h}), "q0");
    Val labels = g.placeholder(Shape({b}), "labels");
    models::NamedWeights reg;
    const models::AttentionWeights w =
        models::makeAttentionWeights(g, h, reg, "attn");
    Val keys = models::projectKeys(g, hs, w);
    Val a = models::attentionStep(g, q0, keys, hs, w);
    Val logits = g.apply1(ol::sliceOp(1, 0, 4), {a});
    Val loss = g.apply1(ol::crossEntropyLoss(), {logits, labels});
    std::vector<Val> wrt;
    for (const auto &[name, val] : reg)
        wrt.push_back(val);
    auto gr = graph::backward(g, loss, wrt);
    std::vector<Val> fetches = {loss};
    fetches.insert(fetches.end(), gr.weight_grads.begin(),
                   gr.weight_grads.end());

    pass::PassConfig pc;
    pc.overhead_budget_fraction = -1.0;
    const auto res = pass::runRecomputePass(g, fetches, pc);
    ASSERT_GT(res.num_regions, 0);

    const auto live =
        memory::analyzeLiveness(fetches, gr.weight_grads);
    bool frontier_is_fm = false;
    for (const auto &info : live.values) {
        // The projected-keys GEMM output feeds the replay: it must be
        // kept alive as a feature map.
        if (info.val.node->name == "attn_keys")
            frontier_is_fm =
                info.category == memory::DataStructure::kFeatureMaps;
    }
    EXPECT_TRUE(frontier_is_fm);
}

TEST(Integration, AutotunedLmTrainsBelowInitialPerplexity)
{
    // The full §5.4 flow: microbenchmark -> backend -> training.
    rnn::LstmSpec spec;
    spec.input_size = 16;
    spec.hidden = 16;
    spec.layers = 1;
    spec.batch = 8;
    spec.seq_len = 8;
    const auto tuned =
        layout::autotune(spec, gpusim::GpuSpec::titanXp());

    models::WordLmConfig cfg;
    cfg.vocab = 30;
    cfg.hidden = 16;
    cfg.layers = 1;
    cfg.batch = 8;
    cfg.seq_len = 8;
    cfg.backend = tuned.best;
    models::WordLmModel model(cfg);

    data::CorpusConfig ccfg;
    ccfg.vocab = data::Vocab{30};
    ccfg.num_tokens = 12000;
    ccfg.structure = 0.9;
    data::Corpus corpus = data::Corpus::generate(ccfg);
    data::LmBatcher batcher(corpus, 8, 8);

    Rng rng(19);
    models::ParamStore params = model.initialParams(rng);
    train::SgdOptimizer opt(0.5, 0.9);
    graph::Executor ex(model.fetches());

    double first = 0.0, last = 0.0;
    for (int step = 0; step < 50; ++step) {
        const auto out =
            ex.run(model.makeFeed(params, batcher.next()));
        if (step == 0)
            first = out[0].at(0);
        last = out[0].at(0);
        std::vector<Tensor> grads(out.begin() + 1, out.end());
        opt.step(params, model.weights(), grads);
    }
    EXPECT_LT(last, first);
}

TEST(Integration, PassThroughputCostIsBounded)
{
    // End-to-end guard on the paper's central "no performance loss"
    // claim: the rewritten word LM's modelled iteration is within a few
    // percent of the baseline's.
    models::WordLmConfig cfg;
    cfg.vocab = 1000;
    cfg.hidden = 128;
    cfg.layers = 1;
    cfg.batch = 32;
    cfg.seq_len = 20;

    models::WordLmModel baseline(cfg);
    models::WordLmModel rewritten(cfg);
    pass::PassConfig pc;
    pc.overhead_budget_fraction = 0.05;
    pass::runRecomputePass(rewritten.graph(), rewritten.fetches(), pc);

    const auto base = train::profileIteration(
        baseline.fetches(), baseline.weightGrads());
    const auto after = train::profileIteration(
        rewritten.fetches(), rewritten.weightGrads());
    EXPECT_LT(after.runtime.wall_time_us,
              base.runtime.wall_time_us * 1.10);
    // The selection cost model is an estimate, not a planner-exact
    // optimization: on an attention-free LM there is little to win and
    // the peak may wobble a few percent (the big, guaranteed wins are
    // the O-shape attention regions, asserted in test_models.cc).
    EXPECT_LE(after.memory.planned_bytes,
              static_cast<int64_t>(base.memory.planned_bytes * 1.05));
}

TEST(Integration, FeatureMapCountDropsAfterRewrite)
{
    models::WordLmConfig cfg;
    cfg.vocab = 100;
    cfg.hidden = 16;
    cfg.layers = 1;
    cfg.batch = 4;
    cfg.seq_len = 6;
    models::WordLmModel model(cfg);

    const size_t before =
        pass::findFeatureMaps(model.fetches()).size();
    pass::PassConfig pc;
    pc.overhead_budget_fraction = -1.0;
    pass::runRecomputePass(model.graph(), model.fetches(), pc);
    const size_t after =
        pass::findFeatureMaps(model.fetches()).size();
    EXPECT_LT(after, before);
}

} // namespace
} // namespace echo
