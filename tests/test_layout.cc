/**
 * @file
 * Tests for the data-layout optimizer (the binary [TxBxH] vs [TxHxB]
 * decision) and the autotuning microbenchmark (§5.4).
 */
#include <gtest/gtest.h>

#include "layout/autotuner.h"
#include "layout/layout_optimizer.h"

namespace echo::layout {
namespace {

using gpusim::GpuSpec;
using rnn::LstmSpec;
using rnn::RnnBackend;

LstmSpec
makeSpec(int64_t batch, int64_t hidden, int64_t layers = 1,
         int64_t seq_len = 50)
{
    LstmSpec s;
    s.input_size = hidden;
    s.hidden = hidden;
    s.layers = layers;
    s.batch = batch;
    s.seq_len = seq_len;
    return s;
}

TEST(LayoutOptimizer, PrefersTransposedLayoutForSkewedShapes)
{
    // Paper setting: B=64, H=512 -> [TxHxB] wins by ~2x.
    const LayoutDecision d =
        chooseLayout(makeSpec(64, 512), GpuSpec::titanXp());
    EXPECT_EQ(d.layout, RnnLayout::kTHB);
    EXPECT_GT(d.speedup(), 1.5);
}

TEST(LayoutOptimizer, DecisionIsBinaryAndConsistent)
{
    // The same spec always yields the same decision (the paper's
    // argument: one representative layer decides for all time steps).
    const LayoutDecision a =
        chooseLayout(makeSpec(32, 1024), GpuSpec::titanXp());
    const LayoutDecision b =
        chooseLayout(makeSpec(32, 1024), GpuSpec::titanXp());
    EXPECT_EQ(a.layout, b.layout);
    EXPECT_DOUBLE_EQ(a.tbh_time_us, b.tbh_time_us);
}

TEST(LayoutOptimizer, BenefitShrinksWithBatch)
{
    double prev = 1e9;
    for (int64_t batch : {32, 64, 128}) {
        const LayoutDecision d =
            chooseLayout(makeSpec(batch, 512), GpuSpec::titanXp());
        EXPECT_LE(d.speedup(), prev + 1e-9);
        prev = d.speedup();
    }
}

TEST(LayoutOptimizer, Names)
{
    EXPECT_STREQ(layoutName(RnnLayout::kTBH), "[TxBxH]");
    EXPECT_STREQ(layoutName(RnnLayout::kTHB), "[TxHxB]");
}

TEST(Autotuner, PicksEcoOnSkewedHyperparameters)
{
    // B=64, H=512: the paper's headline case — Eco wins.
    const AutotuneResult r =
        autotune(makeSpec(64, 512), GpuSpec::titanXp());
    EXPECT_EQ(r.best, RnnBackend::kEco);
    EXPECT_EQ(r.iteration_time_us.size(), 3u);
    EXPECT_LE(r.bestTime(),
              r.iteration_time_us.at(RnnBackend::kDefault));
    EXPECT_LE(r.bestTime(),
              r.iteration_time_us.at(RnnBackend::kCudnn));
}

TEST(Autotuner, DefaultIsNeverFastestAtScale)
{
    // Fig. 20: Default loses everywhere at realistic sizes because of
    // launch overhead.
    for (int64_t batch : {32, 64, 128}) {
        for (int64_t hidden : {256, 512, 1024}) {
            const AutotuneResult r = autotune(
                makeSpec(batch, hidden), GpuSpec::titanXp());
            EXPECT_NE(r.best, RnnBackend::kDefault)
                << "B=" << batch << " H=" << hidden;
        }
    }
}

TEST(Autotuner, MicrobenchmarkTimesArePositiveAndOrdered)
{
    const AutotuneResult r =
        autotune(makeSpec(64, 512, 2), GpuSpec::titanXp());
    for (const auto &[backend, t] : r.iteration_time_us)
        EXPECT_GT(t, 0.0);
    // Larger models take longer under every backend.
    const AutotuneResult big =
        autotune(makeSpec(64, 1024, 2), GpuSpec::titanXp());
    for (const auto &[backend, t] : r.iteration_time_us)
        EXPECT_GT(big.iteration_time_us.at(backend), t);
}

TEST(Autotuner, RespondsToGpuGeneration)
{
    const AutotuneResult xp =
        autotune(makeSpec(64, 512), GpuSpec::titanXp());
    const AutotuneResult v =
        autotune(makeSpec(64, 512), GpuSpec::titanV());
    EXPECT_LT(v.bestTime(), xp.bestTime());
}

} // namespace
} // namespace echo::layout
