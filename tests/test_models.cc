/**
 * @file
 * Tests for the model zoo: word-level LM, NMT (training graph, Echo
 * pass interaction, greedy decoding), and the CNN proxy.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "data/batcher.h"
#include "echo/recompute_pass.h"
#include "graph/executor.h"
#include "models/cnn_proxy.h"
#include "models/nmt.h"
#include "models/serialize.h"
#include "models/transformer.h"
#include "models/word_lm.h"
#include "train/simulation.h"

namespace echo::models {
namespace {

WordLmConfig
tinyLmConfig(rnn::RnnBackend backend = rnn::RnnBackend::kDefault)
{
    WordLmConfig cfg;
    cfg.vocab = 50;
    cfg.hidden = 8;
    cfg.layers = 2;
    cfg.batch = 4;
    cfg.seq_len = 6;
    cfg.backend = backend;
    return cfg;
}

data::Corpus
tinyCorpus()
{
    data::CorpusConfig cfg;
    cfg.vocab = data::Vocab{50};
    cfg.num_tokens = 4000;
    cfg.seed = 3;
    return data::Corpus::generate(cfg);
}

TEST(WordLm, BuildsAndRunsOneIteration)
{
    WordLmModel model(tinyLmConfig());
    Rng rng(1);
    ParamStore params = model.initialParams(rng);
    data::Corpus corpus = tinyCorpus();
    data::LmBatcher batcher(corpus, 4, 6);

    graph::Executor ex(model.fetches());
    const auto out = ex.run(model.makeFeed(params, batcher.next()));
    EXPECT_GT(out[0].at(0), 0.0f);
    EXPECT_TRUE(out[0].allFinite());
    EXPECT_EQ(out.size(), 1 + model.weights().size());
}

TEST(WordLm, InitialLossNearLogVocab)
{
    WordLmModel model(tinyLmConfig());
    Rng rng(2);
    ParamStore params = model.initialParams(rng);
    data::Corpus corpus = tinyCorpus();
    data::LmBatcher batcher(corpus, 4, 6);
    graph::Executor ex({model.loss()});
    const auto out = ex.run(model.makeFeed(params, batcher.next()));
    EXPECT_NEAR(out[0].at(0), std::log(50.0), 1.0);
}

TEST(WordLm, BackendsAgreeOnLoss)
{
    data::Corpus corpus = tinyCorpus();
    double losses[3];
    int idx = 0;
    for (const rnn::RnnBackend backend :
         {rnn::RnnBackend::kDefault, rnn::RnnBackend::kCudnn,
          rnn::RnnBackend::kEco}) {
        WordLmModel model(tinyLmConfig(backend));
        Rng rng(7); // same seed -> same parameter values by name order
        ParamStore params = model.initialParams(rng);
        data::LmBatcher batcher(corpus, 4, 6);
        graph::Executor ex({model.loss()});
        losses[idx++] =
            ex.run(model.makeFeed(params, batcher.next()))[0].at(0);
    }
    EXPECT_NEAR(losses[0], losses[1], 1e-4);
    EXPECT_NEAR(losses[0], losses[2], 1e-4);
}

NmtConfig
tinyNmtConfig()
{
    NmtConfig cfg;
    cfg.src_vocab = 40;
    cfg.tgt_vocab = 45;
    cfg.hidden = 8;
    cfg.enc_layers = 1;
    cfg.batch = 3;
    cfg.src_len = 7;
    cfg.tgt_len = 7;
    return cfg;
}

data::ParallelCorpus
tinyParallelCorpus()
{
    data::ParallelCorpusConfig cfg;
    cfg.src_vocab = data::Vocab{40};
    cfg.tgt_vocab = data::Vocab{45};
    cfg.num_pairs = 64;
    cfg.min_len = 3;
    cfg.max_len = 6;
    cfg.seed = 11;
    return data::ParallelCorpus::generate(cfg);
}

TEST(Nmt, BuildsAndRunsOneIteration)
{
    NmtModel model(tinyNmtConfig());
    Rng rng(1);
    ParamStore params = model.initialParams(rng);
    data::ParallelCorpus pc = tinyParallelCorpus();
    data::NmtBatcher batcher(pc, 3, 7, 7);

    graph::Executor ex(model.fetches());
    const auto out = ex.run(model.makeFeed(params, batcher.next()));
    EXPECT_TRUE(out[0].allFinite());
    EXPECT_NEAR(out[0].at(0), std::log(45.0), 1.2);
}

TEST(Nmt, LayerTagsCoverPaperBreakdownCategories)
{
    NmtModel model(tinyNmtConfig());
    bool has_tag[5] = {false, false, false, false, false};
    const char *tags[5] = {"embedding", "rnn", "decoder", "attention",
                           "output"};
    for (const auto &n : model.graph().nodes())
        for (int i = 0; i < 5; ++i)
            if (n->layer_tag == tags[i])
                has_tag[i] = true;
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(has_tag[i]) << "missing layer tag " << tags[i];
}

TEST(Nmt, AttentionDominatesFeatureMapsAtScale)
{
    // Even at reduced scale, attention feature maps are the largest
    // layer category once T is nontrivial (the Fig. 5 shape).
    NmtConfig cfg = tinyNmtConfig();
    cfg.batch = 4;
    cfg.hidden = 16;
    cfg.src_len = 24;
    cfg.tgt_len = 24;
    NmtModel model(cfg);
    train::SimulationOptions opts;
    opts.profiler.cuda_context_bytes = 0;
    const auto prof = train::profileIteration(
        model.fetches(), model.weightGrads(), opts);
    double best = 0.0;
    std::string best_layer;
    for (const auto &[layer, bytes] : prof.memory.by_layer) {
        if (static_cast<double>(bytes) > best) {
            best = static_cast<double>(bytes);
            best_layer = layer;
        }
    }
    EXPECT_EQ(best_layer, "attention");
}

TEST(Nmt, EchoPassHalvesAttentionMemory)
{
    NmtConfig cfg = tinyNmtConfig();
    cfg.batch = 4;
    cfg.hidden = 16;
    cfg.src_len = 24;
    cfg.tgt_len = 24;

    NmtModel baseline(cfg);
    NmtModel rewritten(cfg);
    pass::PassConfig pass_cfg;
    pass_cfg.overhead_budget_fraction = 0.25; // reduced-scale budget
    const pass::PassResult res = pass::runRecomputePass(
        rewritten.graph(), rewritten.fetches(), pass_cfg);
    EXPECT_GT(res.num_regions, 0);

    train::SimulationOptions opts;
    opts.profiler.cuda_context_bytes = 0;
    const auto before = train::profileIteration(
        baseline.fetches(), baseline.weightGrads(), opts);
    const auto after = train::profileIteration(
        rewritten.fetches(), rewritten.weightGrads(), opts);
    EXPECT_LT(after.memory.by_layer.at("attention"),
              before.memory.by_layer.at("attention") / 2);
    EXPECT_LT(after.memory.planned_bytes, before.memory.planned_bytes);
}

TEST(Nmt, PassPreservesLossExactly)
{
    NmtModel baseline(tinyNmtConfig());
    NmtModel rewritten(tinyNmtConfig());
    pass::PassConfig pass_cfg;
    pass_cfg.overhead_budget_fraction = 0.25;
    pass::runRecomputePass(rewritten.graph(), rewritten.fetches(),
                           pass_cfg);

    Rng rng(21);
    ParamStore params = baseline.initialParams(rng);
    data::ParallelCorpus pc = tinyParallelCorpus();
    data::NmtBatcher batcher(pc, 3, 7, 7);
    const data::NmtBatch batch = batcher.next();

    graph::Executor ex_a(baseline.fetches());
    graph::Executor ex_b(rewritten.fetches());
    const auto out_a = ex_a.run(baseline.makeFeed(params, batch));
    const auto out_b = ex_b.run(rewritten.makeFeed(params, batch));
    ASSERT_EQ(out_a.size(), out_b.size());
    for (size_t i = 0; i < out_a.size(); ++i)
        for (int64_t j = 0; j < out_a[i].numel(); ++j)
            EXPECT_EQ(out_a[i].at(j), out_b[i].at(j));
}

TEST(Nmt, GreedyDecodeProducesTokensInVocab)
{
    NmtModel model(tinyNmtConfig());
    Rng rng(4);
    ParamStore params = model.initialParams(rng);
    data::ParallelCorpus pc = tinyParallelCorpus();
    data::NmtBatcher batcher(pc, 3, 7, 7);
    const data::NmtBatch batch = batcher.next();

    const auto decoded = model.greedyDecode(params, batch.src, 7);
    ASSERT_EQ(decoded.size(), 3u);
    for (const auto &sent : decoded) {
        EXPECT_LE(sent.size(), 7u);
        for (const int64_t tok : sent)
            EXPECT_LT(tok, 45);
    }
}

TEST(NmtDecoder, RowIsIndependentOfBatchComposition)
{
    // The serving determinism contract: a row's encoder outputs and
    // step logits are a pure function of that row — byte-identical
    // whether the row runs alone or padded into a wider batch.
    const NmtConfig cfg = tinyNmtConfig();
    NmtModel model(cfg);
    Rng rng(5);
    const ParamStore params = model.initialParams(rng);

    const std::vector<int64_t> sentence = {5, 9, 13, 4};
    const int64_t ts = 7;

    NmtDecoder solo(cfg, 1, ts);
    Tensor solo_src = Tensor::zeros(Shape({1, ts}));
    for (size_t t = 0; t < sentence.size(); ++t)
        solo_src.at(0, static_cast<int64_t>(t)) =
            static_cast<float>(sentence[t]);

    NmtDecoder wide(cfg, 4, ts);
    Tensor wide_src = Tensor::zeros(Shape({4, ts}));
    for (size_t t = 0; t < sentence.size(); ++t)
        wide_src.at(2, static_cast<int64_t>(t)) =
            static_cast<float>(sentence[t]);
    // Give the neighbours different content.
    wide_src.at(0, 0) = 7.0f;
    wide_src.at(1, 0) = 11.0f;
    wide_src.at(3, 0) = 3.0f;

    const auto solo_enc = solo.encode(params, solo_src);
    const auto wide_enc = wide.encode(params, wide_src);
    const int64_t h = cfg.hidden;
    for (int64_t t = 0; t < ts; ++t)
        for (int64_t j = 0; j < h; ++j) {
            EXPECT_EQ(solo_enc.hs.at(0, t, j), wide_enc.hs.at(2, t, j));
            EXPECT_EQ(solo_enc.keys.at(0, t, j),
                      wide_enc.keys.at(2, t, j));
        }

    auto solo_state = solo.initialState();
    auto wide_state = wide.initialState();
    for (int step = 0; step < 3; ++step) {
        const Tensor solo_logits =
            solo.step(params, solo_state, solo_enc);
        const Tensor wide_logits =
            wide.step(params, wide_state, wide_enc);
        for (int64_t v = 0; v < cfg.tgt_vocab; ++v)
            EXPECT_EQ(solo_logits.at(0, v), wide_logits.at(2, v))
                << "step " << step << " vocab " << v;
        // Feed both rows the same next token.
        int64_t best = 0;
        for (int64_t v = 1; v < cfg.tgt_vocab; ++v)
            if (solo_logits.at(0, v) > solo_logits.at(0, best))
                best = v;
        solo_state.token.at(0) = static_cast<float>(best);
        wide_state.token.at(2) = static_cast<float>(best);
    }
}

TEST(WordLmStepper, RowIsIndependentOfNeighborRows)
{
    const WordLmConfig cfg = tinyLmConfig();
    WordLmModel model(cfg);
    Rng rng(6);
    const ParamStore params = model.initialParams(rng);

    WordLmStepper solo(cfg, 1);
    WordLmStepper wide(cfg, 8);
    auto solo_state = solo.initialState();
    auto wide_state = wide.initialState();

    const std::vector<int64_t> prefix = {7, 12, 3};
    for (size_t t = 0; t < prefix.size(); ++t) {
        Tensor solo_tok(Shape({1}));
        solo_tok.at(0) = static_cast<float>(prefix[t]);
        Tensor wide_tok(Shape({8}));
        for (int64_t r = 0; r < 8; ++r)
            wide_tok.at(r) = static_cast<float>((r * 5 + t) %
                                                cfg.vocab);
        wide_tok.at(5) = static_cast<float>(prefix[t]);

        const Tensor solo_logits =
            solo.step(params, solo_tok, solo_state);
        const Tensor wide_logits =
            wide.step(params, wide_tok, wide_state);
        for (int64_t v = 0; v < cfg.vocab; ++v)
            EXPECT_EQ(solo_logits.at(0, v), wide_logits.at(5, v))
                << "step " << t << " vocab " << v;
    }
}

TEST(WordLmStepper, MatchesTrainingGraphLogits)
{
    // Stepping token-by-token over the training weights must walk the
    // exact same arithmetic as the training graph's forward pass: the
    // step graph reuses the training weight names and cell structure.
    const WordLmConfig cfg = tinyLmConfig();
    WordLmModel model(cfg);
    Rng rng(7);
    const ParamStore params = model.initialParams(rng);

    WordLmStepper stepper(cfg, 1);
    auto state = stepper.initialState();
    Tensor tok(Shape({1}));
    tok.at(0) = 9.0f;
    const Tensor logits = stepper.step(params, tok, state);
    EXPECT_TRUE(logits.allFinite());
    ASSERT_EQ(logits.shape(), Shape({1, cfg.vocab}));
    EXPECT_EQ(state.h.size(), static_cast<size_t>(cfg.layers));
    EXPECT_EQ(state.c.size(), static_cast<size_t>(cfg.layers));
}


TEST(Nmt, TfStyleAttentionVariantTrainsAndDiffers)
{
    // The TensorFlow-style lowering (no layer norm in the scoring
    // composite) is a different graph with slightly different resource
    // usage (the §6.2.2 ~10% observation) and still a valid training
    // graph with finite loss.
    NmtConfig mx = tinyNmtConfig();
    NmtConfig tf = tinyNmtConfig();
    tf.normalized_attention = false;
    NmtModel mx_model(mx);
    NmtModel tf_model(tf);
    EXPECT_LT(tf_model.graph().numNodes(), mx_model.graph().numNodes());

    Rng rng(31);
    ParamStore params = tf_model.initialParams(rng);
    data::ParallelCorpus pc = tinyParallelCorpus();
    data::NmtBatcher batcher(pc, 3, 7, 7);
    graph::Executor ex({tf_model.loss()});
    const auto out = ex.run(tf_model.makeFeed(params, batcher.next()));
    EXPECT_TRUE(out[0].allFinite());
}

TEST(Nmt, EchoPassAppliesToTfStyleGraph)
{
    // Framework generality: the pass operates on the dataflow graph,
    // so the TF-style lowering is optimized just the same.
    NmtConfig cfg = tinyNmtConfig();
    cfg.normalized_attention = false;
    cfg.src_len = 20;
    cfg.tgt_len = 20;
    NmtModel model(cfg);
    pass::PassConfig pass_cfg;
    pass_cfg.overhead_budget_fraction = -1.0;
    const auto res = pass::runRecomputePass(model.graph(),
                                            model.fetches(), pass_cfg);
    EXPECT_GT(res.num_regions, 0);
    EXPECT_GT(res.bytes_saved, 0);
}


TEST(Serialize, RoundTripPreservesEveryTensorBit)
{
    Rng rng(41);
    ParamStore params;
    params["a"] = Tensor::uniform(Shape({3, 5}), rng, -2.0f, 2.0f);
    params["b.long/name"] = Tensor::uniform(Shape({7}), rng);
    params["c"] = Tensor::zeros(Shape({2, 2, 2}));
    params["c"].at(1, 1, 1) = -0.0f;

    const std::string path =
        ::testing::TempDir() + "echo_params_test.ckpt";
    saveParams(params, path);
    const ParamStore restored = loadParams(path);

    ASSERT_EQ(restored.size(), params.size());
    for (const auto &[name, tensor] : params) {
        const auto it = restored.find(name);
        ASSERT_NE(it, restored.end()) << name;
        ASSERT_EQ(it->second.shape(), tensor.shape());
        for (int64_t i = 0; i < tensor.numel(); ++i)
            EXPECT_EQ(it->second.at(i), tensor.at(i));
    }
}

TEST(Serialize, TrainedModelRestoresExactLoss)
{
    WordLmModel model(tinyLmConfig());
    Rng rng(43);
    ParamStore params = model.initialParams(rng);
    data::Corpus corpus = tinyCorpus();
    data::LmBatcher batcher(corpus, 4, 6);
    const data::LmBatch batch = batcher.next();

    graph::Executor ex({model.loss()});
    const float before = ex.run(model.makeFeed(params, batch))[0].at(0);

    const std::string path =
        ::testing::TempDir() + "echo_lm_test.ckpt";
    saveParams(params, path);
    const ParamStore restored = loadParams(path);
    const float after =
        ex.run(model.makeFeed(restored, batch))[0].at(0);
    EXPECT_EQ(before, after);
}

TEST(Serialize, RejectsGarbageFiles)
{
    const std::string path =
        ::testing::TempDir() + "echo_garbage.ckpt";
    {
        std::ofstream os(path, std::ios::binary);
        os << "definitely not a checkpoint";
    }
    EXPECT_EXIT({ loadParams(path); },
                ::testing::ExitedWithCode(1), "not an ECHO checkpoint");
}

TEST(Serialize, WritesVersionedHeader)
{
    ParamStore params;
    params["w"] = Tensor::full(Shape({2}), 1.5f);
    const std::string path =
        ::testing::TempDir() + "echo_header.ckpt";
    saveParams(params, path);

    std::ifstream is(path, std::ios::binary);
    char magic[8];
    is.read(magic, sizeof(magic));
    EXPECT_EQ(std::string(magic, 8), "ECHOCKPT");
    uint32_t version = 0, reserved = 1;
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    is.read(reinterpret_cast<char *>(&reserved), sizeof(reserved));
    EXPECT_EQ(version, kCheckpointVersion);
    EXPECT_EQ(reserved, 0u);
}

/** Write @p params in the legacy headerless "ECHO0001" layout. */
void
writeLegacyCheckpoint(const ParamStore &params, const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write("ECHO0001", 8);
    const auto u64 = [&](uint64_t v) {
        os.write(reinterpret_cast<const char *>(&v), sizeof(v));
    };
    u64(params.size());
    for (const auto &[name, tensor] : params) {
        u64(name.size());
        os.write(name.data(),
                 static_cast<std::streamsize>(name.size()));
        u64(static_cast<uint64_t>(tensor.shape().ndim()));
        for (int d = 0; d < tensor.shape().ndim(); ++d) {
            const int64_t extent = tensor.shape()[d];
            os.write(reinterpret_cast<const char *>(&extent),
                     sizeof(extent));
        }
        os.write(reinterpret_cast<const char *>(tensor.data()),
                 static_cast<std::streamsize>(tensor.numel() *
                                              sizeof(float)));
    }
}

TEST(Serialize, ReadsLegacyHeaderlessFormat)
{
    Rng rng(47);
    ParamStore params;
    params["layer.w"] = Tensor::uniform(Shape({4, 3}), rng);
    params["layer.b"] = Tensor::uniform(Shape({3}), rng);
    const std::string path =
        ::testing::TempDir() + "echo_legacy.ckpt";
    writeLegacyCheckpoint(params, path);

    const ParamStore restored = loadParams(path);
    ASSERT_EQ(restored.size(), params.size());
    for (const auto &[name, tensor] : params) {
        const auto it = restored.find(name);
        ASSERT_NE(it, restored.end()) << name;
        for (int64_t i = 0; i < tensor.numel(); ++i)
            EXPECT_EQ(it->second.at(i), tensor.at(i));
    }
}

TEST(Serialize, RejectsTruncatedFile)
{
    ParamStore params;
    Rng rng(48);
    params["w"] = Tensor::uniform(Shape({16, 16}), rng);
    const std::string full =
        ::testing::TempDir() + "echo_full.ckpt";
    saveParams(params, full);

    std::ifstream is(full, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    const std::string path =
        ::testing::TempDir() + "echo_truncated.ckpt";
    {
        std::ofstream os(path, std::ios::binary);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size() / 2));
    }
    EXPECT_EXIT({ loadParams(path); }, ::testing::ExitedWithCode(1),
                "corrupt checkpoint");
}

TEST(Serialize, RejectsUnsupportedVersion)
{
    ParamStore params;
    params["w"] = Tensor::full(Shape({1}), 0.0f);
    const std::string path =
        ::testing::TempDir() + "echo_future.ckpt";
    saveParams(params, path);
    {
        // Bump the version word in place.
        std::fstream os(path,
                        std::ios::binary | std::ios::in | std::ios::out);
        os.seekp(8);
        const uint32_t future = kCheckpointVersion + 1;
        os.write(reinterpret_cast<const char *>(&future),
                 sizeof(future));
    }
    EXPECT_EXIT({ loadParams(path); }, ::testing::ExitedWithCode(1),
                "unsupported checkpoint version");
}

TEST(Cnn, BuildsAndComputesFiniteLoss)
{
    CnnConfig cfg;
    cfg.batch = 2;
    cfg.image = 16;
    cfg.base_channels = 4;
    cfg.classes = 10;
    cfg.blocks_per_stage = 1;
    cfg.stages = 2;
    CnnModel model(cfg);

    Rng rng(6);
    ParamStore params = model.initialParams(rng);
    Tensor images =
        Tensor::uniform(Shape({2, 3, 16, 16}), rng, -1.0f, 1.0f);
    Tensor labels(Shape({2}), {1.0f, 7.0f});

    graph::Executor ex({model.loss()});
    const auto out =
        ex.run(model.makeFeed(params, images, labels));
    EXPECT_TRUE(out[0].allFinite());
    EXPECT_NEAR(out[0].at(0), std::log(10.0), 1.5);
}

TEST(Cnn, ComputeBoundAtScale)
{
    // Fig. 4(a)'s premise: convolutions saturate compute, so the GPU
    // kernel time dwarfs the launch overhead (the LSTM's situation is
    // the reverse).
    CnnConfig cfg;
    cfg.batch = 32;
    cfg.image = 224;
    CnnModel model(cfg);
    const auto rep = gpusim::simulateRun(model.fetches(),
                                         gpusim::GpuSpec::titanXp());
    EXPECT_GT(rep.gpu_kernel_time_us, 20 * rep.cuda_launch_time_us);
}


TEST(Transformer, BuildsTrainsAndLossDecreases)
{
    models::TransformerConfig cfg;
    cfg.vocab = 20;
    cfg.d_model = 8;
    cfg.d_ff = 16;
    cfg.layers = 1;
    cfg.batch = 4;
    cfg.seq_len = 5;
    TransformerModel model(cfg);

    Rng rng(51);
    ParamStore params = model.initialParams(rng);
    // A fixed repetitive token pattern the block can memorize.
    Tensor tokens(Shape({4, 5}));
    Tensor labels(Shape({20}));
    for (int64_t i = 0; i < 20; ++i) {
        tokens.at(i) = static_cast<float>(3 + (i % 7));
        labels.at(i) = static_cast<float>(3 + ((i + 1) % 7));
    }
    graph::Executor ex(model.fetches());
    double first = 0.0, last = 0.0;
    for (int step = 0; step < 30; ++step) {
        const auto out = ex.run(model.makeFeed(params, tokens, labels));
        if (step == 0)
            first = out[0].at(0);
        last = out[0].at(0);
        ASSERT_TRUE(std::isfinite(last));
        for (size_t wi = 0; wi < model.weights().size(); ++wi) {
            Tensor &w = params.at(model.weights()[wi].first);
            const Tensor &g = out[wi + 1];
            for (int64_t j = 0; j < w.numel(); ++j)
                w.at(j) -= 0.1f * g.at(j);
        }
    }
    EXPECT_LT(last, first);
}

TEST(Transformer, EchoPassIsBitExactAndGemmSheltered)
{
    models::TransformerConfig cfg;
    cfg.vocab = 20;
    cfg.d_model = 8;
    cfg.d_ff = 16;
    cfg.layers = 2;
    cfg.batch = 3;
    cfg.seq_len = 6;
    TransformerModel baseline(cfg);
    TransformerModel rewritten(cfg);

    pass::PassConfig pc;
    pc.overhead_budget_fraction = -1.0;
    const auto res = pass::runRecomputePass(rewritten.graph(),
                                            rewritten.fetches(), pc);
    // The layer-norm/residual composites are recomputable; the
    // [BxTxT] attention weights are BMM-sheltered and must remain.
    EXPECT_GT(res.num_regions, 0);
    for (const auto &n : rewritten.graph().nodes()) {
        if (n->phase == graph::Phase::kRecompute &&
            n->op->name() != "fused_recompute") {
            EXPECT_TRUE(n->op->cheapToRecompute());
        }
    }

    Rng rng(53);
    ParamStore params = baseline.initialParams(rng);
    Tensor tokens(Shape({3, 6}));
    Tensor labels(Shape({18}));
    for (int64_t i = 0; i < 18; ++i) {
        tokens.at(i) = static_cast<float>(3 + (i % 5));
        labels.at(i) = static_cast<float>(3 + ((i + 2) % 5));
    }
    graph::Executor ex_a(baseline.fetches());
    graph::Executor ex_b(rewritten.fetches());
    const auto out_a =
        ex_a.run(baseline.makeFeed(params, tokens, labels));
    const auto out_b =
        ex_b.run(rewritten.makeFeed(params, tokens, labels));
    ASSERT_EQ(out_a.size(), out_b.size());
    for (size_t i = 0; i < out_a.size(); ++i)
        for (int64_t j = 0; j < out_a[i].numel(); ++j)
            EXPECT_EQ(out_a[i].at(j), out_b[i].at(j));
}

} // namespace
} // namespace echo::models
