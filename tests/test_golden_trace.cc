/**
 * @file
 * Golden-trace determinism: one training iteration of the word-LM
 * traced at 1, 2, and 4 threads must perform the *same work* even
 * though the dispatch differs — the multiset of per-op executor spans
 * (op name, schedule slot, phase) and every kDeterministic counter
 * total are identical across thread counts; only timestamps and
 * scheduling-class counters (pool.*) may differ.
 *
 * This is the observability-layer statement of the repo-wide invariant
 * that parallel execution is bit-identical to serial execution: not
 * only are the numerical results equal (test_train covers that), the
 * recorded op-level work is too.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>

#include "core/thread_pool.h"
#include "data/batcher.h"
#include "echo/recompute_pass.h"
#include "graph/executor.h"
#include "memory/planner.h"
#include "models/word_lm.h"
#include "obs/obs.h"
#include "train/optimizer.h"
#include "train/trainer.h"

namespace echo::obs {
namespace {

/** Everything about one traced run that must not depend on threads. */
struct GoldenRun
{
    int num_threads = 0;
    /** "op-name #slot phase" -> occurrences. */
    std::map<std::string, int> op_spans;
    /** Deterministic counter totals by name. */
    std::map<std::string, int64_t> det_counters;
    /** Planner timeline length and replayed peak. */
    size_t timeline_events = 0;
    int64_t address_peak_bytes = 0;
};

int64_t
argInt(const TraceEvent &e, const char *key, int64_t fallback)
{
    for (const Arg &a : e.args)
        if (std::strcmp(a.key, key) == 0 && a.kind == Arg::Kind::kInt)
            return a.i;
    return fallback;
}

std::string
argStr(const TraceEvent &e, const char *key)
{
    for (const Arg &a : e.args)
        if (std::strcmp(a.key, key) == 0 &&
            a.kind == Arg::Kind::kString)
            return a.s;
    return "";
}

GoldenRun
traceOneIteration(int num_threads)
{
    ThreadPool::setGlobalNumThreads(num_threads);

    // Big enough that Executor's kAuto heuristic goes parallel for
    // num_threads > 1 (schedule far above 16 nodes), small enough to
    // stay fast at 1 thread.
    models::WordLmConfig cfg;
    cfg.vocab = 30;
    cfg.hidden = 12;
    cfg.layers = 2;
    cfg.batch = 4;
    cfg.seq_len = 6;
    models::WordLmModel model(cfg);
    pass::PassConfig pass_cfg;
    pass_cfg.policy = pass::PassConfig::Policy::kAuto;

    resetCountersForTest();
    startTrace();

    pass::runRecomputePass(model.graph(), model.fetches(), pass_cfg);

    data::CorpusConfig ccfg;
    ccfg.vocab = data::Vocab{cfg.vocab};
    ccfg.num_tokens = 2000;
    ccfg.seed = 13;
    data::Corpus corpus = data::Corpus::generate(ccfg);
    data::LmBatcher batcher(corpus, cfg.batch, cfg.seq_len);

    Rng rng(17);
    models::ParamStore params = model.initialParams(rng);
    train::SgdOptimizer opt(0.1, 0.9);
    graph::Executor ex(model.fetches(), graph::ExecMode::kAuto);
    train::TrainLoopConfig loop;
    loop.iterations = 1;
    loop.seconds_per_iteration = 1.0;
    train::runTrainingLoop(
        ex, loop,
        [&](int64_t) { return model.makeFeed(params, batcher.next()); },
        [&](double, const std::vector<Tensor> &grads) {
            opt.step(params, model.weights(), grads);
        });

    const auto live =
        memory::analyzeLiveness(model.fetches(), model.weightGrads());
    MemoryTimeline timeline;
    memory::PlannerOptions popts;
    popts.timeline = &timeline;
    memory::planMemory(live, popts);

    stopTrace();
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());

    GoldenRun run;
    run.num_threads = num_threads;
    for (const TraceEvent &e : snapshotEvents()) {
        // Per-op executor spans carry a "slot" arg; the run.serial /
        // run.parallel wrapper spans (whose names legitimately differ
        // by mode) do not.
        if (e.ph != 'B' || std::strcmp(e.cat, "exec") != 0)
            continue;
        const int64_t slot = argInt(e, "slot", -1);
        if (slot < 0)
            continue;
        ++run.op_spans[e.name + " #" + std::to_string(slot) + " " +
                       argStr(e, "phase")];
    }
    for (const CounterSample &c : snapshotCounters())
        if (c.kind == CounterKind::kDeterministic)
            run.det_counters[c.name] = c.value;
    run.timeline_events = timeline.events.size();
    run.address_peak_bytes =
        replayTimeline(timeline).address_peak_bytes;
    return run;
}

TEST(GoldenTrace, WorkIsIdenticalAcrossThreadCounts)
{
    const GoldenRun base = traceOneIteration(1);

    // Sanity on the baseline itself: spans were recorded, op counts
    // made it into both the trace and the counters.
    ASSERT_FALSE(base.op_spans.empty());
    int64_t span_total = 0;
    for (const auto &[key, n] : base.op_spans)
        span_total += n;
    ASSERT_GT(base.det_counters.at("exec.ops"), 0);
    // One training run plus recompute-pass probe runs may execute ops
    // outside the traced window; but within the window, exec span
    // count equals what was traced.
    EXPECT_EQ(span_total, base.det_counters.at("exec.ops"));
    EXPECT_GT(base.det_counters.at("exec.replays"), 0)
        << "expected the Echo pass to schedule recompute replays";
    EXPECT_EQ(base.det_counters.at("train.iterations"), 1);

    for (const int threads : {2, 4}) {
        const GoldenRun run = traceOneIteration(threads);
        EXPECT_EQ(run.op_spans, base.op_spans)
            << "op-span multiset diverged at " << threads
            << " threads";
        EXPECT_EQ(run.det_counters, base.det_counters)
            << "deterministic counters diverged at " << threads
            << " threads";
        EXPECT_EQ(run.timeline_events, base.timeline_events);
        EXPECT_EQ(run.address_peak_bytes, base.address_peak_bytes);
    }
}

} // namespace
} // namespace echo::obs
