/**
 * @file
 * Adversarial tests for the static-analysis layer: each test plants
 * exactly one class of corruption — a dangling edge, a cycle, a
 * use-after-free, a double free, a racy slot pair, a recomputed GEMM —
 * and asserts the analyzers flag exactly that diagnostic, plus
 * clean-graph tests asserting they stay silent on healthy inputs.
 */
#include <gtest/gtest.h>

#include "analysis/analysis.h"
#include "echo/recompute_pass.h"
#include "graph/autodiff.h"
#include "graph/ops/oplib.h"
#include "memory/liveness.h"
#include "memory/planner.h"

namespace echo::analysis {
namespace {

namespace ol = graph::oplib;
using graph::Graph;
using graph::Node;
using graph::Phase;
using graph::Val;

bool
has(const AnalysisReport &r, Check c)
{
    for (const Diagnostic &d : r.diagnostics)
        if (d.check == c)
            return true;
    return false;
}

/** True when the report has errors and every error is of check @p c. */
bool
onlyErrorsOf(const AnalysisReport &r, Check c)
{
    bool found = false;
    for (const Diagnostic &d : r.diagnostics) {
        if (d.severity != Severity::kError)
            continue;
        if (d.check != c)
            return false;
        found = true;
    }
    return found;
}

/** gemm -> tanh -> cross-entropy with one weight gradient. */
struct TinyChain
{
    Graph g;
    Val x, w, labels, h, th, loss;
    std::vector<Val> fetches, weight_grads;

    TinyChain()
    {
        x = g.placeholder(Shape({4, 8}), "x");
        w = g.weight(Shape({8, 8}), "w");
        labels = g.placeholder(Shape({4}), "labels");
        h = g.apply1(ol::gemm(false, true), {x, w});
        th = g.apply1(ol::tanhOp(), {h});
        loss = g.apply1(ol::crossEntropyLoss(), {th, labels});
        auto gr = graph::backward(g, loss, {w});
        weight_grads = gr.weight_grads;
        fetches = {loss};
        fetches.insert(fetches.end(), weight_grads.begin(),
                       weight_grads.end());
    }
};

/**
 * The per-step attention scoring structure the Echo pass targets
 * (compact twin of test_echo_pass.cc's ToyAttentionModel).
 */
struct MiniAttention
{
    std::unique_ptr<Graph> g = std::make_unique<Graph>();
    Val hs, q0, labels, loss;
    std::vector<Val> fetches, weight_grads;

    void
    build(int64_t b, int64_t t, int64_t h)
    {
        hs = g->placeholder(Shape({b, t, h}), "encoder_states");
        q0 = g->placeholder(Shape({b, h}), "q0");
        labels = g->placeholder(Shape({b}), "labels");
        Val wk = g->weight(Shape({h, h}), "wk");
        Val wq = g->weight(Shape({h, h}), "wq");
        Val wo = g->weight(Shape({h, h}), "wo");
        Val v = g->weight(Shape({h}), "v");

        Val proj_k;
        {
            graph::TagScope tag(*g, "encoder");
            Val flat = g->apply1(ol::reshape(Shape({b * t, h})), {hs});
            Val pk = g->apply1(ol::gemm(false, true), {flat, wk});
            proj_k = g->apply1(ol::reshape(Shape({b, t, h})), {pk});
        }
        Val cur = q0;
        for (int64_t step = 0; step < t; ++step) {
            g->setTimeStep(static_cast<int>(step));
            graph::TagScope tag(*g, "attention");
            Val q = g->apply1(ol::gemm(false, true), {cur, wq});
            Val e = g->apply1(ol::broadcastAddBT(), {proj_k, q});
            Val ln = g->apply(ol::layerNorm(), {e})[0];
            Val th = g->apply1(ol::tanhOp(), {ln});
            Val scores = g->apply1(ol::dotLastAxis(), {th, v});
            Val alpha = g->apply1(ol::softmax(), {scores});
            Val alpha3 =
                g->apply1(ol::reshape(Shape({b, 1, t})), {alpha});
            Val c3 =
                g->apply1(ol::bmm(false, false), {alpha3, proj_k});
            Val c2 = g->apply1(ol::reshape(Shape({b, h})), {c3});
            Val ctx = g->apply1(ol::add(), {c2, q});
            cur = g->apply1(ol::tanhOp(),
                            {g->apply1(ol::gemm(false, true),
                                       {ctx, wo})});
        }
        g->setTimeStep(-1);
        loss = g->apply1(ol::crossEntropyLoss(), {cur, labels});
        auto gr = graph::backward(*g, loss, {wk, wq, wo, v});
        weight_grads = gr.weight_grads;
        fetches = {loss};
        fetches.insert(fetches.end(), weight_grads.begin(),
                       weight_grads.end());
    }
};

// ---------------------------------------------------------------------
// Graph verifier.

TEST(GraphVerifier, CleanGraphPasses)
{
    TinyChain m;
    EXPECT_TRUE(verifyGraph(m.g).ok());
    EXPECT_TRUE(verifyFetches(m.fetches).ok());
}

TEST(GraphVerifier, DanglingEdgeBadOutputIndexFlagged)
{
    TinyChain m;
    m.th.node->inputs[0].index = 7; // gemm has one output
    const AnalysisReport r = verifyGraph(m.g);
    EXPECT_TRUE(has(r, Check::kDanglingEdge));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kDanglingEdge)) << r.toString();
}

TEST(GraphVerifier, DanglingEdgeForeignNodeFlagged)
{
    TinyChain m;
    Graph foreign;
    Val alien = foreign.placeholder(Shape({4, 8}), "alien");
    m.th.node->inputs[0] = alien;
    const AnalysisReport r = verifyGraph(m.g);
    EXPECT_TRUE(has(r, Check::kDanglingEdge));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kDanglingEdge)) << r.toString();
}

TEST(GraphVerifier, CycleFlagged)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 3}), "x");
    Val a = g.apply1(ol::tanhOp(), {x});
    Val b = g.apply1(ol::sigmoidOp(), {a});
    a.node->inputs[0] = b; // close the loop a -> b -> a
    const AnalysisReport r = verifyGraph(g);
    EXPECT_TRUE(has(r, Check::kCycle));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kCycle)) << r.toString();
}

TEST(GraphVerifier, ShapeMismatchFlagged)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 4}), "x");
    Val y = g.apply1(ol::tanhOp(), {x});
    y.node->out_shapes[0] = Shape({3, 3}); // tanh infers {2, 4}
    const AnalysisReport r = verifyFetches({y});
    EXPECT_TRUE(has(r, Check::kShapeMismatch));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kShapeMismatch)) << r.toString();
}

TEST(GraphVerifier, PhaseViolationFlagged)
{
    TinyChain m;
    // A forward node consuming a backward (gradient) value.
    m.g.setPhase(Phase::kForward);
    Val bad = m.g.apply1(ol::tanhOp(), {m.weight_grads[0]});
    const AnalysisReport r = verifyFetches({bad});
    EXPECT_TRUE(has(r, Check::kPhaseViolation));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kPhaseViolation)) << r.toString();
}

// ---------------------------------------------------------------------
// Schedule lifetime analyzer.

TEST(Lifetime, CleanSchedulePasses)
{
    TinyChain m;
    const memory::LivenessResult live =
        memory::analyzeLiveness(m.fetches, m.weight_grads);
    const memory::MemoryPlan plan = memory::planMemory(live);
    EXPECT_TRUE(
        analyzeLifetimes(live, m.fetches, m.weight_grads, &plan).ok());
}

TEST(Lifetime, UseAfterFreeFlagged)
{
    TinyChain m;
    memory::LivenessResult live =
        memory::analyzeLiveness(m.fetches, m.weight_grads);
    // Shrink the tanh output's interval to its def: the cross-entropy
    // node (and the backward consumers) now read a freed buffer.
    auto it = live.index.find(m.th);
    ASSERT_NE(it, live.index.end());
    memory::ValueInfo &info = live.values[it->second];
    ASSERT_FALSE(info.persistent);
    ASSERT_GT(info.last_use_pos, info.def_pos);
    info.last_use_pos = info.def_pos;
    const AnalysisReport r =
        analyzeLifetimes(live, m.fetches, m.weight_grads);
    EXPECT_TRUE(has(r, Check::kUseAfterFree));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kUseAfterFree)) << r.toString();
}

TEST(Lifetime, DoubleFreeFlagged)
{
    TinyChain m;
    memory::LivenessResult live =
        memory::analyzeLiveness(m.fetches, m.weight_grads);
    // Schedule an input node twice (no dataflow inputs of its own, so
    // the duplication cannot shadow other diagnostics).
    ASSERT_TRUE(live.schedule[0]->inputs.empty());
    live.schedule.push_back(live.schedule[0]);
    const AnalysisReport r =
        analyzeLifetimes(live, m.fetches, m.weight_grads);
    EXPECT_TRUE(has(r, Check::kDoubleFree));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kDoubleFree)) << r.toString();
}

TEST(Lifetime, LeakedSlotFlagged)
{
    TinyChain m;
    memory::LivenessResult live =
        memory::analyzeLiveness(m.fetches, m.weight_grads);
    // Pin a transient feature map for the whole run with nothing (no
    // fetch, weight, or gradient) justifying the persistence.
    auto it = live.index.find(m.th);
    ASSERT_NE(it, live.index.end());
    live.values[it->second].persistent = true;
    const AnalysisReport r =
        analyzeLifetimes(live, m.fetches, m.weight_grads);
    EXPECT_TRUE(has(r, Check::kLeakedSlot));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kLeakedSlot)) << r.toString();
}

TEST(Lifetime, PlanMissingFlagged)
{
    TinyChain m;
    const memory::LivenessResult live =
        memory::analyzeLiveness(m.fetches, m.weight_grads);
    memory::MemoryPlan plan = memory::planMemory(live);
    ASSERT_TRUE(plan.offsets.count(m.th));
    plan.offsets.erase(m.th);
    const AnalysisReport r =
        analyzeLifetimes(live, m.fetches, m.weight_grads, &plan);
    EXPECT_TRUE(has(r, Check::kPlanMissing));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kPlanMissing)) << r.toString();
}

TEST(Lifetime, PlanUndersizedAllocationFlagged)
{
    TinyChain m;
    const memory::LivenessResult live =
        memory::analyzeLiveness(m.fetches, m.weight_grads);
    memory::MemoryPlan plan = memory::planMemory(live);
    auto it = live.index.find(m.th);
    ASSERT_NE(it, live.index.end());
    const int64_t real_bytes = live.values[it->second].bytes;
    ASSERT_GT(real_bytes, 1);
    plan.offsets[m.th].bytes = real_bytes - 1;
    const AnalysisReport r =
        analyzeLifetimes(live, m.fetches, m.weight_grads, &plan);
    EXPECT_TRUE(has(r, Check::kPlanOverlap));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kPlanOverlap)) << r.toString();
}

TEST(Lifetime, PlanOverlapFlagged)
{
    TinyChain m;
    const memory::LivenessResult live =
        memory::analyzeLiveness(m.fetches, m.weight_grads);
    memory::MemoryPlan plan = memory::planMemory(live);
    // h and th are live simultaneously (tanh reads h while holding its
    // own output); aliasing their allocations is a write race.
    ASSERT_TRUE(plan.offsets.count(m.h));
    ASSERT_TRUE(plan.offsets.count(m.th));
    plan.offsets[m.th].offset = plan.offsets[m.h].offset;
    const AnalysisReport r =
        analyzeLifetimes(live, m.fetches, m.weight_grads, &plan);
    EXPECT_TRUE(has(r, Check::kPlanOverlap));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kPlanOverlap)) << r.toString();
}

// ---------------------------------------------------------------------
// Parallel hazard detector.

TEST(Hazards, CleanTopologyPasses)
{
    TinyChain m;
    EXPECT_TRUE(detectParallelHazards(buildTopology(m.fetches)).ok());
}

TEST(Hazards, RacySlotPairFlagged)
{
    TinyChain m;
    ParallelTopology topo = buildTopology(m.fetches);
    // Dispatch an input node twice: two incomparable dispatches write
    // the same output slot.
    ASSERT_TRUE(topo.input_slots[0].empty());
    topo.schedule.push_back(topo.schedule[0]);
    topo.input_slots.push_back({});
    topo.in_degree.push_back(0);
    topo.use_counts.push_back(0);
    const AnalysisReport r = detectParallelHazards(topo);
    EXPECT_TRUE(has(r, Check::kSharedOutputSlot));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kSharedOutputSlot))
        << r.toString();
}

TEST(Hazards, ReadyRaceFlagged)
{
    TinyChain m;
    ParallelTopology topo = buildTopology(m.fetches);
    // Undercount a consumer's in-degree: the ready queue can dispatch
    // it while a producer is still writing.
    size_t victim = topo.schedule.size();
    for (size_t s = 0; s < topo.schedule.size(); ++s)
        if (!topo.input_slots[s].empty()) {
            victim = s;
            break;
        }
    ASSERT_LT(victim, topo.schedule.size());
    --topo.in_degree[victim];
    const AnalysisReport r = detectParallelHazards(topo);
    EXPECT_TRUE(has(r, Check::kReadyRace));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kReadyRace)) << r.toString();
}

TEST(Hazards, PrematureFreeFlagged)
{
    TinyChain m;
    ParallelTopology topo = buildTopology(m.fetches);
    // Undercount a producer's uses: its buffer is freed while a
    // consumer that can still be running reads it.
    size_t victim = topo.schedule.size();
    for (size_t s = 0; s < topo.schedule.size(); ++s)
        if (topo.use_counts[s] > 0) {
            victim = s;
            break;
        }
    ASSERT_LT(victim, topo.schedule.size());
    --topo.use_counts[victim];
    const AnalysisReport r = detectParallelHazards(topo);
    EXPECT_TRUE(has(r, Check::kPrematureFree));
    EXPECT_TRUE(onlyErrorsOf(r, Check::kPrematureFree)) << r.toString();
}

// ---------------------------------------------------------------------
// Echo pass auditor.

TEST(PassAudit, CleanAfterAutoPass)
{
    MiniAttention m;
    m.build(2, 4, 16);
    const GraphSnapshot snap =
        snapshotGraph(*m.g, m.fetches, m.weight_grads);
    pass::PassConfig cfg;
    cfg.overhead_budget_fraction = 0.5; // toy scale
    const pass::PassResult res =
        pass::runRecomputePass(*m.g, m.fetches, cfg);
    ASSERT_GT(res.num_regions, 0);
    const AnalysisReport audit = auditRecomputePass(
        snap, *m.g, m.fetches, m.weight_grads, res, {});
    EXPECT_TRUE(audit.ok()) << audit.toString();
    EXPECT_TRUE(analyzeAll(m.fetches, m.weight_grads).ok());
}

TEST(PassAudit, RecomputedGemmFlagged)
{
    TinyChain m;
    const GraphSnapshot snap =
        snapshotGraph(m.g, m.fetches, m.weight_grads);
    // The Chen-et-al ablation recomputes through the GEMM boundary;
    // Echo's auditor must call that out.
    pass::PassConfig cfg;
    cfg.respect_gemm_boundary = false;
    cfg.fuse_replay = false;
    cfg.overhead_budget_fraction = -1.0;
    const pass::PassResult res =
        pass::runRecomputePass(m.g, m.fetches, cfg);
    ASSERT_GT(res.num_recompute_nodes, 0);
    const AnalysisReport audit = auditRecomputePass(
        snap, m.g, m.fetches, m.weight_grads, res, {});
    EXPECT_TRUE(has(audit, Check::kRecomputedGemm));
    EXPECT_TRUE(onlyErrorsOf(audit, Check::kRecomputedGemm))
        << audit.toString();
}

TEST(PassAudit, MutatedForwardFlagged)
{
    TinyChain m;
    const GraphSnapshot snap =
        snapshotGraph(m.g, m.fetches, m.weight_grads);
    // A buggy pass rewiring a *forward* node (same shape, so only the
    // diff check can catch it).
    m.th.node->inputs[0] = m.x;
    const AnalysisReport audit = auditRecomputePass(
        snap, m.g, m.fetches, m.weight_grads, pass::PassResult{}, {});
    EXPECT_TRUE(has(audit, Check::kMutatedForward));
    EXPECT_TRUE(onlyErrorsOf(audit, Check::kMutatedForward))
        << audit.toString();
}

TEST(PassAudit, FootprintMismatchFlagged)
{
    TinyChain m;
    const GraphSnapshot snap =
        snapshotGraph(m.g, m.fetches, m.weight_grads);
    // A cost model claiming savings the (unchanged) graph does not
    // deliver must be contradicted by the liveness ground truth.
    pass::PassResult res;
    res.num_regions = 1;
    res.bytes_saved = 1 << 20;
    const AnalysisReport audit = auditRecomputePass(
        snap, m.g, m.fetches, m.weight_grads, res, {});
    EXPECT_TRUE(has(audit, Check::kFootprintMismatch));
    EXPECT_TRUE(onlyErrorsOf(audit, Check::kFootprintMismatch))
        << audit.toString();
}

} // namespace
} // namespace echo::analysis
