/**
 * @file
 * Tests for core/thread_pool: lifecycle, task handles, parallelFor
 * coverage/determinism, exception propagation, and nesting safety.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.h"

namespace echo {
namespace {

TEST(ThreadPool, StartupAndShutdown)
{
    // Construction spins up workers; destruction joins them.  Run a
    // few cycles to catch teardown races.
    for (int round = 0; round < 4; ++round) {
        ThreadPool pool(3);
        EXPECT_EQ(pool.numThreads(), 3);
    }
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 1);
}

TEST(ThreadPool, SubmitRunsAndWaits)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    std::vector<ThreadPool::Task> tasks;
    for (int i = 0; i < 16; ++i)
        tasks.push_back(pool.submit([&counter] { ++counter; }));
    for (ThreadPool::Task &t : tasks)
        t.wait();
    EXPECT_EQ(counter.load(), 16);
    for (ThreadPool::Task &t : tasks)
        EXPECT_TRUE(t.done());
}

TEST(ThreadPool, PendingTasksFinishBeforeDestruction)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&counter] { ++counter; });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, SubmitPropagatesException)
{
    ThreadPool pool(2);
    ThreadPool::Task task = pool.submit(
        [] { throw std::runtime_error("boom"); });
    EXPECT_THROW(task.wait(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    const int64_t n = 10000;
    std::vector<int> hits(n, 0);
    pool.parallelFor(0, n, 16, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            ++hits[static_cast<size_t>(i)];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), n);
    EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
    EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
}

TEST(ThreadPool, ParallelForEmptyAndTinyRanges)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    pool.parallelFor(0, 1, 1,
                     [&](int64_t b, int64_t e) { calls += int(e - b); });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForRespectsGrain)
{
    ThreadPool pool(8);
    std::mutex mu;
    std::vector<int64_t> chunk_sizes;
    pool.parallelFor(0, 1000, 100, [&](int64_t b, int64_t e) {
        std::lock_guard<std::mutex> lk(mu);
        chunk_sizes.push_back(e - b);
    });
    int64_t total = 0;
    for (int64_t sz : chunk_sizes) {
        EXPECT_GE(sz, 1);
        total += sz;
    }
    EXPECT_EQ(total, 1000);
    // No chunk may be smaller than the grain except the last remainder.
    int below = 0;
    for (int64_t sz : chunk_sizes)
        if (sz < 100)
            ++below;
    EXPECT_LE(below, 1);
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 1000, 1,
                                  [&](int64_t b, int64_t) {
                                      if (b >= 500)
                                          throw std::runtime_error("bad");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsSerially)
{
    // A parallelFor body that calls parallelFor again must not deadlock
    // and must still cover the inner range; the nesting guard forces
    // the inner loop onto the calling thread.
    ThreadPool pool(4);
    std::atomic<int64_t> inner_total{0};
    pool.parallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
            pool.parallelFor(0, 100, 1, [&](int64_t ib, int64_t ie) {
                inner_total += ie - ib;
            });
        }
    });
    EXPECT_EQ(inner_total.load(), 8 * 100);
}

TEST(ThreadPool, SerialFallbackMatchesParallel)
{
    // The same reduction pattern (each slot written by exactly one
    // chunk) must produce byte-identical results on 1 and 8 threads.
    const int64_t n = 4096;
    std::vector<float> serial(n), parallel(n);
    auto body = [](std::vector<float> &out) {
        return [&out](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i)
                out[static_cast<size_t>(i)] =
                    std::sin(static_cast<float>(i)) * 0.5f;
        };
    };
    ThreadPool one(1);
    one.parallelFor(0, n, 64, body(serial));
    ThreadPool eight(8);
    eight.parallelFor(0, n, 64, body(parallel));
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.size() * sizeof(float)),
              0);
}

TEST(ThreadPool, DefaultNumThreadsReadsEnvironment)
{
    // setenv/getenv here is safe: this test binary is single-threaded
    // at this point.
    setenv("ECHO_NUM_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultNumThreads(), 3);
    setenv("ECHO_NUM_THREADS", "not-a-number", 1);
    const int fallback = ThreadPool::defaultNumThreads();
    EXPECT_GE(fallback, 1); // invalid value ignored with a warning
    unsetenv("ECHO_NUM_THREADS");
}

TEST(ThreadPool, GlobalPoolSwapsThreadCount)
{
    ThreadPool::setGlobalNumThreads(2);
    EXPECT_EQ(ThreadPool::global().numThreads(), 2);
    ThreadPool::setGlobalNumThreads(5);
    EXPECT_EQ(ThreadPool::global().numThreads(), 5);
    ThreadPool::setGlobalNumThreads(1);
    EXPECT_EQ(ThreadPool::global().numThreads(), 1);
}

TEST(ThreadPool, OnWorkerThreadIsVisibleInsideTasks)
{
    EXPECT_FALSE(ThreadPool::onWorkerThread());
    ThreadPool pool(2);
    ThreadPool::Task task = pool.submit(
        [] { EXPECT_TRUE(ThreadPool::onWorkerThread()); });
    task.wait();
}

} // namespace
} // namespace echo
