/**
 * @file
 * Randomized property tests: generate random dataflow graphs (cheap
 * element-wise chains interleaved with GEMMs), differentiate them, and
 * assert the invariants the Echo pass must uphold on ANY graph:
 *
 *  - the rewrite never changes a single output bit (fused or unfused),
 *  - the pass never recomputes a GEMM-class op,
 *  - the memory plan never overlaps simultaneously live values,
 *  - the planner's recorded memory timeline replays consistently (no
 *    overlapping live allocations, peak equal to the plan's pool peak,
 *    pool peak never below the liveness lower bound),
 *  - analytic gradients match finite differences.
 *
 * Seeds are reproducible: every failure message carries the seed and
 * the rerun recipe, and the seed set can be overridden with
 * ECHO_FUZZ_SEED=<n> (just that seed) or ECHO_FUZZ_ITERS=<n> (n
 * derived seeds) without recompiling.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "budget/planner.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "echo/recompute_pass.h"
#include "analysis/numeric_verify.h"
#include "graph/autodiff.h"
#include "analysis/tape_audit.h"
#include "graph/executor.h"
#include "graph/fusion.h"
#include "graph/tape.h"
#include "graph/ops/oplib.h"
#include "memory/planner.h"
#include "models/nmt.h"
#include "models/word_lm.h"
#include "pass/builtin_passes.h"
#include "serve/server.h"
#include "obs/memory_timeline.h"
#include "tensor/ops.h"
#include "tune/search_space.h"

namespace echo::pass {
namespace {

/**
 * The parameter set for every fuzz suite below.  Defaults to a fixed
 * seed list (stable CI); ECHO_FUZZ_SEED pins a single failing seed for
 * a repro run, ECHO_FUZZ_ITERS widens the sweep to n seeds derived
 * from a fixed stream.
 */
std::vector<uint64_t>
fuzzSeeds()
{
    if (const char *env = std::getenv("ECHO_FUZZ_SEED")) {
        return {std::strtoull(env, nullptr, 10)};
    }
    if (const char *env = std::getenv("ECHO_FUZZ_ITERS")) {
        const int64_t n = std::strtoll(env, nullptr, 10);
        std::vector<uint64_t> seeds;
        Rng rng(0xEC40F022u);
        for (int64_t i = 0; i < n; ++i)
            seeds.push_back(rng.uniformInt(1u << 30));
        return seeds.empty() ? std::vector<uint64_t>{1u} : seeds;
    }
    return {1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u};
}

/** Failure annotation: the seed plus how to rerun exactly this case. */
std::string
repro(uint64_t seed)
{
    return "seed " + std::to_string(seed) +
           " (rerun: ECHO_FUZZ_SEED=" + std::to_string(seed) +
           " ./test_fuzz)";
}

namespace ol = graph::oplib;
using graph::FeedDict;
using graph::Graph;
using graph::Val;

constexpr int64_t kRows = 3;
constexpr int64_t kCols = 6;

/** A randomly generated training graph over [kRows x kCols] tensors. */
struct RandomModel
{
    std::unique_ptr<Graph> g = std::make_unique<Graph>();
    std::vector<Val> inputs;  // placeholders
    std::vector<Val> weights; // square weights for GEMMs
    Val loss;
    std::vector<Val> fetches;
    std::vector<Val> weight_grads;

    void
    build(uint64_t seed, int num_ops, bool run_backward = true)
    {
        Rng rng(seed);
        std::vector<Val> pool;
        for (int i = 0; i < 2; ++i) {
            inputs.push_back(g->placeholder(
                Shape({kRows, kCols}), "x" + std::to_string(i)));
            pool.push_back(inputs.back());
        }
        for (int i = 0; i < 2; ++i)
            weights.push_back(g->weight(Shape({kCols, kCols}),
                                        "w" + std::to_string(i)));

        auto pick = [&]() {
            return pool[rng.uniformInt(pool.size())];
        };
        for (int i = 0; i < num_ops; ++i) {
            const uint64_t choice = rng.uniformInt(8);
            Val v;
            switch (choice) {
              case 0:
                v = g->apply1(ol::add(), {pick(), pick()});
                break;
              case 1:
                v = g->apply1(ol::sub(), {pick(), pick()});
                break;
              case 2:
                v = g->apply1(ol::mul(), {pick(), pick()});
                break;
              case 3:
                v = g->apply1(ol::tanhOp(), {pick()});
                break;
              case 4:
                v = g->apply1(ol::sigmoidOp(), {pick()});
                break;
              case 5:
                v = g->apply1(
                    ol::scale(static_cast<float>(
                        rng.uniform(0.5, 1.5))),
                    {pick()});
                break;
              case 6:
                v = g->apply1(
                    ol::gemm(false, true),
                    {pick(), weights[rng.uniformInt(2)]});
                break;
              default:
                v = g->apply1(ol::softmax(), {pick()});
                break;
            }
            pool.push_back(v);
        }

        // Scalar loss over the last value: sum(tanh(v)).
        const Val last = pool.back();
        const Val t = g->apply1(ol::tanhOp(), {last});
        const Val flat = g->apply1(
            ol::reshape(Shape({1, 1, kRows * kCols})), {t});
        const Val ones = g->apply1(
            ol::constant(Shape({kRows * kCols}), 1.0f), {});
        loss = g->apply1(
            ol::reshape(Shape({1})),
            {g->apply1(ol::dotLastAxis(), {flat, ones})});

        if (!run_backward)
            return;
        auto gr = graph::backward(*g, loss, weights);
        weight_grads = gr.weight_grads;
        fetches = {loss};
        fetches.insert(fetches.end(), weight_grads.begin(),
                       weight_grads.end());
    }

    FeedDict
    feed(uint64_t seed) const
    {
        Rng rng(seed);
        FeedDict f;
        for (const Val &x : inputs)
            f[x.node] = Tensor::uniform(Shape({kRows, kCols}), rng,
                                        -0.8f, 0.8f);
        for (const Val &w : weights)
            f[w.node] = Tensor::uniform(Shape({kCols, kCols}), rng,
                                        -0.4f, 0.4f);
        return f;
    }
};

class PassFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PassFuzz, RewriteIsBitExactOnRandomGraphs)
{
    const uint64_t seed = GetParam();
    for (const bool fuse : {false, true}) {
        RandomModel baseline, rewritten;
        baseline.build(seed, 24);
        rewritten.build(seed, 24);

        PassConfig cfg;
        cfg.overhead_budget_fraction = -1.0;
        cfg.fuse_replay = fuse;
        runRecomputePass(*rewritten.g, rewritten.fetches, cfg);

        graph::Executor ex_a(baseline.fetches);
        graph::Executor ex_b(rewritten.fetches);
        const auto out_a = ex_a.run(baseline.feed(seed * 31 + 7));
        const auto out_b = ex_b.run(rewritten.feed(seed * 31 + 7));
        const analysis::VerifyResult vr = analysis::compareFetches(out_a, out_b);
        EXPECT_TRUE(vr.shapes_match);
        EXPECT_EQ(vr.max_abs_diff, 0.0)
            << repro(seed) << " fuse=" << fuse;
    }
}

TEST_P(PassFuzz, FusionIsByteExactAcrossThreadCounts)
{
    const uint64_t seed = GetParam();
    RandomModel baseline, fused;
    baseline.build(seed, 24);
    fused.build(seed, 24);

    const fusion::FusionResult fr =
        fusion::runFusionPass(*fused.g, fused.fetches);

    graph::Executor ex_a(baseline.fetches);
    graph::Executor ex_b(fused.fetches);
    std::vector<Tensor> ref;
    for (const int threads : {1, 2, 4}) {
        ThreadPool::setGlobalNumThreads(threads);
        const auto out_a = ex_a.run(baseline.feed(seed * 17 + 3));
        const auto out_b = ex_b.run(fused.feed(seed * 17 + 3));
        const analysis::VerifyResult vr =
            analysis::compareFetches(out_a, out_b);
        EXPECT_TRUE(vr.shapes_match)
            << repro(seed) << " threads=" << threads;
        // Loss AND every weight gradient, bit for bit: fusion may
        // never change a single output bit at any thread count.
        EXPECT_EQ(vr.max_abs_diff, 0.0)
            << repro(seed) << " threads=" << threads << " ("
            << fr.num_groups << " fused groups)";
        if (ref.empty()) {
            ref = out_b;
        } else {
            const analysis::VerifyResult across =
                analysis::compareFetches(ref, out_b);
            EXPECT_EQ(across.max_abs_diff, 0.0)
                << repro(seed) << ": fused outputs differ between 1 "
                << "and " << threads << " threads";
        }
    }
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}

TEST_P(PassFuzz, NeverRecomputesGemms)
{
    RandomModel m;
    m.build(GetParam(), 24);
    PassConfig cfg;
    cfg.overhead_budget_fraction = -1.0;
    cfg.fuse_replay = false; // per-op clones so ops are inspectable
    runRecomputePass(*m.g, m.fetches, cfg);
    for (const auto &n : m.g->nodes()) {
        if (n->phase == graph::Phase::kRecompute) {
            EXPECT_TRUE(n->op->cheapToRecompute())
                << repro(GetParam()) << " recompute node runs "
                << n->op->name();
        }
    }
}

TEST_P(PassFuzz, PlanNeverOverlapsLiveValuesAfterRewrite)
{
    RandomModel m;
    m.build(GetParam(), 24);
    PassConfig cfg;
    cfg.overhead_budget_fraction = -1.0;
    runRecomputePass(*m.g, m.fetches, cfg);

    const auto live =
        memory::analyzeLiveness(m.fetches, m.weight_grads);
    const auto plan = memory::planMemory(live);
    for (const auto &a : live.values) {
        if (a.persistent)
            continue;
        for (const auto &b : live.values) {
            if (b.persistent || a.val == b.val)
                continue;
            const bool overlap_life =
                a.def_pos <= b.last_use_pos &&
                b.def_pos <= a.last_use_pos;
            if (!overlap_life)
                continue;
            const auto &pa = plan.offsets.at(a.val);
            const auto &pb = plan.offsets.at(b.val);
            const bool disjoint =
                pa.offset + pa.bytes <= pb.offset ||
                pb.offset + pb.bytes <= pa.offset;
            ASSERT_TRUE(disjoint) << repro(GetParam());
        }
    }
}

TEST_P(PassFuzz, GradientsMatchFiniteDifferences)
{
    RandomModel m;
    m.build(GetParam(), 14);
    FeedDict feed = m.feed(GetParam() + 99);

    graph::Executor ex(m.fetches);
    const auto analytic = ex.run(feed);
    graph::Executor loss_ex({m.loss});
    const double eps = 1e-3;

    // Check a handful of elements of the first weight.
    Tensor &param = feed[m.weights[0].node];
    for (int64_t j = 0; j < param.numel(); j += 7) {
        const float saved = param.at(j);
        param.at(j) = saved + static_cast<float>(eps);
        const double up = loss_ex.run(feed)[0].at(0);
        param.at(j) = saved - static_cast<float>(eps);
        const double down = loss_ex.run(feed)[0].at(0);
        param.at(j) = saved;
        const double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(analytic[1].at(j), numeric,
                    5e-2 * std::max(1.0, std::abs(numeric)))
            << repro(GetParam()) << " element " << j;
    }
}

TEST_P(PassFuzz, TimelineReplayMatchesPlanAndLivenessBound)
{
    const uint64_t seed = GetParam();
    for (const bool run_pass : {false, true}) {
        RandomModel m;
        m.build(seed, 24);
        if (run_pass) {
            PassConfig cfg;
            cfg.overhead_budget_fraction = -1.0;
            runRecomputePass(*m.g, m.fetches, cfg);
        }

        const auto live =
            memory::analyzeLiveness(m.fetches, m.weight_grads);
        obs::MemoryTimeline timeline;
        memory::PlannerOptions opts;
        opts.timeline = &timeline;
        const auto plan = memory::planMemory(live, opts);
        const obs::TimelineReplay replay =
            obs::replayTimeline(timeline);

        for (const std::string &v : replay.violations)
            ADD_FAILURE() << repro(seed) << " pass=" << run_pass
                          << ": " << v;
        EXPECT_EQ(replay.outstanding_bytes, 0)
            << repro(seed) << " pass=" << run_pass;
        EXPECT_EQ(replay.address_peak_bytes, plan.pool_peak_bytes)
            << repro(seed) << " pass=" << run_pass;

        // Liveness lower bound: at each schedule position, the sum of
        // aligned sizes of transients live there.  The replayed live
        // peak must equal it, and no pool layout can beat it.
        const auto align_up = [&](int64_t b) {
            return (b + opts.alignment - 1) / opts.alignment *
                   opts.alignment;
        };
        int64_t bound = 0;
        for (size_t p = 0; p < live.schedule.size(); ++p) {
            int64_t at_p = 0;
            for (const auto &v : live.values) {
                if (v.persistent)
                    continue;
                if (v.def_pos <= static_cast<int>(p) &&
                    static_cast<int>(p) <= v.last_use_pos)
                    at_p += align_up(v.bytes);
            }
            bound = std::max(bound, at_p);
        }
        EXPECT_EQ(replay.live_peak_bytes, bound)
            << repro(seed) << " pass=" << run_pass;
        EXPECT_GE(plan.pool_peak_bytes, bound)
            << repro(seed) << " pass=" << run_pass;
    }
}

TEST_P(PassFuzz, RandomLegalPipelinesPreserveBytes)
{
    const uint64_t seed = GetParam();
    Rng rng(seed * 97 + 13);

    // Baseline: autodiff alone, no optimization passes.
    RandomModel baseline;
    baseline.build(seed, 24, /*run_backward=*/false);
    {
        PipelineContext ctx(*baseline.g);
        ctx.loss = baseline.loss;
        ctx.wrt = baseline.weights;
        buildPipeline("autodiff").runOrDie(ctx, "fuzz baseline");
        baseline.fetches = ctx.fetches;
    }
    graph::Executor ex_a(baseline.fetches);
    const auto out_a = ex_a.run(baseline.feed(seed * 31 + 7));

    // A random subset of the optimization-pass pool in a random order
    // after autodiff.  The contract says every such pipeline is
    // statically legal (the transforms only ever need gradients), runs
    // postcondition-clean, and never changes an output bit.
    std::vector<std::string> pool = {"fusion", "recompute", "layout",
                                     "gemm_warm", "verify"};
    for (size_t i = pool.size(); i > 1; --i)
        std::swap(pool[i - 1], pool[rng.uniformInt(i)]);
    const size_t keep = rng.uniformInt(pool.size() + 1);
    std::string spec = "autodiff";
    for (size_t i = 0; i < keep; ++i) {
        spec += ',';
        spec += pool[i];
    }

    RandomModel optimized;
    optimized.build(seed, 24, /*run_backward=*/false);
    PipelineContext ctx(*optimized.g);
    ctx.loss = optimized.loss;
    ctx.wrt = optimized.weights;
    ctx.recompute_config.overhead_budget_fraction = -1.0;
    const PassManager pm = buildPipeline(spec);
    ASSERT_TRUE(pm.validate(ctx.initialInvariants()).empty())
        << repro(seed) << " spec=" << spec;
    PassManager::RunOptions opts;
    opts.what = "fuzz pipeline";
    const PipelineReport report = pm.run(ctx, opts);
    ASSERT_TRUE(report.ok()) << repro(seed) << " spec=" << spec
                             << "\n"
                             << report.toString();

    graph::Executor ex_b(ctx.fetches);
    const auto out_b = ex_b.run(optimized.feed(seed * 31 + 7));
    const analysis::VerifyResult vr =
        analysis::compareFetches(out_a, out_b);
    EXPECT_TRUE(vr.shapes_match) << repro(seed) << " spec=" << spec;
    EXPECT_EQ(vr.max_abs_diff, 0.0)
        << repro(seed) << " spec=" << spec;
}

TEST_P(PassFuzz, RandomBudgetsAlwaysFit)
{
    const uint64_t seed = GetParam();

    // Learn the achievable pool-peak range [tightest, baseline] from a
    // sacrificial copy (a 1-byte budget is always infeasible, and an
    // infeasible plan leaves its graph untouched).
    int64_t tightest = 0, baseline_peak = 0;
    {
        RandomModel probe;
        probe.build(seed, 24);
        budget::BudgetConfig tiny;
        tiny.budget_bytes = 1;
        tiny.recompute.overhead_budget_fraction = -1.0;
        const budget::BudgetPlan p = budget::planWithBudget(
            *probe.g, probe.fetches, probe.weight_grads, tiny);
        tightest = p.tightest_pool_peak;
        baseline_peak = p.baseline_pool_peak;
    }
    ASSERT_GT(tightest, 0) << repro(seed);
    ASSERT_LE(tightest, baseline_peak) << repro(seed);

    // Property: EVERY budget in [tightest, baseline] is feasible, the
    // measured peak honors it, the timeline replay agrees, and the
    // rewrite never changes an output bit — for every solver.
    RandomModel baseline;
    baseline.build(seed, 24);
    graph::Executor ex_a(baseline.fetches);
    const auto out_a = ex_a.run(baseline.feed(seed * 31 + 7));

    Rng rng(seed * 131 + 5);
    const budget::Solver solvers[] = {budget::Solver::kGreedy,
                                      budget::Solver::kChainDp,
                                      budget::Solver::kLagrange};
    for (const budget::Solver solver : solvers) {
        const int64_t budget_bytes =
            tightest +
            static_cast<int64_t>(rng.uniformInt(static_cast<uint64_t>(
                baseline_peak - tightest + 1)));

        RandomModel planned;
        planned.build(seed, 24);
        budget::BudgetConfig config;
        config.budget_bytes = budget_bytes;
        config.solver = solver;
        config.recompute.overhead_budget_fraction = -1.0;
        const budget::BudgetPlan plan = budget::planWithBudget(
            *planned.g, planned.fetches, planned.weight_grads, config);

        ASSERT_TRUE(plan.feasible)
            << repro(seed) << " solver=" << budget::solverName(solver)
            << " budget=" << budget_bytes << " note=" << plan.note;
        EXPECT_LE(plan.planned_pool_peak, budget_bytes)
            << repro(seed) << " solver=" << budget::solverName(solver);
        EXPECT_TRUE(plan.replay_ok)
            << repro(seed) << " solver=" << budget::solverName(solver);

        graph::Executor ex_b(planned.fetches);
        const auto out_b = ex_b.run(planned.feed(seed * 31 + 7));
        const analysis::VerifyResult vr =
            analysis::compareFetches(out_a, out_b);
        EXPECT_TRUE(vr.shapes_match)
            << repro(seed) << " solver=" << budget::solverName(solver);
        EXPECT_EQ(vr.max_abs_diff, 0.0)
            << repro(seed) << " solver=" << budget::solverName(solver)
            << " budget=" << budget_bytes;
    }
}

TEST_P(PassFuzz, TapeMatchesInterpreterBitForBit)
{
    const uint64_t seed = GetParam();
    RandomModel model;
    model.build(seed, 24);
    const FeedDict feed = model.feed(seed * 41 + 11);

    graph::Executor ex(model.fetches, graph::ExecMode::kSerial);
    graph::Tape tape(model.fetches);
    // The plan IS the allocator: arena sized to the pool peak exactly,
    // and the record replay audits clean on any random graph.
    ASSERT_EQ(tape.arenaBytes(), tape.plan().pool_peak_bytes)
        << repro(seed);
    const analysis::AnalysisReport audit = analysis::auditTape(tape);
    ASSERT_TRUE(audit.ok()) << repro(seed) << "\n" << audit.toString();

    for (const int threads : {1, 2, 4}) {
        ThreadPool::setGlobalNumThreads(threads);
        const auto ref = ex.run(feed);
        tape.bindFeeds(feed);
        for (const bool parallel : {false, true}) {
            const auto out = tape.run(parallel);
            const analysis::VerifyResult vr =
                analysis::compareFetches(out, ref);
            EXPECT_TRUE(vr.shapes_match)
                << repro(seed) << " threads=" << threads
                << " parallel=" << parallel;
            // Loss AND every weight gradient, bit for bit: running
            // from the arena may never change a single output bit.
            EXPECT_EQ(vr.max_abs_diff, 0.0)
                << repro(seed) << " threads=" << threads
                << " parallel=" << parallel;
        }
    }
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassFuzz,
                         ::testing::ValuesIn(fuzzSeeds()));

// ---------------------------------------------------------------------
// GEMM schedule fuzz: ANY randomly drawn legal schedule must be
// bit-exact against gemmReference — the property the autotuner's
// correctness rests on (tuning can only change speed, never a bit).
// ---------------------------------------------------------------------

class GemmScheduleFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GemmScheduleFuzz, RandomLegalSchedulesAreBitExact)
{
    const uint64_t seed = GetParam();
    Rng rng(seed * 0x9E3779B9u + 1);
    const int threads = ThreadPool::global().numThreads();
    for (int draw = 0; draw < 8; ++draw) {
        const int64_t m = 1 + static_cast<int64_t>(rng.uniformInt(70));
        const int64_t n = 1 + static_cast<int64_t>(rng.uniformInt(70));
        const int64_t k = 1 + static_cast<int64_t>(rng.uniformInt(70));
        const bool ta = rng.uniformInt(2) != 0;
        const bool tb = rng.uniformInt(2) != 0;
        const ops::GemmSchedule sched =
            tune::randomLegalSchedule(rng, tb, threads);
        ASSERT_TRUE(ops::scheduleLegal(sched, tb))
            << repro(seed) << " " << sched.toString();

        Rng data(seed * 131 + static_cast<uint64_t>(draw));
        const Tensor a = Tensor::uniform(
            ta ? Shape({k, m}) : Shape({m, k}), data);
        const Tensor b = Tensor::uniform(
            tb ? Shape({n, k}) : Shape({k, n}), data);
        const Tensor want = ops::gemmReference(a, ta, b, tb);
        const Tensor got =
            ops::gemmWithSchedule(a, ta, b, tb, 1.0f, sched);
        ASSERT_EQ(want.shape(), got.shape()) << repro(seed);
        ASSERT_EQ(std::memcmp(want.data(), got.data(),
                              static_cast<size_t>(want.shape().bytes())),
                  0)
            << repro(seed) << " " << m << "x" << n << "x" << k
            << (ta ? " T" : " N") << (tb ? "T" : "N") << " schedule "
            << sched.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmScheduleFuzz,
                         ::testing::ValuesIn(fuzzSeeds()));

// ---------------------------------------------------------------------
// Continuous-serving fuzz: randomized mixed word-LM + NMT traffic with
// random arrival jitter, lengths, tiers, deadline budgets, and
// client-side cancellations against the continuous scheduler.  Two
// properties must hold on ANY trace:
//
//  - every served payload is byte-identical to the same request
//    decoded solo through a reference session (arrival order, splice
//    timing, and slot churn are unobservable),
//  - the slot-recycling journal replays clean: leases are exclusive,
//    every splice re-initialized its rows, and every admitted request
//    terminated exactly once (served / cancelled / deadline-expired).
// ---------------------------------------------------------------------

namespace sv = echo::serve;

models::WordLmConfig
fuzzLmConfig()
{
    models::WordLmConfig cfg;
    cfg.vocab = 50;
    cfg.hidden = 8;
    cfg.layers = 2;
    cfg.batch = 4;
    cfg.seq_len = 6;
    return cfg;
}

models::NmtConfig
fuzzNmtConfig()
{
    models::NmtConfig cfg;
    cfg.src_vocab = 40;
    cfg.tgt_vocab = 45;
    cfg.hidden = 8;
    cfg.enc_layers = 1;
    cfg.batch = 3;
    cfg.src_len = 8;
    cfg.tgt_len = 8;
    return cfg;
}

sv::SessionConfig
fuzzSessionConfig()
{
    sv::SessionConfig cfg;
    cfg.slots = 4;
    cfg.buckets = {8};
    cfg.beam_width = 3;
    return cfg;
}

class ServeFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ServeFuzz, ContinuousPayloadsAndJournalSurviveRandomTraffic)
{
    const uint64_t seed = GetParam();
    Rng rng(seed * 0xC0FFEEu + 5);

    Rng lm_init(21), nmt_init(22);
    const models::ParamStore lm_params =
        models::WordLmModel(fuzzLmConfig()).initialParams(lm_init);
    const models::ParamStore nmt_params =
        models::NmtModel(fuzzNmtConfig()).initialParams(nmt_init);

    // Reference sessions: every request decoded solo, in isolation.
    sv::WordLmSession lm_ref(fuzzLmConfig(), lm_params,
                             fuzzSessionConfig());
    sv::NmtSession nmt_ref(fuzzNmtConfig(), nmt_params,
                           fuzzSessionConfig());

    struct Planned
    {
        sv::Request req;
        bool is_nmt = false;
        bool cancel = false;
        int64_t delay_us = 0;
        sv::Response ref;
    };
    const size_t n = 10 + rng.uniformInt(6);
    std::vector<Planned> plan;
    for (size_t i = 0; i < n; ++i) {
        Planned p;
        p.is_nmt = rng.uniformInt(2) != 0;
        p.req.model = p.is_nmt ? "nmt" : "word_lm";
        const size_t len = 1 + rng.uniformInt(7);
        for (size_t t = 0; t < len; ++t)
            p.req.tokens.push_back(
                3 + static_cast<int64_t>(rng.uniformInt(35)));
        if (p.is_nmt) {
            // Mostly greedy lanes; occasionally a beam or zero-budget
            // request, which takes the atomic direct path.
            p.req.max_new_tokens =
                rng.uniformInt(8) == 0
                    ? 0
                    : 1 + static_cast<int64_t>(rng.uniformInt(5));
            p.req.beam_width = rng.uniformInt(5) == 0 ? 2 : 1;
        } else {
            p.req.top_k = 1 + static_cast<int>(rng.uniformInt(5));
        }
        p.req.tier = rng.uniformInt(3) == 0 ? sv::Tier::kInteractive
                                            : sv::Tier::kBatch;
        // Deadline budgets: mostly none, sometimes generous,
        // sometimes hopeless (both outcomes of the race are legal).
        const uint64_t dl = rng.uniformInt(8);
        p.req.deadline_us = dl == 0 ? 1 : dl == 1 ? 50'000 : 0;
        p.cancel = rng.uniformInt(6) == 0;
        p.delay_us = static_cast<int64_t>(rng.uniformInt(200));
        plan.push_back(std::move(p));
    }

    // Solo reference payloads (ids are irrelevant to payload bytes).
    for (Planned &p : plan) {
        sv::MicroBatch mb;
        mb.bucket_len = 8;
        sv::Request copy = p.req;
        copy.id = 0;
        mb.requests.push_back(std::move(copy));
        std::vector<sv::Response> out;
        (p.is_nmt ? static_cast<sv::InferenceSession &>(nmt_ref)
                  : static_cast<sv::InferenceSession &>(lm_ref))
            .runBatch(mb, out);
        ASSERT_EQ(out.size(), 1u) << repro(seed);
        p.ref = out[0];
    }

    std::vector<std::unique_ptr<sv::InferenceSession>> sessions;
    sessions.push_back(std::make_unique<sv::WordLmSession>(
        fuzzLmConfig(), lm_params, fuzzSessionConfig()));
    sessions.push_back(std::make_unique<sv::NmtSession>(
        fuzzNmtConfig(), nmt_params, fuzzSessionConfig()));
    sv::ServerConfig cfg;
    cfg.queue_capacity = 64;
    sv::Server server(std::move(sessions), cfg);

    std::vector<std::future<sv::Response>> futures;
    for (const Planned &p : plan) {
        if (p.delay_us > 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(p.delay_us));
        futures.push_back(server.submit(sv::Request(p.req)));
        if (p.cancel)
            server.cancel(static_cast<int64_t>(futures.size()) - 1);
    }

    int64_t ok_count = 0, cancelled = 0, expired = 0;
    std::vector<int64_t> served_ids;
    for (size_t i = 0; i < futures.size(); ++i) {
        const sv::Response resp = futures[i].get();
        const Planned &p = plan[i];
        if (resp.ok) {
            ++ok_count;
            served_ids.push_back(resp.id);
            EXPECT_EQ(resp.tokens, p.ref.tokens)
                << repro(seed) << " request " << i;
            EXPECT_EQ(resp.scores, p.ref.scores)
                << repro(seed) << " request " << i;
        } else if (resp.reject == sv::RejectReason::kCancelled) {
            ++cancelled;
            EXPECT_TRUE(p.cancel) << repro(seed) << " request " << i;
        } else if (resp.reject == sv::RejectReason::kExpired) {
            ++expired;
            EXPECT_GT(p.req.deadline_us, 0)
                << repro(seed) << " request " << i;
        } else {
            ADD_FAILURE() << repro(seed) << " request " << i
                          << " resolved "
                          << sv::rejectReasonName(resp.reject);
        }
    }
    server.stop();

    // Every admitted request terminated exactly once.
    const sv::ServerStats stats = server.stats();
    EXPECT_EQ(stats.accepted, static_cast<int64_t>(n)) << repro(seed);
    EXPECT_EQ(stats.completed, ok_count) << repro(seed);
    EXPECT_EQ(stats.cancelled, cancelled) << repro(seed);
    EXPECT_EQ(stats.expired, expired) << repro(seed);
    EXPECT_EQ(stats.completed + stats.cancelled + stats.expired,
              stats.accepted)
        << repro(seed);
    EXPECT_EQ(stats.wait_count, stats.completed) << repro(seed);

    // Journal replay: exclusive leases, re-initialized splices,
    // exactly-once termination for every occupant.
    const std::vector<analysis::SlotLease> journal =
        server.leaseJournal();
    const analysis::AnalysisReport report =
        analysis::auditSlotRecycling(journal, server.journalSlots());
    EXPECT_TRUE(report.ok()) << repro(seed) << "\n" << report.toString();

    // A served payload means exactly one lease, closed as kServed.
    std::map<int64_t, std::vector<const analysis::SlotLease *>> by_id;
    for (const analysis::SlotLease &l : journal)
        by_id[l.request_id].push_back(&l);
    for (int64_t id : served_ids) {
        ASSERT_EQ(by_id.count(id), 1u) << repro(seed) << " id " << id;
        ASSERT_EQ(by_id[id].size(), 1u) << repro(seed) << " id " << id;
        EXPECT_EQ(static_cast<int>(by_id[id][0]->status),
                  static_cast<int>(analysis::LeaseStatus::kServed))
            << repro(seed) << " id " << id;
        EXPECT_EQ(by_id[id][0]->reinit, 1) << repro(seed);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeFuzz,
                         ::testing::ValuesIn(fuzzSeeds()));

} // namespace
} // namespace echo::pass
