/**
 * @file
 * Tests for the budget-targeted recomputation planner (src/budget):
 * byte-size parsing, joint full-charge accounting (shared stash values
 * paid once), DP-equals-brute-force optimality on graphs small enough
 * to enumerate every candidate subset, the DP-never-worse-than-greedy
 * guarantee, infeasible-budget diagnostics (binding buffers, untouched
 * graph), feasible end-to-end planning cross-checked by the real memory
 * planner and the obs timeline replay, byte-identical training outputs
 * with budget planning on vs off across thread counts, and the
 * `plan,recompute_budget(...)` pipeline establishing plan-feasible.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "budget/items.h"
#include "budget/planner.h"
#include "budget/solvers.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "analysis/numeric_verify.h"
#include "graph/autodiff.h"
#include "graph/executor.h"
#include "graph/ops/oplib.h"
#include "memory/liveness.h"
#include "memory/planner.h"
#include "pass/builtin_passes.h"
#include "pass/pass_manager.h"

namespace echo::budget {
namespace {

namespace ol = graph::oplib;
using graph::FeedDict;
using graph::Graph;
using graph::Val;

/**
 * The same miniature attention decoder the Echo pass tests use: per
 * step an O-shape scoring region (broadcast + layernorm + tanh +
 * v-dot) between GEMM projections, with the key projection shared by
 * every step — the structure that makes joint (full-charge) pricing
 * differ from standalone pricing.
 */
struct ToyBudgetModel
{
    std::unique_ptr<Graph> g = std::make_unique<Graph>();
    Val hs, q0, labels;
    Val wk, wq, wo, v;
    Val loss;
    std::vector<Val> fetches;
    std::vector<Val> weight_grads;
    int64_t batch = 0, steps = 0, hidden = 0;

    void
    build(int64_t b, int64_t t, int64_t h, bool backward = true)
    {
        batch = b;
        steps = t;
        hidden = h;
        hs = g->placeholder(Shape({b, t, h}), "encoder_states");
        q0 = g->placeholder(Shape({b, h}), "q0");
        labels = g->placeholder(Shape({b}), "labels");
        wk = g->weight(Shape({h, h}), "wk");
        wq = g->weight(Shape({h, h}), "wq");
        wo = g->weight(Shape({h, h}), "wo");
        v = g->weight(Shape({h}), "v");

        Val proj_k;
        {
            graph::TagScope tag(*g, "encoder");
            Val flat = g->apply1(ol::reshape(Shape({b * t, h})), {hs});
            Val pk = g->apply1(ol::gemm(false, true), {flat, wk});
            proj_k = g->apply1(ol::reshape(Shape({b, t, h})), {pk});
        }

        Val cur = q0;
        for (int64_t step = 0; step < t; ++step) {
            g->setTimeStep(static_cast<int>(step));
            Val ctx;
            {
                graph::TagScope tag(*g, "attention");
                Val q = g->apply1(ol::gemm(false, true), {cur, wq});
                Val e = g->apply1(ol::broadcastAddBT(), {proj_k, q});
                Val ln = g->apply(ol::layerNorm(), {e})[0];
                Val th = g->apply1(ol::tanhOp(), {ln});
                Val scores = g->apply1(ol::dotLastAxis(), {th, v});
                Val alpha = g->apply1(ol::softmax(), {scores});
                Val alpha3 =
                    g->apply1(ol::reshape(Shape({b, 1, t})), {alpha});
                Val c3 = g->apply1(ol::bmm(false, false),
                                   {alpha3, proj_k});
                Val c2 = g->apply1(ol::reshape(Shape({b, h})), {c3});
                ctx = g->apply1(ol::add(), {c2, q});
            }
            {
                graph::TagScope tag(*g, "decoder");
                cur = g->apply1(
                    ol::tanhOp(),
                    {g->apply1(ol::gemm(false, true), {ctx, wo})});
            }
        }
        g->setTimeStep(-1);

        {
            graph::TagScope tag(*g, "output");
            loss = g->apply1(ol::crossEntropyLoss(), {cur, labels});
        }
        if (!backward)
            return;
        auto gr = graph::backward(*g, loss, {wk, wq, wo, v});
        weight_grads = gr.weight_grads;
        fetches = {loss};
        fetches.insert(fetches.end(), weight_grads.begin(),
                       weight_grads.end());
    }

    FeedDict
    feed(uint64_t seed) const
    {
        Rng rng(seed);
        FeedDict f;
        f[hs.node] = Tensor::uniform(Shape({batch, steps, hidden}), rng,
                                     -1.0f, 1.0f);
        f[q0.node] =
            Tensor::uniform(Shape({batch, hidden}), rng, -1.0f, 1.0f);
        Tensor lab(Shape({batch}));
        for (int64_t i = 0; i < batch; ++i)
            lab.at(i) = static_cast<float>(
                rng.uniformInt(static_cast<uint64_t>(hidden)));
        f[labels.node] = lab;
        f[wk.node] = Tensor::uniform(Shape({hidden, hidden}), rng,
                                     -0.3f, 0.3f);
        f[wq.node] = Tensor::uniform(Shape({hidden, hidden}), rng,
                                     -0.3f, 0.3f);
        f[wo.node] = Tensor::uniform(Shape({hidden, hidden}), rng,
                                     -0.3f, 0.3f);
        f[v.node] =
            Tensor::uniform(Shape({hidden}), rng, -0.3f, 0.3f);
        return f;
    }
};

int64_t
poolPeakOf(const ToyBudgetModel &m)
{
    const memory::LivenessResult live =
        memory::analyzeLiveness(m.fetches, m.weight_grads);
    return memory::planMemory(live).pool_peak_bytes;
}

/** Replay sums accumulate in solver-specific orders. */
bool
replayNear(double a, double b)
{
    const double tol =
        1e-6 * std::max({1.0, std::fabs(a), std::fabs(b)});
    return std::fabs(a - b) <= tol;
}

// ---------------------------------------------------------------------
// Byte-size parsing / formatting
// ---------------------------------------------------------------------

TEST(ParseByteSize, UnitsAndMalformedInputs)
{
    int64_t bytes = 0;
    EXPECT_TRUE(parseByteSize("268435456", &bytes));
    EXPECT_EQ(bytes, 268435456);
    EXPECT_TRUE(parseByteSize("256KiB", &bytes));
    EXPECT_EQ(bytes, 256 * 1024);
    EXPECT_TRUE(parseByteSize("256kb", &bytes));
    EXPECT_EQ(bytes, 256 * 1024);
    EXPECT_TRUE(parseByteSize("2MiB", &bytes));
    EXPECT_EQ(bytes, 2 * 1024 * 1024);
    EXPECT_TRUE(parseByteSize("1.5GiB", &bytes));
    EXPECT_EQ(bytes, (3ll * 1024 * 1024 * 1024) / 2);
    EXPECT_TRUE(parseByteSize("64 K", &bytes));
    EXPECT_EQ(bytes, 64 * 1024);
    EXPECT_FALSE(parseByteSize("", &bytes));
    EXPECT_FALSE(parseByteSize("tiny", &bytes));
    EXPECT_FALSE(parseByteSize("12XB", &bytes));
    EXPECT_FALSE(parseByteSize("-4K", &bytes));
}

TEST(ParseByteSize, SolverNamesRoundTrip)
{
    for (Solver s : {Solver::kGreedy, Solver::kChainDp,
                     Solver::kLagrange}) {
        Solver parsed;
        ASSERT_TRUE(parseSolver(solverName(s), &parsed));
        EXPECT_EQ(parsed, s);
    }
    Solver ignored;
    EXPECT_FALSE(parseSolver("simplex", &ignored));
}

// ---------------------------------------------------------------------
// Joint full-charge accounting
// ---------------------------------------------------------------------

TEST(JointCost, SharedStashValuesChargedOnce)
{
    ToyBudgetModel m;
    m.build(2, 3, 8);
    const ItemSet items = enumerateItems(m.fetches, {});
    ASSERT_GE(items.items.size(), 4u);

    // Some pair of items must share a stashed frontier value (the key
    // projection feeds every attention step), making the joint added
    // bytes strictly subadditive.
    bool found_subadditive = false;
    const int n = static_cast<int>(items.items.size());
    for (int i = 0; i < n && !found_subadditive; ++i) {
        for (int j = i + 1; j < n && !found_subadditive; ++j) {
            const pass::SetCost a = costOf(items, {i});
            const pass::SetCost b = costOf(items, {j});
            const pass::SetCost ab = costOf(items, {i, j});
            EXPECT_LE(ab.bytes_added, a.bytes_added + b.bytes_added);
            if (ab.bytes_added < a.bytes_added + b.bytes_added)
                found_subadditive = true;
        }
    }
    EXPECT_TRUE(found_subadditive)
        << "no item pair shares a stash value — the toy model no "
           "longer exercises joint pricing";
}

TEST(JointCost, MaxReductionSetBeatsEverySoloItem)
{
    ToyBudgetModel m;
    m.build(2, 3, 8);
    const ItemSet items = enumerateItems(m.fetches, {});
    const SolveResult probe = maxReductionSet(items);
    EXPECT_GT(probe.cost.netSavings(), 0);
    for (const Item &item : items.items)
        EXPECT_GE(probe.cost.netSavings(), item.soloNet());
    EXPECT_EQ(costOf(items, probe.chosen).netSavings(),
              probe.cost.netSavings())
        << "solver-tracked joint cost must match a fresh evaluation";
}

// ---------------------------------------------------------------------
// DP optimality: exhaustive enumeration over all candidate subsets
// ---------------------------------------------------------------------

struct BruteForce
{
    double best_replay = std::numeric_limits<double>::infinity();
    int64_t best_net = std::numeric_limits<int64_t>::min();
    bool reachable = false;
};

/** The true optimum: cheapest replay over ALL subsets with net >= R
 *  (and the maximum achievable net for unreachable targets). */
BruteForce
bruteForce(const ItemSet &items, int64_t required)
{
    const int n = static_cast<int>(items.items.size());
    BruteForce bf;
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
        std::vector<int> chosen;
        for (int i = 0; i < n; ++i)
            if (mask & (1u << i))
                chosen.push_back(i);
        const pass::SetCost cost = costOf(items, chosen);
        bf.best_net = std::max(bf.best_net, cost.netSavings());
        if (cost.netSavings() >= required) {
            bf.reachable = true;
            bf.best_replay =
                std::min(bf.best_replay, cost.replay_time_us);
        }
    }
    return bf;
}

TEST(ChainDp, MatchesBruteForceOverAllSubsets)
{
    ToyBudgetModel m;
    m.build(2, 2, 8);
    const ItemSet items = enumerateItems(m.fetches, {});
    ASSERT_LE(items.items.size(), 18u)
        << "toy model grew past brute-force range";

    const SolveResult probe = maxReductionSet(items);
    const int64_t max_net = probe.cost.netSavings();
    ASSERT_GT(max_net, 0);

    for (const int64_t required :
         {int64_t{1}, max_net / 4, max_net / 2, (3 * max_net) / 4,
          max_net, max_net + 64}) {
        const BruteForce bf = bruteForce(items, required);
        const SolveResult dp = solveChainDp(items, required);
        EXPECT_TRUE(dp.exact);
        ASSERT_EQ(dp.reached, bf.reachable) << "required " << required;
        // The solver's own accounting must agree with a fresh joint
        // evaluation of what it chose.
        const pass::SetCost fresh = costOf(items, dp.chosen);
        EXPECT_EQ(fresh.netSavings(), dp.cost.netSavings());
        EXPECT_TRUE(
            replayNear(fresh.replay_time_us, dp.cost.replay_time_us));
        if (bf.reachable) {
            EXPECT_GE(dp.cost.netSavings(), required);
            EXPECT_TRUE(replayNear(dp.cost.replay_time_us,
                                   bf.best_replay))
                << "required " << required << ": DP replay "
                << dp.cost.replay_time_us << " us vs brute-force "
                << bf.best_replay << " us";
        } else {
            EXPECT_EQ(dp.cost.netSavings(), bf.best_net)
                << "unreachable target must fall back to the maximum "
                   "achievable reduction";
        }
    }
}

TEST(ChainDp, NeverWorseThanGreedy)
{
    ToyBudgetModel m;
    m.build(4, 6, 32);
    const ItemSet items = enumerateItems(m.fetches, {});
    const int64_t max_net = maxReductionSet(items).cost.netSavings();
    ASSERT_GT(max_net, 0);

    for (int pct = 10; pct <= 100; pct += 10) {
        const int64_t required = (max_net * pct) / 100;
        const SolveResult greedy = solveGreedy(items, required);
        const SolveResult dp = solveChainDp(items, required);
        EXPECT_EQ(dp.reached, greedy.reached || dp.reached)
            << "DP must reach every target greedy reaches (pct "
            << pct << ")";
        if (greedy.reached && dp.reached) {
            EXPECT_LE(dp.cost.replay_time_us,
                      greedy.cost.replay_time_us + 1e-6)
                << "pct " << pct;
        }
    }
}

// ---------------------------------------------------------------------
// planWithBudget end to end
// ---------------------------------------------------------------------

TEST(BudgetPlanner, BaselineFitsWithoutRewriting)
{
    ToyBudgetModel m;
    m.build(4, 6, 32);
    const size_t nodes_before = m.g->numNodes();
    BudgetConfig config;
    config.budget_bytes = poolPeakOf(m);
    const BudgetPlan plan = planWithBudget(*m.g, m.fetches,
                                           m.weight_grads, config);
    EXPECT_TRUE(plan.feasible);
    EXPECT_FALSE(plan.applied);
    EXPECT_EQ(plan.planned_pool_peak, plan.baseline_pool_peak);
    EXPECT_TRUE(plan.replay_ok);
    EXPECT_EQ(m.g->numNodes(), nodes_before);
}

TEST(BudgetPlanner, InfeasibleBudgetDiagnosesAndLeavesGraphUntouched)
{
    ToyBudgetModel m;
    m.build(4, 6, 32);
    const size_t nodes_before = m.g->numNodes();
    BudgetConfig config;
    config.budget_bytes = 1024; // far below the tightest peak
    const BudgetPlan plan = planWithBudget(*m.g, m.fetches,
                                           m.weight_grads, config);
    EXPECT_FALSE(plan.feasible);
    EXPECT_FALSE(plan.applied);
    EXPECT_GT(plan.tightest_pool_peak, config.budget_bytes);
    EXPECT_LT(plan.tightest_pool_peak, plan.baseline_pool_peak);
    EXPECT_NE(plan.note.find("infeasible"), std::string::npos)
        << plan.note;
    // The graph is untouched and still bit-identically runnable.
    EXPECT_EQ(m.g->numNodes(), nodes_before);
    // The diagnostics name the binding buffers holding the peak up.
    ASSERT_FALSE(plan.binding.empty());
    int64_t prev = std::numeric_limits<int64_t>::max();
    for (const BindingBuffer &b : plan.binding) {
        EXPECT_FALSE(b.name.empty());
        EXPECT_GT(b.bytes, 0);
        EXPECT_LE(b.def_pos, b.last_use_pos);
        EXPECT_LE(b.bytes, prev) << "binding buffers must be sorted "
                                    "by descending size";
        prev = b.bytes;
    }
}

TEST(BudgetPlanner, FeasibleBudgetFitsAndTimelineReplays)
{
    // Learn the achievable range from a sacrificial copy...
    int64_t tightest = 0, baseline = 0;
    {
        ToyBudgetModel probe;
        probe.build(4, 6, 32);
        BudgetConfig config;
        config.budget_bytes = 1024;
        const BudgetPlan p = planWithBudget(*probe.g, probe.fetches,
                                            probe.weight_grads, config);
        tightest = p.tightest_pool_peak;
        baseline = p.baseline_pool_peak;
        ASSERT_LT(tightest, baseline);
    }

    // ...then plan a fresh model at the midpoint.
    ToyBudgetModel m;
    m.build(4, 6, 32);
    BudgetConfig config;
    config.budget_bytes = (tightest + baseline) / 2;
    const BudgetPlan plan = planWithBudget(*m.g, m.fetches,
                                           m.weight_grads, config);
    EXPECT_TRUE(plan.feasible);
    EXPECT_TRUE(plan.applied);
    EXPECT_LE(plan.planned_pool_peak, config.budget_bytes);
    EXPECT_GT(plan.pass.num_regions, 0);
    // The planner's record must match an independent re-plan, and the
    // obs timeline replay must agree with both.
    EXPECT_EQ(plan.planned_pool_peak, poolPeakOf(m));
    EXPECT_TRUE(plan.replay_ok);
    EXPECT_EQ(plan.replay.address_peak_bytes, plan.planned_pool_peak);
}

TEST(BudgetPlanner, ByteIdenticalOutputsOnVsOffAcrossThreads)
{
    ToyBudgetModel baseline, planned;
    baseline.build(2, 3, 8);
    planned.build(2, 3, 8);

    BudgetConfig config;
    // Any budget below baseline that the planner can meet: aim just
    // above the tightest achievable peak.
    {
        ToyBudgetModel probe;
        probe.build(2, 3, 8);
        BudgetConfig tiny;
        tiny.budget_bytes = 512;
        const BudgetPlan p = planWithBudget(*probe.g, probe.fetches,
                                            probe.weight_grads, tiny);
        config.budget_bytes =
            std::max(p.tightest_pool_peak, p.baseline_pool_peak - 256);
    }
    const BudgetPlan plan = planWithBudget(
        *planned.g, planned.fetches, planned.weight_grads, config);
    ASSERT_TRUE(plan.feasible);
    ASSERT_TRUE(plan.applied);

    for (const int threads : {1, 2, 4}) {
        ThreadPool::setGlobalNumThreads(threads);
        graph::Executor ex_base(baseline.fetches);
        graph::Executor ex_plan(planned.fetches);
        const auto out_base = ex_base.run(baseline.feed(7));
        const auto out_plan = ex_plan.run(planned.feed(7));
        const analysis::VerifyResult vr =
            analysis::compareFetches(out_base, out_plan);
        EXPECT_TRUE(vr.identical())
            << threads << " thread(s): max abs diff "
            << vr.max_abs_diff;
    }
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}

// ---------------------------------------------------------------------
// The registered pass: autodiff,plan,recompute_budget(...)
// ---------------------------------------------------------------------

TEST(BudgetPass, PipelineEstablishesPlanFeasible)
{
    // Size the budget from a sacrificial fully-built copy.
    int64_t budget = 0;
    {
        ToyBudgetModel probe;
        probe.build(4, 6, 32);
        BudgetConfig tiny;
        tiny.budget_bytes = 1024;
        const BudgetPlan p = planWithBudget(*probe.g, probe.fetches,
                                            probe.weight_grads, tiny);
        budget = (p.tightest_pool_peak + p.baseline_pool_peak) / 2;
    }

    ToyBudgetModel m;
    m.build(4, 6, 32, /*backward=*/false);
    pass::PipelineContext ctx(*m.g);
    ctx.loss = m.loss;
    ctx.wrt = {m.wk, m.wq, m.wo, m.v};

    const std::string spec = "autodiff,plan,recompute_budget(bytes=" +
                             std::to_string(budget) + ":solver=dp)";
    pass::PassManager pm = pass::buildPipeline(spec);
    EXPECT_TRUE(pm.validate(ctx.initialInvariants()).empty());
    const pass::PipelineReport report = pm.run(ctx);
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_TRUE(ctx.holds.count(pass::Invariant::kPlanFeasible));
    EXPECT_TRUE(ctx.has_budget_plan);
    EXPECT_TRUE(ctx.budget_plan.feasible);
    EXPECT_LE(ctx.plan.pool_peak_bytes, budget);
}

} // namespace
} // namespace echo::budget
