/**
 * @file
 * Edge cases and error paths: the fatal()/panic() discipline on invalid
 * arguments, boundary shapes, and small API contracts not covered by
 * the per-module suites.
 */
#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/table.h"
#include "data/vocab.h"
#include "graph/executor.h"
#include "graph/ops/oplib.h"
#include "gpusim/gpu_spec.h"
#include "layout/layout_optimizer.h"
#include "rnn/rnn_config.h"
#include "tensor/ops.h"

namespace echo {
namespace {

namespace ol = graph::oplib;

// ----------------------------------------------------------------------
// Shapes & tensors
// ----------------------------------------------------------------------

TEST(EdgeShape, NegativeDimensionIsFatal)
{
    EXPECT_EXIT({ Shape s({2, -1}); (void)s; },
                ::testing::ExitedWithCode(1), "negative dimension");
}

TEST(EdgeShape, ScalarShapeNumelIsOne)
{
    Shape s{};
    EXPECT_EQ(s.ndim(), 0);
    EXPECT_EQ(s.numel(), 1);
}

TEST(EdgeShape, ZeroExtentGivesZeroNumel)
{
    Shape s({4, 0, 2});
    EXPECT_EQ(s.numel(), 0);
    EXPECT_EQ(s.bytes(), 0);
}

TEST(EdgeTensor, ReshapeElementCountMismatchIsFatal)
{
    Tensor t = Tensor::zeros(Shape({2, 3}));
    EXPECT_EXIT({ t.reshape(Shape({7})); },
                ::testing::ExitedWithCode(1), "changes element count");
}

TEST(EdgeTensor, WrongValueCountIsFatal)
{
    EXPECT_EXIT({ Tensor t(Shape({3}), {1.0f, 2.0f}); (void)t; },
                ::testing::ExitedWithCode(1), "value count");
}

// ----------------------------------------------------------------------
// Tensor ops
// ----------------------------------------------------------------------

TEST(EdgeOps, GemmRejectsNonMatrices)
{
    Tensor a = Tensor::zeros(Shape({2, 3, 4}));
    Tensor b = Tensor::zeros(Shape({4, 5}));
    EXPECT_EXIT({ ops::gemm(a, false, b, false); },
                ::testing::ExitedWithCode(1), "2-D operands");
}

TEST(EdgeOps, SliceOutOfRangeIsFatal)
{
    Tensor a = Tensor::zeros(Shape({2, 3}));
    EXPECT_EXIT({ ops::slice(a, 1, 2, 5); },
                ::testing::ExitedWithCode(1), "slice range");
}

TEST(EdgeOps, ConcatExtentMismatchIsFatal)
{
    Tensor a = Tensor::zeros(Shape({2, 3}));
    Tensor b = Tensor::zeros(Shape({3, 3}));
    EXPECT_EXIT({ ops::concat({a, b}, 1); },
                ::testing::ExitedWithCode(1), "extent mismatch");
}

TEST(EdgeOps, EmbeddingOutOfVocabIsFatal)
{
    Tensor table = Tensor::zeros(Shape({4, 2}));
    Tensor ids(Shape({1}), {9.0f});
    EXPECT_EXIT({ ops::embeddingLookup(table, ids); },
                ::testing::ExitedWithCode(1), "out of vocab");
}

TEST(EdgeOps, CrossEntropyLabelOutOfVocabIsFatal)
{
    Tensor logits = Tensor::zeros(Shape({1, 3}));
    Tensor labels(Shape({1}), {5.0f});
    EXPECT_EXIT({ ops::crossEntropy(logits, labels); },
                ::testing::ExitedWithCode(1), "out of vocab");
}

TEST(EdgeOps, SoftmaxOnSingleColumnIsOne)
{
    Tensor x(Shape({3, 1}), {-4.0f, 0.0f, 7.0f});
    Tensor y = ops::softmaxLastAxis(x);
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(y.at(i), 1.0f);
}

TEST(EdgeOps, ReverseLengthOneIsIdentity)
{
    Tensor a(Shape({1, 2, 2}), {1, 2, 3, 4});
    Tensor r = ops::reverseAxis(a, 0);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(r.at(i), a.at(i));
}

// ----------------------------------------------------------------------
// Graph & executor
// ----------------------------------------------------------------------

TEST(EdgeGraph, Apply1OnMultiOutputOpPanics)
{
    graph::Graph g;
    graph::Val x = g.placeholder(Shape({2, 4}), "x");
    EXPECT_DEATH({ g.apply1(ol::layerNorm(), {x}); },
                 "apply1 on multi-output op");
}

TEST(EdgeGraph, ExecutorRejectsWrongFeedShape)
{
    graph::Graph g;
    graph::Val x = g.placeholder(Shape({2, 2}), "x");
    graph::Val y = g.apply1(ol::tanhOp(), {x});
    graph::Executor ex({y});
    graph::FeedDict feed;
    feed[x.node] = Tensor::zeros(Shape({3, 3}));
    EXPECT_EXIT({ ex.run(feed); }, ::testing::ExitedWithCode(1),
                "has shape");
}

TEST(EdgeGraph, GemmShapeInferenceMismatchIsFatal)
{
    graph::Graph g;
    graph::Val a = g.placeholder(Shape({2, 3}), "a");
    graph::Val b = g.placeholder(Shape({5, 7}), "b");
    EXPECT_EXIT({ g.apply1(ol::gemm(false, false), {a, b}); },
                ::testing::ExitedWithCode(1), "inner dim mismatch");
}

// ----------------------------------------------------------------------
// RNG / tables / presets
// ----------------------------------------------------------------------

TEST(EdgeRng, UniformIntOfOneIsAlwaysZero)
{
    Rng rng(2);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(EdgeRng, ZipfSupportOneIsAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(rng.zipf(1), 0u);
}

TEST(EdgeRng, ZipfCacheHandlesChangingSupport)
{
    Rng rng(4);
    EXPECT_LT(rng.zipf(10), 10u);
    EXPECT_LT(rng.zipf(1000), 1000u);
    EXPECT_LT(rng.zipf(10), 10u);
}

TEST(EdgeTable, RowArityMismatchIsFatal)
{
    Table t({"a", "b"});
    EXPECT_EXIT({ t.addRow({"only-one"}); },
                ::testing::ExitedWithCode(1), "cells");
}

TEST(EdgeVocab, PresetsMatchDatasetStatistics)
{
    EXPECT_EQ(data::Vocab::ptb().size, 10000);
    EXPECT_EQ(data::Vocab::wikitext2().size, 33278);
    EXPECT_EQ(data::Vocab::iwslt15En().size, 17191);
    EXPECT_EQ(data::Vocab::iwslt15Vi().size, 7709);
    EXPECT_EQ(data::Vocab::kPad, 0);
    EXPECT_GT(data::Vocab::ptb().numWords(), 9000);
}

TEST(EdgeLayout, TinyBatchStillDecides)
{
    rnn::LstmSpec spec;
    spec.input_size = 32;
    spec.hidden = 32;
    spec.layers = 1;
    spec.batch = 1;
    spec.seq_len = 4;
    const auto d =
        layout::chooseLayout(spec, gpusim::GpuSpec::titanXp());
    EXPECT_GT(d.tbh_time_us, 0.0);
    EXPECT_GT(d.thb_time_us, 0.0);
}

TEST(EdgeGpu, MemoryCapacitiesMatchDatasheets)
{
    EXPECT_EQ(gpusim::GpuSpec::titanXp().mem_capacity_bytes,
              12ll << 30);
    EXPECT_EQ(gpusim::GpuSpec::rtx2080Ti().mem_capacity_bytes,
              11ll << 30);
}

} // namespace
} // namespace echo
