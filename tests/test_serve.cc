/**
 * @file
 * Tests for the inference-serving subsystem: request queue admission,
 * dynamic batching, session decoding, the server round trip, the
 * batch-composition / thread-count determinism contract, and the
 * workspace-slot journal.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "analysis/hazards.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "models/nmt.h"
#include "models/serialize.h"
#include "models/word_lm.h"
#include "serve/batcher.h"
#include "serve/beam.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "serve/session.h"

namespace echo {
namespace {

using namespace echo::serve;

Request
makeRequest(std::vector<int64_t> tokens, int64_t id = -1)
{
    Request r;
    r.id = id;
    r.tokens = std::move(tokens);
    return r;
}

// ------------------------------------------------------------- queue --

TEST(RequestQueue, FifoWithinCapacity)
{
    RequestQueue q(3);
    EXPECT_EQ(q.tryPush(makeRequest({1}, 10)), RejectReason::kNone);
    EXPECT_EQ(q.tryPush(makeRequest({2}, 11)), RejectReason::kNone);
    EXPECT_EQ(q.size(), 2u);

    Request out;
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(out.id, 10);
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(out.id, 11);
    EXPECT_FALSE(q.tryPop(out));
}

TEST(RequestQueue, RejectsWhenFull)
{
    RequestQueue q(2);
    EXPECT_EQ(q.tryPush(makeRequest({1})), RejectReason::kNone);
    EXPECT_EQ(q.tryPush(makeRequest({2})), RejectReason::kNone);
    EXPECT_EQ(q.tryPush(makeRequest({3})), RejectReason::kQueueFull);
    // Popping frees a slot again.
    Request out;
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(q.tryPush(makeRequest({4})), RejectReason::kNone);
}

TEST(RequestQueue, CloseRejectsNewButDrainsAdmitted)
{
    RequestQueue q(4);
    EXPECT_EQ(q.tryPush(makeRequest({1}, 7)), RejectReason::kNone);
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_EQ(q.tryPush(makeRequest({2})), RejectReason::kShutdown);

    Request out;
    EXPECT_TRUE(q.pop(out)); // admitted before close: still served
    EXPECT_EQ(out.id, 7);
    EXPECT_FALSE(q.pop(out)); // closed and drained
    q.close();                // idempotent
}

TEST(RequestQueue, PopBlocksUntilPush)
{
    RequestQueue q(4);
    std::promise<int64_t> got;
    std::thread consumer([&] {
        Request out;
        ASSERT_TRUE(q.pop(out));
        got.set_value(out.id);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(q.tryPush(makeRequest({1}, 99)), RejectReason::kNone);
    EXPECT_EQ(got.get_future().get(), 99);
    consumer.join();
}

TEST(RequestQueue, RejectReasonNamesAreStable)
{
    EXPECT_STREQ(rejectReasonName(RejectReason::kQueueFull),
                 "queue-full");
    EXPECT_STREQ(rejectReasonName(RejectReason::kTooLong), "too-long");
    EXPECT_STREQ(rejectReasonName(RejectReason::kShutdown), "shutdown");
}

// ----------------------------------------------------------- batcher --

TEST(Batcher, BucketForLengthPicksSmallestFit)
{
    const std::vector<int64_t> buckets{8, 16, 32};
    EXPECT_EQ(bucketForLength(buckets, 1), 8);
    EXPECT_EQ(bucketForLength(buckets, 8), 8);
    EXPECT_EQ(bucketForLength(buckets, 9), 16);
    EXPECT_EQ(bucketForLength(buckets, 32), 32);
    EXPECT_EQ(bucketForLength(buckets, 33), -1);
}

TEST(Batcher, EmitsFullBatchImmediately)
{
    RequestQueue q(16);
    BatcherConfig cfg;
    cfg.max_batch = 3;
    cfg.max_wait = std::chrono::microseconds(60'000'000); // never expire
    cfg.buckets = {8};
    for (int64_t i = 0; i < 4; ++i) {
        Request r = makeRequest({1, 2, 3}, i);
        r.enqueued_at = std::chrono::steady_clock::now();
        ASSERT_EQ(q.tryPush(std::move(r)), RejectReason::kNone);
    }
    q.close();

    DynamicBatcher batcher(cfg, q);
    MicroBatch mb;
    ASSERT_TRUE(batcher.next(mb));
    EXPECT_EQ(mb.bucket_len, 8);
    ASSERT_EQ(mb.requests.size(), 3u); // capped at max_batch
    EXPECT_EQ(mb.requests[0].id, 0);
    EXPECT_EQ(mb.requests[2].id, 2);

    ASSERT_TRUE(batcher.next(mb)); // closed queue: remainder flushes
    ASSERT_EQ(mb.requests.size(), 1u);
    EXPECT_EQ(mb.requests[0].id, 3);
    EXPECT_FALSE(batcher.next(mb));
}

TEST(Batcher, GroupsByLengthBucket)
{
    RequestQueue q(16);
    BatcherConfig cfg;
    cfg.max_batch = 4;
    cfg.buckets = {8, 16};
    // Interleaved short/long requests: batches must not mix buckets.
    for (int64_t i = 0; i < 4; ++i) {
        Request r = makeRequest(
            std::vector<int64_t>(i % 2 == 0 ? 3 : 12, 5), i);
        r.enqueued_at = std::chrono::steady_clock::now();
        ASSERT_EQ(q.tryPush(std::move(r)), RejectReason::kNone);
    }
    q.close();

    DynamicBatcher batcher(cfg, q);
    MicroBatch mb;
    int total = 0;
    while (batcher.next(mb)) {
        ASSERT_FALSE(mb.requests.empty());
        for (const Request &r : mb.requests)
            EXPECT_EQ(bucketForLength(cfg.buckets,
                                      static_cast<int64_t>(
                                          r.tokens.size())),
                      mb.bucket_len);
        total += static_cast<int>(mb.requests.size());
    }
    EXPECT_EQ(total, 4);
}

TEST(Batcher, DeadlineFlushesPartialBatch)
{
    RequestQueue q(16);
    BatcherConfig cfg;
    cfg.max_batch = 8;
    cfg.max_wait = std::chrono::microseconds(1000);
    cfg.buckets = {8};
    Request r = makeRequest({4, 5}, 42);
    r.enqueued_at = std::chrono::steady_clock::now();
    ASSERT_EQ(q.tryPush(std::move(r)), RejectReason::kNone);

    DynamicBatcher batcher(cfg, q);
    MicroBatch mb;
    ASSERT_TRUE(batcher.next(mb)); // emitted at deadline, not blocked
    ASSERT_EQ(mb.requests.size(), 1u);
    EXPECT_EQ(mb.requests[0].id, 42);
    q.close();
    EXPECT_FALSE(batcher.next(mb));
}

// ----------------------------------------------------------- session --

models::WordLmConfig
tinyLmConfig()
{
    models::WordLmConfig cfg;
    cfg.vocab = 50;
    cfg.hidden = 8;
    cfg.layers = 2;
    cfg.batch = 4;
    cfg.seq_len = 6;
    return cfg;
}

models::NmtConfig
tinyNmtConfig()
{
    models::NmtConfig cfg;
    cfg.src_vocab = 40;
    cfg.tgt_vocab = 45;
    cfg.hidden = 8;
    cfg.enc_layers = 1;
    cfg.batch = 3;
    cfg.src_len = 8;
    cfg.tgt_len = 8;
    return cfg;
}

models::ParamStore
tinyLmParams()
{
    models::WordLmModel model(tinyLmConfig());
    Rng rng(21);
    return model.initialParams(rng);
}

models::ParamStore
tinyNmtParams()
{
    models::NmtModel model(tinyNmtConfig());
    Rng rng(22);
    return model.initialParams(rng);
}

SessionConfig
smallSessionConfig()
{
    SessionConfig cfg;
    cfg.slots = 8;
    cfg.buckets = {8};
    cfg.beam_width = 3;
    return cfg;
}

TEST(Session, FromCheckpointInfersWordLm)
{
    const std::string path =
        ::testing::TempDir() + "echo_serve_lm.ckpt";
    models::saveParams(tinyLmParams(), path);

    auto session =
        InferenceSession::fromCheckpoint(path, smallSessionConfig());
    EXPECT_STREQ(session->kind(), "word_lm");
    EXPECT_EQ(session->maxLength(), 8);
    EXPECT_NE(session->describe().find("vocab=50"), std::string::npos);

    const auto *lm = dynamic_cast<WordLmSession *>(session.get());
    ASSERT_NE(lm, nullptr);
    EXPECT_EQ(lm->modelConfig().hidden, 8);
    EXPECT_EQ(lm->modelConfig().layers, 2);
}

TEST(Session, FromCheckpointInfersNmt)
{
    const std::string path =
        ::testing::TempDir() + "echo_serve_nmt.ckpt";
    models::saveParams(tinyNmtParams(), path);

    auto session =
        InferenceSession::fromCheckpoint(path, smallSessionConfig());
    EXPECT_STREQ(session->kind(), "nmt");

    const auto *nmt = dynamic_cast<NmtSession *>(session.get());
    ASSERT_NE(nmt, nullptr);
    EXPECT_EQ(nmt->modelConfig().src_vocab, 40);
    EXPECT_EQ(nmt->modelConfig().tgt_vocab, 45);
    EXPECT_EQ(nmt->modelConfig().enc_layers, 1);
    EXPECT_TRUE(nmt->modelConfig().bidirectional);
}

TEST(Session, WordLmTopKIsSortedAndInVocab)
{
    WordLmSession session(tinyLmConfig(), tinyLmParams(),
                          smallSessionConfig());
    MicroBatch mb;
    mb.bucket_len = 8;
    Request r = makeRequest({7, 12, 3}, 0);
    r.top_k = 5;
    mb.requests.push_back(r);

    std::vector<Response> out;
    session.runBatch(mb, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].ok);
    ASSERT_EQ(out[0].tokens.size(), 5u);
    ASSERT_EQ(out[0].scores.size(), 5u);
    for (size_t i = 0; i < out[0].tokens.size(); ++i) {
        EXPECT_GE(out[0].tokens[i], 0);
        EXPECT_LT(out[0].tokens[i], 50);
        EXPECT_LE(out[0].scores[i], 0.0f); // log-probabilities
        if (i > 0) {
            EXPECT_GE(out[0].scores[i - 1], out[0].scores[i]);
        }
    }
}

/**
 * The determinism contract: a request's payload is byte-identical
 * whether it decoded alone or alongside neighbours, at any thread
 * count.  Runs the same request solo and packed with 7 other requests,
 * across thread counts 1/2/4, and requires exact equality.
 */
TEST(Session, WordLmPayloadIndependentOfBatchAndThreads)
{
    WordLmSession session(tinyLmConfig(), tinyLmParams(),
                          smallSessionConfig());
    const std::vector<int64_t> prefix{9, 4, 31, 6};

    MicroBatch solo;
    solo.bucket_len = 8;
    {
        Request r = makeRequest(prefix, 0);
        r.top_k = 4;
        solo.requests.push_back(r);
    }
    MicroBatch packed;
    packed.bucket_len = 8;
    for (int64_t i = 0; i < 8; ++i) {
        // The target request rides in row 5; neighbours vary in length
        // and content.
        Request r =
            i == 5 ? makeRequest(prefix, 100)
                   : makeRequest(std::vector<int64_t>(
                                     static_cast<size_t>(1 + i % 7),
                                     10 + i),
                                 i);
        r.top_k = i == 5 ? 4 : 3;
        packed.requests.push_back(r);
    }

    std::vector<Response> ref;
    session.runBatch(solo, ref);
    ASSERT_EQ(ref.size(), 1u);

    for (int threads : {1, 2, 4}) {
        ThreadPool::setGlobalNumThreads(threads);
        std::vector<Response> solo_out, packed_out;
        session.runBatch(solo, solo_out);
        session.runBatch(packed, packed_out);
        ASSERT_EQ(solo_out.size(), 1u);
        ASSERT_EQ(packed_out.size(), 8u);
        EXPECT_EQ(solo_out[0].tokens, ref[0].tokens)
            << "threads=" << threads;
        EXPECT_EQ(solo_out[0].scores, ref[0].scores)
            << "threads=" << threads;
        EXPECT_EQ(packed_out[5].tokens, ref[0].tokens)
            << "threads=" << threads;
        EXPECT_EQ(packed_out[5].scores, ref[0].scores)
            << "threads=" << threads;
    }
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}

TEST(Session, NmtPayloadIndependentOfBatchAndThreads)
{
    NmtSession session(tinyNmtConfig(), tinyNmtParams(),
                       smallSessionConfig());
    const std::vector<int64_t> sentence{5, 9, 13, 4};

    MicroBatch solo;
    solo.bucket_len = 8;
    {
        Request greedy = makeRequest(sentence, 0);
        greedy.max_new_tokens = 6;
        Request beam = makeRequest(sentence, 1);
        beam.max_new_tokens = 6;
        beam.beam_width = 3;
        solo.requests = {greedy, beam};
    }
    MicroBatch packed;
    packed.bucket_len = 8;
    for (int64_t i = 0; i < 8; ++i) {
        Request r;
        if (i == 2) {
            r = makeRequest(sentence, 100);
        } else if (i == 6) {
            r = makeRequest(sentence, 101);
            r.beam_width = 3;
        } else {
            r = makeRequest(std::vector<int64_t>(
                                static_cast<size_t>(2 + i % 5), 11 + i),
                            i);
            r.beam_width = i % 2 == 0 ? 1 : 2;
        }
        r.max_new_tokens = 6;
        packed.requests.push_back(r);
    }

    std::vector<Response> ref;
    session.runBatch(solo, ref);
    ASSERT_EQ(ref.size(), 2u);
    EXPECT_TRUE(ref[0].ok);
    EXPECT_TRUE(ref[1].ok);

    for (int threads : {1, 2, 4}) {
        ThreadPool::setGlobalNumThreads(threads);
        std::vector<Response> out;
        session.runBatch(packed, out);
        ASSERT_EQ(out.size(), 8u);
        EXPECT_EQ(out[2].tokens, ref[0].tokens) << "threads=" << threads;
        EXPECT_EQ(out[2].scores, ref[0].scores) << "threads=" << threads;
        EXPECT_EQ(out[6].tokens, ref[1].tokens) << "threads=" << threads;
        EXPECT_EQ(out[6].scores, ref[1].scores) << "threads=" << threads;
    }
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}

TEST(Session, BeamWidthOneMatchesGreedyTokens)
{
    const models::NmtConfig mcfg = tinyNmtConfig();
    const models::ParamStore params = tinyNmtParams();
    SessionConfig scfg = smallSessionConfig();
    NmtSession session(mcfg, params, scfg);

    // Greedy decode through the session.
    MicroBatch mb;
    mb.bucket_len = 8;
    Request r = makeRequest({3, 17, 8}, 0);
    r.max_new_tokens = 6;
    mb.requests.push_back(r);
    std::vector<Response> out;
    session.runBatch(mb, out);
    ASSERT_EQ(out.size(), 1u);

    // Width-1 beam search on a standalone single-row decoder over the
    // same weights must pick the same token at every step.
    models::NmtConfig dcfg = mcfg;
    dcfg.batch = 1;
    dcfg.src_len = 8;
    models::NmtDecoder dec(dcfg, 1, 8);
    Tensor src = Tensor::zeros(Shape({1, 8}));
    for (size_t t = 0; t < r.tokens.size(); ++t)
        src.at(0, static_cast<int64_t>(t)) =
            static_cast<float>(r.tokens[t]);
    const models::NmtDecoder::Encoded enc = dec.encode(params, src);
    const BeamHypothesis hyp =
        beamSearch(dec, params, enc, 1, r.max_new_tokens);
    EXPECT_EQ(hyp.tokens, out[0].tokens);
}

// ------------------------------------------------------ slot journal --

TEST(Session, SlotJournalIsAliasFree)
{
    WordLmSession session(tinyLmConfig(), tinyLmParams(),
                          smallSessionConfig());
    std::vector<Response> out;
    for (int64_t batch = 0; batch < 3; ++batch) {
        MicroBatch mb;
        mb.bucket_len = 8;
        for (int64_t i = 0; i < 4; ++i)
            mb.requests.push_back(
                makeRequest({batch + 3, i + 5}, batch * 10 + i));
        session.runBatch(mb, out);
    }
    EXPECT_EQ(session.slotJournal().size(), 12u);
    const analysis::AnalysisReport report =
        analysis::detectWorkspaceAliasing(session.slotJournal(), 8);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(WorkspaceAliasing, DetectsOverlapAndOutOfRange)
{
    std::vector<analysis::SlotInterval> journal;
    // Requests 1 and 2 both hold (pool 0, slot 3) during batch 5.
    journal.push_back({1, 0, 3, 5, 6});
    journal.push_back({2, 0, 3, 5, 6});
    // Request 3 maps outside the slot range.
    journal.push_back({3, 0, 9, 6, 7});

    const analysis::AnalysisReport report =
        analysis::detectWorkspaceAliasing(journal, 8);
    EXPECT_FALSE(report.ok());
    bool saw_alias = false, saw_range = false;
    for (const analysis::Diagnostic &d : report.diagnostics) {
        saw_alias |= d.check == analysis::Check::kSlotAliasing;
        saw_range |= d.check == analysis::Check::kSlotOutOfRange;
    }
    EXPECT_TRUE(saw_alias);
    EXPECT_TRUE(saw_range);
}

TEST(WorkspaceAliasing, DisjointPoolsAndTimesAreClean)
{
    std::vector<analysis::SlotInterval> journal;
    journal.push_back({1, 0, 3, 5, 6}); // same slot, different pool
    journal.push_back({2, 1, 3, 5, 6});
    journal.push_back({3, 0, 3, 6, 7}); // same slot, later interval
    EXPECT_TRUE(analysis::detectWorkspaceAliasing(journal, 8).ok());
}

// ------------------------------------------------------------ server --

std::unique_ptr<InferenceSession>
makeLmSession()
{
    return std::make_unique<WordLmSession>(
        tinyLmConfig(), tinyLmParams(), smallSessionConfig());
}

TEST(Server, RoundTripsRequests)
{
    ServerConfig cfg;
    cfg.max_wait = std::chrono::microseconds(500);
    Server server(makeLmSession(), cfg);

    std::vector<std::future<Response>> futures;
    for (int64_t i = 0; i < 6; ++i) {
        Request r = makeRequest({3 + i, 7, 11});
        r.top_k = 3;
        futures.push_back(server.submit(std::move(r)));
    }
    for (auto &f : futures) {
        const Response resp = f.get();
        EXPECT_TRUE(resp.ok);
        EXPECT_EQ(resp.reject, RejectReason::kNone);
        EXPECT_EQ(resp.tokens.size(), 3u);
        EXPECT_GE(resp.latency_us, 0.0);
        EXPECT_GE(resp.batch_requests, 1);
        EXPECT_EQ(resp.bucket_len, 8);
    }
    server.stop();

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.accepted, 6);
    EXPECT_EQ(stats.completed, 6);
    EXPECT_EQ(stats.rejected, 0);
    EXPECT_GE(stats.batches, 1);
    EXPECT_GT(stats.mean_batch_requests, 0.0);
    EXPECT_GT(stats.latency_p50_us, 0.0);
    EXPECT_GE(stats.latency_p99_us, stats.latency_p50_us);
}

TEST(Server, RejectsInvalidAndLateRequests)
{
    Server server(makeLmSession(), ServerConfig{});

    Response empty = server.submit(makeRequest({})).get();
    EXPECT_FALSE(empty.ok);
    EXPECT_EQ(empty.reject, RejectReason::kEmpty);

    Response too_long =
        server.submit(makeRequest(std::vector<int64_t>(9, 5))).get();
    EXPECT_FALSE(too_long.ok);
    EXPECT_EQ(too_long.reject, RejectReason::kTooLong);

    server.stop();
    Response late = server.submit(makeRequest({1, 2})).get();
    EXPECT_FALSE(late.ok);
    EXPECT_EQ(late.reject, RejectReason::kShutdown);

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.accepted, 0);
    EXPECT_EQ(stats.rejected, 3);
}

TEST(RequestQueue, BatchTierShedsAtTheAdmitLine)
{
    // Capacity 4 with a shed line of 2: batch-tier requests reject
    // kOverloaded once two requests are queued, interactive traffic
    // is admitted up to full capacity.
    RequestQueue q(4, 2);
    EXPECT_EQ(q.batchCapacity(), 2u);

    auto tiered = [](int64_t id, Tier tier) {
        Request r = makeRequest({1, 2}, id);
        r.tier = tier;
        return r;
    };
    EXPECT_EQ(q.tryPush(tiered(0, Tier::kBatch)), RejectReason::kNone);
    EXPECT_EQ(q.tryPush(tiered(1, Tier::kBatch)), RejectReason::kNone);
    EXPECT_EQ(q.tryPush(tiered(2, Tier::kBatch)),
              RejectReason::kOverloaded);
    EXPECT_EQ(q.tryPush(tiered(3, Tier::kInteractive)),
              RejectReason::kNone);
    EXPECT_EQ(q.tryPush(tiered(4, Tier::kInteractive)),
              RejectReason::kNone);
    EXPECT_EQ(q.tryPush(tiered(5, Tier::kInteractive)),
              RejectReason::kQueueFull);

    // Draining below the shed line re-admits batch traffic.
    Request out;
    ASSERT_TRUE(q.tryPop(out));
    ASSERT_TRUE(q.tryPop(out));
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(q.tryPush(tiered(6, Tier::kBatch)), RejectReason::kNone);
}

TEST(RequestQueue, TierAndNewRejectReasonNamesAreStable)
{
    EXPECT_STREQ(tierName(Tier::kInteractive), "interactive");
    EXPECT_STREQ(tierName(Tier::kBatch), "batch");
    EXPECT_STREQ(rejectReasonName(RejectReason::kOverloaded),
                 "overloaded");
    EXPECT_STREQ(rejectReasonName(RejectReason::kBadModel),
                 "bad-model");
    EXPECT_STREQ(rejectReasonName(RejectReason::kCancelled),
                 "cancelled");
    EXPECT_STREQ(rejectReasonName(RejectReason::kExpired),
                 "deadline-expired");
}

// ------------------------------------------- slot-recycling audit --

analysis::SlotLease
lease(int64_t id, int64_t pool, int slot, int64_t acquired,
      int64_t released, int reinit = 1,
      analysis::LeaseStatus status = analysis::LeaseStatus::kServed)
{
    analysis::SlotLease l;
    l.request_id = id;
    l.pool = pool;
    l.slot = slot;
    l.acquired = acquired;
    l.released = released;
    l.reinit = reinit;
    l.status = status;
    return l;
}

TEST(SlotRecycling, CleanRecycledJournalPasses)
{
    // Slot 0 serves three requests back-to-back (recycling), slot 1
    // hosts an overlapping-in-time neighbour, one request expires.
    std::vector<analysis::SlotLease> journal;
    journal.push_back(lease(0, 0, 0, 0, 3));
    journal.push_back(lease(1, 0, 1, 0, 5));
    journal.push_back(lease(2, 0, 0, 3, 4, 1,
                            analysis::LeaseStatus::kExpired));
    journal.push_back(lease(3, 0, 0, 4, 9));
    const analysis::AnalysisReport report =
        analysis::auditSlotRecycling(journal, 4);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(SlotRecycling, OverlappingLeasesAreSlotAliasing)
{
    std::vector<analysis::SlotLease> journal;
    journal.push_back(lease(0, 0, 0, 0, 3));
    journal.push_back(lease(1, 0, 0, 2, 5)); // acquired before 0 left
    const analysis::AnalysisReport report =
        analysis::auditSlotRecycling(journal, 4);
    EXPECT_FALSE(report.ok());
    bool saw_alias = false;
    for (const analysis::Diagnostic &d : report.diagnostics)
        saw_alias |= d.check == analysis::Check::kSlotAliasing;
    EXPECT_TRUE(saw_alias) << report.toString();
}

TEST(SlotRecycling, MissingReinitIsAStateLeak)
{
    std::vector<analysis::SlotLease> journal;
    journal.push_back(lease(0, 0, 0, 0, 3));
    journal.push_back(lease(1, 0, 0, 3, 5, /*reinit=*/0));
    const analysis::AnalysisReport report =
        analysis::auditSlotRecycling(journal, 4);
    EXPECT_FALSE(report.ok());
    bool saw_leak = false;
    for (const analysis::Diagnostic &d : report.diagnostics)
        saw_leak |= d.check == analysis::Check::kSlotStateLeak;
    EXPECT_TRUE(saw_leak) << report.toString();
}

TEST(SlotRecycling, DoubleTerminationAndEmptyLeaseAreViolations)
{
    std::vector<analysis::SlotLease> journal;
    // Request 7 terminates twice (two leases), request 8's lease is
    // empty (acquired == released).
    journal.push_back(lease(7, 0, 0, 0, 2));
    journal.push_back(lease(7, 0, 1, 3, 4));
    journal.push_back(lease(8, 0, 2, 5, 5));
    const analysis::AnalysisReport report =
        analysis::auditSlotRecycling(journal, 4);
    EXPECT_FALSE(report.ok());
    int lifecycle = 0;
    for (const analysis::Diagnostic &d : report.diagnostics)
        lifecycle += d.check == analysis::Check::kLifecycleViolation;
    EXPECT_GE(lifecycle, 2) << report.toString();
}

// ----------------------------------------- continuous scheduler --

std::unique_ptr<InferenceSession>
makeNmtSession()
{
    return std::make_unique<NmtSession>(
        tinyNmtConfig(), tinyNmtParams(), smallSessionConfig());
}

/** The differential workload: varied prefixes and top-k widths. */
std::vector<Request>
differentialWorkload()
{
    std::vector<Request> reqs;
    const std::vector<std::vector<int64_t>> prefixes = {
        {9, 4, 31, 6}, {7, 12, 3},       {5},
        {3, 3, 3, 3, 3, 3, 3}, {40, 2, 17}, {6, 7},
        {11, 13, 17, 19, 23},  {8, 8, 8, 8}};
    for (size_t i = 0; i < prefixes.size(); ++i) {
        Request r = makeRequest(prefixes[i]);
        r.top_k = 1 + static_cast<int>(i % 5);
        reqs.push_back(std::move(r));
    }
    return reqs;
}

/**
 * The differential test the tentpole hangs on: the continuous
 * scheduler against the slots=1 run-to-completion server (a strictly
 * sequential reference — every micro-batch holds one request).
 * Payloads must be byte-identical for every request at thread counts
 * 1/2/4 and across arrival permutations.
 */
TEST(ContinuousServer, DifferentialAgainstSequentialReference)
{
    const std::vector<Request> base = differentialWorkload();

    // Reference: slots=1, legacy batcher, submitted one at a time.
    std::vector<Response> ref;
    {
        SessionConfig scfg = smallSessionConfig();
        scfg.slots = 1;
        ServerConfig cfg;
        cfg.scheduler = SchedulerKind::kDynamicBatch;
        cfg.max_wait = std::chrono::microseconds(100);
        Server server(std::make_unique<WordLmSession>(
                          tinyLmConfig(), tinyLmParams(), scfg),
                      cfg);
        for (const Request &r : base)
            ref.push_back(server.submit(Request(r)).get());
        server.stop();
        for (const Response &resp : ref)
            ASSERT_TRUE(resp.ok);
    }

    const std::vector<std::vector<size_t>> orders = {
        {0, 1, 2, 3, 4, 5, 6, 7}, // admission order
        {7, 6, 5, 4, 3, 2, 1, 0}, // reversed
        {4, 0, 6, 2, 7, 3, 5, 1}, // shuffled
    };
    for (int threads : {1, 2, 4}) {
        ThreadPool::setGlobalNumThreads(threads);
        for (const std::vector<size_t> &order : orders) {
            Server server(makeLmSession(), ServerConfig{});
            std::vector<std::future<Response>> futures;
            for (size_t idx : order)
                futures.push_back(server.submit(Request(base[idx])));
            for (size_t k = 0; k < order.size(); ++k) {
                const Response resp = futures[k].get();
                const Response &expect = ref[order[k]];
                ASSERT_TRUE(resp.ok)
                    << "threads=" << threads << " k=" << k;
                EXPECT_EQ(resp.tokens, expect.tokens)
                    << "threads=" << threads << " base=" << order[k];
                EXPECT_EQ(resp.scores, expect.scores)
                    << "threads=" << threads << " base=" << order[k];
            }
            server.stop();
            const ServerStats stats = server.stats();
            EXPECT_EQ(stats.completed, 8);
            EXPECT_EQ(stats.wait_count, stats.completed);
            // The journal must audit clean: exclusive leases,
            // re-initialized state, exactly-once termination.
            const analysis::AnalysisReport report =
                analysis::auditSlotRecycling(server.leaseJournal(),
                                             server.journalSlots());
            EXPECT_TRUE(report.ok()) << report.toString();
        }
    }
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}

TEST(ContinuousServer, MixedTrafficRoutesByModelAndMatchesReference)
{
    // Solo references driven directly through fresh sessions.
    WordLmSession lm_ref(tinyLmConfig(), tinyLmParams(),
                         smallSessionConfig());
    NmtSession nmt_ref(tinyNmtConfig(), tinyNmtParams(),
                       smallSessionConfig());

    Request lm_req = makeRequest({7, 12, 3});
    lm_req.top_k = 4;
    lm_req.model = "word_lm";
    Request greedy = makeRequest({5, 9, 13, 4});
    greedy.max_new_tokens = 6;
    greedy.model = "nmt";
    Request beam = makeRequest({5, 9, 13, 4});
    beam.max_new_tokens = 6;
    beam.beam_width = 3;
    beam.model = "nmt";

    std::vector<Response> ref;
    {
        MicroBatch mb;
        mb.bucket_len = 8;
        mb.requests = {lm_req};
        std::vector<Response> out;
        lm_ref.runBatch(mb, out);
        ref.push_back(out[0]);
        mb.requests = {greedy, beam};
        nmt_ref.runBatch(mb, out);
        ref.push_back(out[0]);
        ref.push_back(out[1]);
    }

    std::vector<std::unique_ptr<InferenceSession>> sessions;
    sessions.push_back(makeLmSession());
    sessions.push_back(makeNmtSession());
    Server server(std::move(sessions), ServerConfig{});

    Request bogus = makeRequest({1, 2});
    bogus.model = "transformer";
    const Response bad = server.submit(std::move(bogus)).get();
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.reject, RejectReason::kBadModel);

    std::vector<std::future<Response>> futures;
    futures.push_back(server.submit(std::move(lm_req)));
    futures.push_back(server.submit(std::move(greedy)));
    futures.push_back(server.submit(std::move(beam)));
    for (size_t i = 0; i < futures.size(); ++i) {
        const Response resp = futures[i].get();
        ASSERT_TRUE(resp.ok) << "request " << i;
        EXPECT_EQ(resp.tokens, ref[i].tokens) << "request " << i;
        EXPECT_EQ(resp.scores, ref[i].scores) << "request " << i;
    }
    server.stop();

    const analysis::AnalysisReport report = analysis::auditSlotRecycling(
        server.leaseJournal(), server.journalSlots());
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(ContinuousServer, CancelsWaitingRequestsAndRecyclesSlots)
{
    // Two slots, eight long-prefix requests: the last submission waits
    // through several lane rotations, so a cancel issued immediately
    // after it is submitted lands while it still sits in the queue.
    SessionConfig scfg = smallSessionConfig();
    scfg.slots = 2;
    ServerConfig cfg;
    Server server(std::make_unique<WordLmSession>(
                      tinyLmConfig(), tinyLmParams(), scfg),
                  cfg);

    std::vector<std::future<Response>> futures;
    for (int64_t i = 0; i < 8; ++i) {
        Request r = makeRequest(
            std::vector<int64_t>(8, 3 + i)); // 8 steps per request
        r.top_k = 2;
        futures.push_back(server.submit(std::move(r)));
    }
    const int64_t victim = 7; // ids are the submission order
    ASSERT_TRUE(server.cancel(victim));

    const Response cancelled = futures.back().get();
    EXPECT_FALSE(cancelled.ok);
    EXPECT_EQ(cancelled.reject, RejectReason::kCancelled);
    for (size_t i = 0; i + 1 < futures.size(); ++i)
        EXPECT_TRUE(futures[i].get().ok) << "request " << i;
    server.stop();

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 7);
    EXPECT_EQ(stats.cancelled, 1);
    EXPECT_GT(stats.recycled_slots, 0);
    EXPECT_EQ(stats.wait_count, stats.completed);
    const analysis::AnalysisReport report = analysis::auditSlotRecycling(
        server.leaseJournal(), server.journalSlots());
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(ContinuousServer, ExpiredDeadlineBudgetResolvesExpired)
{
    Server server(makeLmSession(), ServerConfig{});
    Request r = makeRequest({3, 4, 5, 6});
    r.deadline_us = 1; // a 1us budget cannot survive admission
    const Response resp = server.submit(std::move(r)).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.reject, RejectReason::kExpired);
    server.stop();
    EXPECT_EQ(server.stats().expired, 1);
}

/**
 * Regression for the max-wait x deadline wait double-count: queue-wait
 * is recorded exactly once per completed request (at batch emission in
 * legacy mode, at splice time in continuous mode), so the histogram
 * count must equal the completed count even when deadline flushes
 * leave requests pending across buckets.
 */
TEST(Server, WaitRecordedOncePerRequestAcrossDeadlineFlushes)
{
    for (const SchedulerKind kind :
         {SchedulerKind::kDynamicBatch, SchedulerKind::kContinuous}) {
        SessionConfig scfg = smallSessionConfig();
        scfg.buckets = {8, 16};
        ServerConfig cfg;
        cfg.scheduler = kind;
        cfg.max_wait = std::chrono::microseconds(500);
        Server server(std::make_unique<WordLmSession>(
                          tinyLmConfig(), tinyLmParams(), scfg),
                      cfg);

        std::vector<std::future<Response>> futures;
        for (int64_t i = 0; i < 12; ++i) {
            // Alternate buckets so deadline flushes of one bucket
            // leave the other's requests pending.
            Request r = makeRequest(
                std::vector<int64_t>(i % 2 == 0 ? 3 : 12, 5 + i));
            r.top_k = 2;
            futures.push_back(server.submit(std::move(r)));
            if (i % 3 == 0)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(300));
        }
        for (auto &f : futures) {
            const Response resp = f.get();
            ASSERT_TRUE(resp.ok);
            EXPECT_GE(resp.wait_us, 0.0);
            EXPECT_LE(resp.wait_us, resp.latency_us);
        }
        server.stop();

        const ServerStats stats = server.stats();
        EXPECT_EQ(stats.completed, 12);
        EXPECT_EQ(stats.wait_count, stats.completed)
            << "scheduler=" << static_cast<int>(kind);
    }
}

TEST(Server, ResponsePayloadMatchesDirectSession)
{
    // The server path (queue -> batcher -> worker) must not perturb
    // payloads relative to driving the session directly.
    const std::vector<int64_t> prefix{7, 12, 3};

    WordLmSession direct(tinyLmConfig(), tinyLmParams(),
                         smallSessionConfig());
    MicroBatch mb;
    mb.bucket_len = 8;
    Request r = makeRequest(prefix, 0);
    r.top_k = 5;
    mb.requests.push_back(r);
    std::vector<Response> ref;
    direct.runBatch(mb, ref);
    ASSERT_EQ(ref.size(), 1u);

    Server server(makeLmSession(), ServerConfig{});
    Request req = makeRequest(prefix);
    req.top_k = 5;
    const Response resp = server.submit(std::move(req)).get();
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(resp.tokens, ref[0].tokens);
    EXPECT_EQ(resp.scores, ref[0].scores);
}

} // namespace
} // namespace echo
