/**
 * @file
 * Tests for the synthetic datasets and batchers.
 */
#include <gtest/gtest.h>

#include <map>

#include "data/batcher.h"
#include "data/corpus.h"
#include "data/parallel_corpus.h"

namespace echo::data {
namespace {

CorpusConfig
smallCorpusConfig()
{
    CorpusConfig cfg;
    cfg.vocab = Vocab{100};
    cfg.num_tokens = 20000;
    cfg.seed = 42;
    return cfg;
}

TEST(Corpus, DeterministicInSeed)
{
    const Corpus a = Corpus::generate(smallCorpusConfig());
    const Corpus b = Corpus::generate(smallCorpusConfig());
    ASSERT_EQ(a.size(), b.size());
    for (int64_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.tokens()[static_cast<size_t>(i)],
                  b.tokens()[static_cast<size_t>(i)]);
}

TEST(Corpus, TokensInWordRange)
{
    const Corpus c = Corpus::generate(smallCorpusConfig());
    for (const int64_t tok : c.tokens()) {
        EXPECT_GE(tok, Vocab::kFirstWord);
        EXPECT_LT(tok, c.vocab().size);
    }
}

TEST(Corpus, ZipfSkew)
{
    const Corpus c = Corpus::generate(smallCorpusConfig());
    std::map<int64_t, int64_t> freq;
    for (const int64_t tok : c.tokens())
        ++freq[tok];
    // The most frequent type should dominate the median type.
    int64_t max_count = 0;
    for (const auto &[tok, count] : freq)
        max_count = std::max(max_count, count);
    EXPECT_GT(max_count,
              c.size() / static_cast<int64_t>(freq.size()) * 5);
}

TEST(Corpus, StructureIsLearnable)
{
    // With structure=1.0, the next token is a function of the previous:
    // the conditional entropy is zero and a bigram table predicts
    // perfectly.
    CorpusConfig cfg = smallCorpusConfig();
    cfg.structure = 1.0;
    const Corpus c = Corpus::generate(cfg);
    std::map<int64_t, int64_t> successor;
    int64_t violations = 0;
    for (size_t i = 1; i < c.tokens().size(); ++i) {
        const int64_t prev = c.tokens()[i - 1];
        const int64_t next = c.tokens()[i];
        auto it = successor.find(prev);
        if (it == successor.end())
            successor[prev] = next;
        else if (it->second != next)
            ++violations;
    }
    EXPECT_EQ(violations, 0);
}

TEST(LmBatcher, ShapesAndLabelAlignment)
{
    const Corpus c = Corpus::generate(smallCorpusConfig());
    LmBatcher batcher(c, 4, 10);
    const LmBatch b = batcher.next();
    ASSERT_EQ(b.tokens.shape(), Shape({4, 10}));
    ASSERT_EQ(b.labels.shape(), Shape({40}));
    // Labels are inputs shifted by one within each stream.
    for (int64_t r = 0; r < 4; ++r)
        for (int64_t t = 0; t + 1 < 10; ++t)
            EXPECT_FLOAT_EQ(b.labels.at(r * 10 + t),
                            b.tokens.at(r, t + 1));
}

TEST(LmBatcher, WrapsAround)
{
    const Corpus c = Corpus::generate(smallCorpusConfig());
    LmBatcher batcher(c, 4, 10);
    const int64_t per_epoch = batcher.batchesPerEpoch();
    EXPECT_GT(per_epoch, 10);
    const LmBatch first = batcher.next();
    for (int64_t i = 1; i < per_epoch; ++i)
        batcher.next();
    const LmBatch wrapped = batcher.next();
    // After a full epoch, the cursor restarts: same window again.
    for (int64_t i = 0; i < 40; ++i)
        EXPECT_FLOAT_EQ(wrapped.tokens.at(i), first.tokens.at(i));
}

ParallelCorpusConfig
smallParallelConfig()
{
    ParallelCorpusConfig cfg;
    cfg.src_vocab = Vocab{80};
    cfg.tgt_vocab = Vocab{90};
    cfg.num_pairs = 500;
    cfg.min_len = 4;
    cfg.max_len = 9;
    cfg.seed = 5;
    return cfg;
}

TEST(ParallelCorpus, PairLengthsMatchRule)
{
    const ParallelCorpus pc =
        ParallelCorpus::generate(smallParallelConfig());
    ASSERT_EQ(pc.pairs().size(), 500u);
    for (const SentencePair &p : pc.pairs()) {
        EXPECT_GE(static_cast<int64_t>(p.source.size()), 4);
        EXPECT_LE(static_cast<int64_t>(p.source.size()), 9);
        EXPECT_EQ(p.source.size(), p.target.size());
    }
}

TEST(ParallelCorpus, TargetIsDeterministicTranslation)
{
    const ParallelCorpus pc =
        ParallelCorpus::generate(smallParallelConfig());
    for (size_t i = 0; i < 20; ++i) {
        const SentencePair &p = pc.pairs()[i];
        EXPECT_EQ(p.target, pc.referenceTranslation(p.source));
    }
}

TEST(ParallelCorpus, ReorderingSwapsAdjacentPairs)
{
    const ParallelCorpus pc =
        ParallelCorpus::generate(smallParallelConfig());
    // Translate a hand-made sentence and verify the swap pattern by
    // translating each word alone (length-1 sentences do not swap).
    std::vector<int64_t> sent = {Vocab::kFirstWord + 7,
                                 Vocab::kFirstWord + 11,
                                 Vocab::kFirstWord + 3};
    const auto t = pc.referenceTranslation(sent);
    const auto w0 = pc.referenceTranslation({sent[0]})[0];
    const auto w1 = pc.referenceTranslation({sent[1]})[0];
    const auto w2 = pc.referenceTranslation({sent[2]})[0];
    EXPECT_EQ(t[0], w1);
    EXPECT_EQ(t[1], w0);
    EXPECT_EQ(t[2], w2);
}

TEST(NmtBatcher, PaddingAndSpecials)
{
    const ParallelCorpus pc =
        ParallelCorpus::generate(smallParallelConfig());
    NmtBatcher batcher(pc, 8, 12, 12);
    const NmtBatch b = batcher.next();
    ASSERT_EQ(b.src.shape(), Shape({8, 12}));
    ASSERT_EQ(b.tgt_in.shape(), Shape({8, 12}));
    ASSERT_EQ(b.tgt_labels.shape(), Shape({96}));
    for (int64_t r = 0; r < 8; ++r) {
        // Decoder input starts with BOS.
        EXPECT_FLOAT_EQ(b.tgt_in.at(r, 0),
                        static_cast<float>(Vocab::kBos));
        // Labels contain exactly one EOS and -1 afterwards.
        bool seen_eos = false;
        for (int64_t t = 0; t < 12; ++t) {
            const float label = b.tgt_labels.at(r * 12 + t);
            if (seen_eos) {
                EXPECT_FLOAT_EQ(label, -1.0f);
            } else if (label == static_cast<float>(Vocab::kEos)) {
                seen_eos = true;
            }
        }
        EXPECT_TRUE(seen_eos);
    }
}

TEST(NmtBatcher, LabelsAlignWithDecoderInputs)
{
    const ParallelCorpus pc =
        ParallelCorpus::generate(smallParallelConfig());
    NmtBatcher batcher(pc, 4, 12, 12);
    const NmtBatch b = batcher.next();
    // tgt_in[t+1] == labels[t] for non-special positions.
    for (int64_t r = 0; r < 4; ++r)
        for (int64_t t = 0; t + 1 < 12; ++t) {
            const float label = b.tgt_labels.at(r * 12 + t);
            if (label >= static_cast<float>(Vocab::kFirstWord)) {
                EXPECT_FLOAT_EQ(b.tgt_in.at(r, t + 1), label);
            }
        }
}

} // namespace
} // namespace echo::data
