/**
 * @file
 * Tests for the core utilities: RNG determinism and distributions,
 * tables, and statistics helpers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "core/stats.h"
#include "core/table.h"

namespace echo {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    Summary s;
    for (int i = 0; i < 20000; ++i)
        s.add(rng.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.05);
    EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks)
{
    Rng rng(13);
    int low = 0, high = 0;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t r = rng.zipf(1000, 1.0);
        EXPECT_LT(r, 1000u);
        if (r < 10)
            ++low;
        if (r >= 500)
            ++high;
    }
    EXPECT_GT(low, high * 3);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(5);
    Rng child = a.split();
    EXPECT_NE(a.next(), child.next());
}

TEST(Summary, TracksMinMeanMax)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_EQ(s.count(), 4u);
}

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonAnticorrelation)
{
    std::vector<double> xs{1, 2, 3};
    std::vector<double> ys{3, 2, 1};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSampleIsZero)
{
    std::vector<double> xs{1, 1, 1};
    std::vector<double> ys{1, 2, 3};
    EXPECT_DOUBLE_EQ(pearsonCorrelation(xs, ys), 0.0);
}

TEST(Ema, ConvergesToConstantInput)
{
    Ema e(0.5);
    for (int i = 0; i < 50; ++i)
        e.add(3.0);
    EXPECT_NEAR(e.value(), 3.0, 1e-9);
}

TEST(Table, AlignsAndCounts)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    EXPECT_EQ(t.numRows(), 2u);
    const std::string s = t.toString();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, CsvQuotesCommas)
{
    Table t({"a"});
    t.addRow({"x,y"});
    EXPECT_NE(t.toCsv().find("\"x,y\""), std::string::npos);
}

TEST(Table, FormatsBytes)
{
    EXPECT_EQ(Table::fmtBytes(512), "512 B");
    EXPECT_EQ(Table::fmtBytes(4ull << 30), "4.00 GB");
}

TEST(Table, FormatsPercent)
{
    EXPECT_EQ(Table::fmtPercent(0.591), "59.1%");
}

} // namespace
} // namespace echo
