/**
 * @file
 * Tests for the core utilities: RNG determinism and distributions,
 * tables, and statistics helpers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "core/stats.h"
#include "core/table.h"

namespace echo {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    Summary s;
    for (int i = 0; i < 20000; ++i)
        s.add(rng.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.05);
    EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks)
{
    Rng rng(13);
    int low = 0, high = 0;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t r = rng.zipf(1000, 1.0);
        EXPECT_LT(r, 1000u);
        if (r < 10)
            ++low;
        if (r >= 500)
            ++high;
    }
    EXPECT_GT(low, high * 3);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(5);
    Rng child = a.split();
    EXPECT_NE(a.next(), child.next());
}

TEST(Summary, TracksMinMeanMax)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_EQ(s.count(), 4u);
}

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonAnticorrelation)
{
    std::vector<double> xs{1, 2, 3};
    std::vector<double> ys{3, 2, 1};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSampleIsZero)
{
    std::vector<double> xs{1, 1, 1};
    std::vector<double> ys{1, 2, 3};
    EXPECT_DOUBLE_EQ(pearsonCorrelation(xs, ys), 0.0);
}

TEST(Histogram, BucketBoundariesFollowLogSpacing)
{
    // lo=1, 1 bucket per decade: bucket 1 = [1, 10), bucket 2 =
    // [10, 100), bucket 3 = [100, 1000), then overflow.
    Histogram h(1.0, 1000.0, 1);
    EXPECT_EQ(h.numBuckets(), 5u); // underflow + 3 + overflow
    EXPECT_EQ(h.bucketIndex(0.5), 0u);
    EXPECT_EQ(h.bucketIndex(-3.0), 0u);
    EXPECT_EQ(h.bucketIndex(1.0), 1u);
    EXPECT_EQ(h.bucketIndex(9.99), 1u);
    EXPECT_EQ(h.bucketIndex(10.0), 2u);
    EXPECT_EQ(h.bucketIndex(999.0), 3u);
    EXPECT_EQ(h.bucketIndex(1000.0), 4u);
    EXPECT_EQ(h.bucketIndex(1e9), 4u);
    EXPECT_DOUBLE_EQ(h.bucketLowerBound(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLowerBound(1), 1.0);
    EXPECT_DOUBLE_EQ(h.bucketLowerBound(2), 10.0);
    EXPECT_DOUBLE_EQ(h.bucketLowerBound(3), 100.0);
}

TEST(Histogram, FinerBucketsPerDecade)
{
    Histogram h(1.0, 10.0, 4);
    // r = 10^(1/4) ~ 1.778: buckets [1,1.778), [1.778,3.162), ...
    EXPECT_EQ(h.bucketIndex(1.0), 1u);
    EXPECT_EQ(h.bucketIndex(1.7), 1u);
    EXPECT_EQ(h.bucketIndex(1.8), 2u);
    EXPECT_EQ(h.bucketIndex(3.2), 3u);
    EXPECT_EQ(h.bucketIndex(5.7), 4u);
    EXPECT_NEAR(h.bucketLowerBound(2), std::pow(10.0, 0.25), 1e-12);
}

TEST(Histogram, SmallSamplePercentilesAreExact)
{
    Histogram h;
    for (double v : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0,
                     90.0, 100.0})
        h.add(v);
    // Nearest rank over 10 samples: p50 -> 5th = 50, p95 -> 10th,
    // p99 -> 10th, p10 -> 1st.
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(95.0), 100.0);
    EXPECT_DOUBLE_EQ(h.p99(), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(10.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 55.0);
}

TEST(Histogram, EmptyPercentileIsZero)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.p50(), 0.0);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, LargeSamplePercentilesApproximate)
{
    // Past the exact-sample capacity the percentile comes from bucket
    // interpolation; with 16 buckets/decade the relative error stays
    // within one bucket width (~15%).
    Histogram h;
    for (int i = 1; i <= 20000; ++i)
        h.add(static_cast<double>(i));
    ASSERT_GT(h.count(), Histogram::kExactCapacity);
    EXPECT_NEAR(h.percentile(50.0), 10000.0, 1500.0);
    EXPECT_NEAR(h.percentile(95.0), 19000.0, 2900.0);
    EXPECT_NEAR(h.percentile(99.0), 19800.0, 3000.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 20000.0);
}

TEST(Histogram, UnderflowAndOverflowCounted)
{
    Histogram h(1.0, 100.0, 1);
    h.add(0.1);
    h.add(-5.0);
    h.add(1e6);
    EXPECT_EQ(h.bucketCount(0), 2);
    EXPECT_EQ(h.bucketCount(h.numBuckets() - 1), 1);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Ema, ConvergesToConstantInput)
{
    Ema e(0.5);
    for (int i = 0; i < 50; ++i)
        e.add(3.0);
    EXPECT_NEAR(e.value(), 3.0, 1e-9);
}

TEST(Table, AlignsAndCounts)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    EXPECT_EQ(t.numRows(), 2u);
    const std::string s = t.toString();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, CsvQuotesCommas)
{
    Table t({"a"});
    t.addRow({"x,y"});
    EXPECT_NE(t.toCsv().find("\"x,y\""), std::string::npos);
}

TEST(Table, FormatsBytes)
{
    EXPECT_EQ(Table::fmtBytes(512), "512 B");
    EXPECT_EQ(Table::fmtBytes(4ull << 30), "4.00 GB");
}

TEST(Table, FormatsPercent)
{
    EXPECT_EQ(Table::fmtPercent(0.591), "59.1%");
}

} // namespace
} // namespace echo
