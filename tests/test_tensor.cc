/**
 * @file
 * Tests for the tensor library: shapes, storage semantics, and every op
 * against hand-computed or reference results, including TEST_P sweeps
 * over GEMM transpose combinations.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace echo {
namespace {

TEST(Shape, Basics)
{
    Shape s({2, 3, 4});
    EXPECT_EQ(s.ndim(), 3);
    EXPECT_EQ(s.numel(), 24);
    EXPECT_EQ(s.bytes(), 96);
    EXPECT_EQ(s.dim(-1), 4);
    EXPECT_EQ(s.toString(), "[2x3x4]");
}

TEST(Shape, DropAndInsertAxis)
{
    Shape s({2, 3, 4});
    EXPECT_EQ(s.dropAxis(1), Shape({2, 4}));
    EXPECT_EQ(s.insertAxis(0, 7), Shape({7, 2, 3, 4}));
    EXPECT_EQ(s.insertAxis(3, 7), Shape({2, 3, 4, 7}));
}

TEST(Shape, Equality)
{
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

TEST(Tensor, ZerosAndFill)
{
    Tensor t = Tensor::zeros(Shape({2, 2}));
    EXPECT_DOUBLE_EQ(t.sum(), 0.0);
    t.fill(2.5f);
    EXPECT_DOUBLE_EQ(t.sum(), 10.0);
}

TEST(Tensor, ReshapeSharesStorage)
{
    Tensor t = Tensor::zeros(Shape({2, 3}));
    Tensor r = t.reshape(Shape({3, 2}));
    r.at(0) = 5.0f;
    EXPECT_FLOAT_EQ(t.at(0), 5.0f);
}

TEST(Tensor, CloneIsDeep)
{
    Tensor t = Tensor::full(Shape({2}), 1.0f);
    Tensor c = t.clone();
    c.at(0) = 9.0f;
    EXPECT_FLOAT_EQ(t.at(0), 1.0f);
}

TEST(Tensor, AllFiniteDetectsNan)
{
    Tensor t = Tensor::zeros(Shape({3}));
    EXPECT_TRUE(t.allFinite());
    t.at(1) = std::nanf("");
    EXPECT_FALSE(t.allFinite());
}

TEST(Tensor, MultiDimAccess)
{
    Tensor t = Tensor::zeros(Shape({2, 3, 4}));
    t.at(1, 2, 3) = 7.0f;
    EXPECT_FLOAT_EQ(t.at(1 * 12 + 2 * 4 + 3), 7.0f);
}

// ----------------------------------------------------------------------
// GEMM: all four transpose combinations against a naive reference.
// ----------------------------------------------------------------------

class GemmTransposes
    : public ::testing::TestWithParam<std::tuple<bool, bool>>
{
};

TEST_P(GemmTransposes, MatchesNaiveReference)
{
    const auto [ta, tb] = GetParam();
    const int64_t m = 3, n = 5, k = 4;
    Rng rng(17);
    Tensor a = Tensor::uniform(ta ? Shape({k, m}) : Shape({m, k}), rng,
                               -1.0f, 1.0f);
    Tensor b = Tensor::uniform(tb ? Shape({n, k}) : Shape({k, n}), rng,
                               -1.0f, 1.0f);
    Tensor c = ops::gemm(a, ta, b, tb);
    ASSERT_EQ(c.shape(), Shape({m, n}));
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) {
            double ref = 0.0;
            for (int64_t p = 0; p < k; ++p) {
                const float av = ta ? a.at(p, i) : a.at(i, p);
                const float bv = tb ? b.at(j, p) : b.at(p, j);
                ref += av * bv;
            }
            EXPECT_NEAR(c.at(i, j), ref, 1e-4);
        }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, GemmTransposes,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Gemm, MathematicallyEquivalentLayouts)
{
    // The paper's Fig. 9 setup: Y = X W^T must equal (W X^T)^T exactly.
    Rng rng(3);
    Tensor x = Tensor::uniform(Shape({8, 16}), rng, -1.0f, 1.0f);
    Tensor w = Tensor::uniform(Shape({32, 16}), rng, -1.0f, 1.0f);
    Tensor y1 = ops::gemm(x, false, w, true);           // [8x32]
    Tensor y2t = ops::gemm(w, false, x, true);          // [32x8]
    Tensor y2 = ops::transpose2d(y2t);
    ASSERT_EQ(y1.shape(), y2.shape());
    for (int64_t i = 0; i < y1.numel(); ++i)
        EXPECT_NEAR(y1.at(i), y2.at(i), 1e-4);
}

TEST(Gemm, RejectsMismatchedInner)
{
    Tensor a = Tensor::zeros(Shape({2, 3}));
    Tensor b = Tensor::zeros(Shape({4, 5}));
    EXPECT_DEATH({ ops::gemm(a, false, b, false); }, "");
}

TEST(Bmm, BatchesIndependently)
{
    Rng rng(5);
    Tensor a = Tensor::uniform(Shape({2, 3, 4}), rng);
    Tensor b = Tensor::uniform(Shape({2, 4, 5}), rng);
    Tensor c = ops::bmm(a, false, b, false);
    ASSERT_EQ(c.shape(), Shape({2, 3, 5}));
    for (int64_t bi = 0; bi < 2; ++bi) {
        Tensor ab = ops::slice(a, 0, bi, bi + 1).reshape(Shape({3, 4}));
        Tensor bb = ops::slice(b, 0, bi, bi + 1).reshape(Shape({4, 5}));
        Tensor ref = ops::gemm(ab, false, bb, false);
        for (int64_t i = 0; i < 15; ++i)
            EXPECT_NEAR(c.at(bi * 15 + i), ref.at(i), 1e-5);
    }
}

// ----------------------------------------------------------------------
// Element-wise and broadcast ops
// ----------------------------------------------------------------------

TEST(Elementwise, AddSubMul)
{
    Tensor a(Shape({3}), {1, 2, 3});
    Tensor b(Shape({3}), {4, 5, 6});
    EXPECT_FLOAT_EQ(ops::add(a, b).at(1), 7.0f);
    EXPECT_FLOAT_EQ(ops::sub(a, b).at(1), -3.0f);
    EXPECT_FLOAT_EQ(ops::mul(a, b).at(1), 10.0f);
    EXPECT_FLOAT_EQ(ops::axpy(a, b, 2.0f).at(2), 15.0f);
}

TEST(Elementwise, Activations)
{
    Tensor x(Shape({3}), {-1.0f, 0.0f, 1.0f});
    EXPECT_NEAR(ops::tanh(x).at(0), std::tanh(-1.0f), 1e-6);
    EXPECT_NEAR(ops::sigmoid(x).at(2), 1.0f / (1.0f + std::exp(-1.0f)),
                1e-6);
    EXPECT_FLOAT_EQ(ops::relu(x).at(0), 0.0f);
    EXPECT_FLOAT_EQ(ops::relu(x).at(2), 1.0f);
    EXPECT_FLOAT_EQ(ops::square(x).at(0), 1.0f);
    EXPECT_FLOAT_EQ(ops::negate(x).at(2), -1.0f);
}

TEST(Elementwise, BiasAndReduce)
{
    Tensor x(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
    Tensor b(Shape({3}), {10, 20, 30});
    Tensor y = ops::addBias(x, b);
    EXPECT_FLOAT_EQ(y.at(1, 2), 36.0f);
    Tensor s = ops::sumToBias(y, 3);
    EXPECT_FLOAT_EQ(s.at(0), 1 + 4 + 20.0f);
}

TEST(Broadcast, AddBTAndSumAxis1RoundTrip)
{
    Rng rng(23);
    Tensor x = Tensor::zeros(Shape({2, 3, 4}));
    Tensor q = Tensor::uniform(Shape({2, 4}), rng);
    Tensor y = ops::broadcastAddBT(x, q);
    for (int64_t b = 0; b < 2; ++b)
        for (int64_t t = 0; t < 3; ++t)
            for (int64_t h = 0; h < 4; ++h)
                EXPECT_FLOAT_EQ(y.at(b, t, h), q.at(b, h));
    Tensor s = ops::sumAxis1(y);
    for (int64_t b = 0; b < 2; ++b)
        for (int64_t h = 0; h < 4; ++h)
            EXPECT_NEAR(s.at(b, h), 3.0f * q.at(b, h), 1e-5);
}

TEST(Broadcast, DotAndOuterLastAxis)
{
    Tensor x(Shape({1, 2, 3}), {1, 2, 3, 4, 5, 6});
    Tensor v(Shape({3}), {1, 0, 2});
    Tensor d = ops::dotLastAxis(x, v);
    ASSERT_EQ(d.shape(), Shape({1, 2}));
    EXPECT_FLOAT_EQ(d.at(0), 1 + 6.0f);
    EXPECT_FLOAT_EQ(d.at(1), 4 + 12.0f);

    Tensor o = ops::outerLastAxis(d, v);
    ASSERT_EQ(o.shape(), Shape({1, 2, 3}));
    EXPECT_FLOAT_EQ(o.at(0, 1, 2), d.at(1) * 2.0f);
}

TEST(Broadcast, ScaleRowsAndRowDot)
{
    Tensor x(Shape({1, 2, 2}), {1, 2, 3, 4});
    Tensor w(Shape({1, 2}), {2, 3});
    Tensor y = ops::scaleRowsBT(x, w);
    EXPECT_FLOAT_EQ(y.at(0, 0, 1), 4.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1, 0), 9.0f);

    Tensor d = ops::rowDotBT(x, x);
    EXPECT_FLOAT_EQ(d.at(0), 5.0f);
    EXPECT_FLOAT_EQ(d.at(1), 25.0f);
}

// ----------------------------------------------------------------------
// Shape ops
// ----------------------------------------------------------------------

TEST(ShapeOps, Transpose2d)
{
    Tensor a(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
    Tensor t = ops::transpose2d(a);
    ASSERT_EQ(t.shape(), Shape({3, 2}));
    EXPECT_FLOAT_EQ(t.at(2, 1), 6.0f);
    EXPECT_FLOAT_EQ(t.at(0, 1), 4.0f);
}

TEST(ShapeOps, Permute3dRoundTrip)
{
    Rng rng(31);
    Tensor a = Tensor::uniform(Shape({2, 3, 4}), rng);
    Tensor p = ops::permute3d(a, {2, 0, 1});
    ASSERT_EQ(p.shape(), Shape({4, 2, 3}));
    EXPECT_FLOAT_EQ(p.at(3, 1, 2), a.at(1, 2, 3));
    Tensor back = ops::permute3d(p, {1, 2, 0});
    for (int64_t i = 0; i < a.numel(); ++i)
        EXPECT_FLOAT_EQ(back.at(i), a.at(i));
}

TEST(ShapeOps, ConcatAndSliceInverse)
{
    Tensor a(Shape({2, 2}), {1, 2, 3, 4});
    Tensor b(Shape({2, 3}), {5, 6, 7, 8, 9, 10});
    Tensor c = ops::concat({a, b}, 1);
    ASSERT_EQ(c.shape(), Shape({2, 5}));
    EXPECT_FLOAT_EQ(c.at(1, 1), 4.0f);
    EXPECT_FLOAT_EQ(c.at(1, 4), 10.0f);

    Tensor sa = ops::slice(c, 1, 0, 2);
    Tensor sb = ops::slice(c, 1, 2, 5);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(sa.at(i), a.at(i));
    for (int64_t i = 0; i < 6; ++i)
        EXPECT_FLOAT_EQ(sb.at(i), b.at(i));
}

TEST(ShapeOps, ConcatAxis0)
{
    Tensor a(Shape({1, 2}), {1, 2});
    Tensor b(Shape({2, 2}), {3, 4, 5, 6});
    Tensor c = ops::concat({a, b}, 0);
    ASSERT_EQ(c.shape(), Shape({3, 2}));
    EXPECT_FLOAT_EQ(c.at(2, 1), 6.0f);
}

TEST(ShapeOps, ReverseAxisIsInvolution)
{
    Rng rng(37);
    Tensor a = Tensor::uniform(Shape({3, 2, 2}), rng);
    Tensor r = ops::reverseAxis(a, 0);
    EXPECT_FLOAT_EQ(r.at(0, 1, 1), a.at(2, 1, 1));
    Tensor rr = ops::reverseAxis(r, 0);
    for (int64_t i = 0; i < a.numel(); ++i)
        EXPECT_FLOAT_EQ(rr.at(i), a.at(i));
}

// ----------------------------------------------------------------------
// NN ops
// ----------------------------------------------------------------------

TEST(NN, SoftmaxRowsSumToOne)
{
    Rng rng(41);
    Tensor x = Tensor::uniform(Shape({4, 7}), rng, -5.0f, 5.0f);
    Tensor y = ops::softmaxLastAxis(x);
    for (int64_t r = 0; r < 4; ++r) {
        double s = 0.0;
        for (int64_t j = 0; j < 7; ++j) {
            EXPECT_GT(y.at(r, j), 0.0f);
            s += y.at(r, j);
        }
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(NN, SoftmaxIsShiftInvariantAndStable)
{
    Tensor x(Shape({1, 3}), {1000.0f, 1001.0f, 1002.0f});
    Tensor y = ops::softmaxLastAxis(x);
    EXPECT_TRUE(y.allFinite());
    Tensor x2(Shape({1, 3}), {0.0f, 1.0f, 2.0f});
    Tensor y2 = ops::softmaxLastAxis(x2);
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_NEAR(y.at(i), y2.at(i), 1e-5);
}

TEST(NN, LogSoftmaxMatchesLogOfSoftmax)
{
    Rng rng(43);
    Tensor x = Tensor::uniform(Shape({2, 5}), rng, -3.0f, 3.0f);
    Tensor ls = ops::logSoftmaxLastAxis(x);
    Tensor s = ops::softmaxLastAxis(x);
    for (int64_t i = 0; i < x.numel(); ++i)
        EXPECT_NEAR(ls.at(i), std::log(s.at(i)), 1e-5);
}

TEST(NN, CrossEntropyUniformLogitsIsLogV)
{
    Tensor logits = Tensor::zeros(Shape({4, 10}));
    Tensor labels(Shape({4}), {0, 3, 5, 9});
    Tensor loss = ops::crossEntropy(logits, labels);
    EXPECT_NEAR(loss.at(0), std::log(10.0), 1e-5);
}

TEST(NN, CrossEntropyIgnoresPadding)
{
    Tensor logits = Tensor::zeros(Shape({2, 4}));
    logits.at(0, 1) = 10.0f;
    Tensor labels(Shape({2}), {1.0f, -1.0f});
    Tensor loss = ops::crossEntropy(logits, labels);
    EXPECT_LT(loss.at(0), 0.01f);
}

TEST(NN, CrossEntropyGradSumsToZeroPerRow)
{
    Rng rng(47);
    Tensor logits = Tensor::uniform(Shape({3, 6}), rng, -2.0f, 2.0f);
    Tensor labels(Shape({3}), {0, 2, 5});
    Tensor g = ops::crossEntropyGrad(logits, labels);
    for (int64_t r = 0; r < 3; ++r) {
        double s = 0.0;
        for (int64_t j = 0; j < 6; ++j)
            s += g.at(r, j);
        EXPECT_NEAR(s, 0.0, 1e-5);
    }
}

TEST(NN, LayerNormNormalizesRows)
{
    Rng rng(53);
    Tensor x = Tensor::uniform(Shape({3, 16}), rng, -4.0f, 4.0f);
    Tensor y = ops::layerNormLastAxis(x);
    for (int64_t r = 0; r < 3; ++r) {
        double mean = 0.0, var = 0.0;
        for (int64_t j = 0; j < 16; ++j)
            mean += y.at(r, j);
        mean /= 16.0;
        for (int64_t j = 0; j < 16; ++j)
            var += (y.at(r, j) - mean) * (y.at(r, j) - mean);
        var /= 16.0;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(NN, EmbeddingLookupAndGrad)
{
    Tensor table(Shape({3, 2}), {0, 1, 10, 11, 20, 21});
    Tensor ids(Shape({2, 2}), {2, 0, 1, 2});
    Tensor y = ops::embeddingLookup(table, ids);
    ASSERT_EQ(y.shape(), Shape({2, 2, 2}));
    EXPECT_FLOAT_EQ(y.at(0, 0, 0), 20.0f);
    EXPECT_FLOAT_EQ(y.at(1, 0, 1), 11.0f);

    Tensor dy = Tensor::full(Shape({2, 2, 2}), 1.0f);
    Tensor dt = ops::embeddingGrad(table, ids, dy);
    // Token 2 appears twice -> each of its columns accumulates 2.
    EXPECT_FLOAT_EQ(dt.at(2, 0), 2.0f);
    EXPECT_FLOAT_EQ(dt.at(0, 0), 1.0f);
}

TEST(NN, EmbeddingPaddingGivesZeroVector)
{
    Tensor table(Shape({2, 2}), {1, 2, 3, 4});
    Tensor ids(Shape({2}), {-1.0f, 1.0f});
    Tensor y = ops::embeddingLookup(table, ids);
    EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(1, 1), 4.0f);
}

// ----------------------------------------------------------------------
// Blocked GEMM vs golden reference, and thread-count determinism
// ----------------------------------------------------------------------

TEST_P(GemmTransposes, BlockedMatchesReferenceAcrossBlockBoundaries)
{
    // Sizes straddle the Mc=64 / Kc=256 / Nc=512 blocking boundaries
    // with ragged micro-tile tails, so packing, K-panel accumulation,
    // and edge handling are all exercised.  The blocked kernel sums in
    // a different (fixed) order than the reference, so exact equality
    // is not expected — only closeness.
    const auto [ta, tb] = GetParam();
    const int64_t m = 67, n = 130, k = 300;
    Rng rng(23);
    Tensor a = Tensor::uniform(ta ? Shape({k, m}) : Shape({m, k}), rng,
                               -0.5f, 0.5f);
    Tensor b = Tensor::uniform(tb ? Shape({n, k}) : Shape({k, n}), rng,
                               -0.5f, 0.5f);
    Tensor c = ops::gemm(a, ta, b, tb, 0.75f);
    Tensor ref = ops::gemmReference(a, ta, b, tb, 0.75f);
    ASSERT_EQ(c.shape(), ref.shape());
    for (int64_t i = 0; i < c.numel(); ++i)
        ASSERT_NEAR(c.at(i), ref.at(i), 2e-3) << "element " << i;
}

TEST(Gemm, BitIdenticalAcrossThreadCounts)
{
    // Big enough that the blocked kernel actually splits row blocks
    // across threads; the chunking must not change a single bit.
    Rng rng(29);
    Tensor a = Tensor::uniform(Shape({200, 300}), rng, -1.0f, 1.0f);
    Tensor b = Tensor::uniform(Shape({300, 170}), rng, -1.0f, 1.0f);
    ThreadPool::setGlobalNumThreads(1);
    Tensor c1 = ops::gemm(a, false, b, false);
    ThreadPool::setGlobalNumThreads(8);
    Tensor c8 = ops::gemm(a, false, b, false);
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
    ASSERT_EQ(c1.shape(), c8.shape());
    EXPECT_EQ(std::memcmp(c1.data(), c8.data(),
                          static_cast<size_t>(c1.numel()) *
                              sizeof(float)),
              0);
}

TEST(Elementwise, BitIdenticalAcrossThreadCounts)
{
    // One representative of each parallelization scheme: element-wise
    // map, row-wise reduction, column-wise accumulation, and the
    // column-parallel scatter-add of embeddingGrad.
    const int64_t rows = 512, cols = 96;
    Rng rng(31);
    Tensor x = Tensor::uniform(Shape({rows, cols}), rng, -2.0f, 2.0f);
    Tensor table = Tensor::uniform(Shape({40, cols}), rng);
    Tensor ids(Shape({rows}));
    for (int64_t i = 0; i < rows; ++i)
        ids.at(i) = static_cast<float>(i % 40);

    auto all = [&] {
        std::vector<Tensor> r;
        r.push_back(ops::tanh(x));
        r.push_back(ops::softmaxLastAxis(x));
        r.push_back(ops::layerNormLastAxis(x));
        r.push_back(ops::sumToBias(x, cols));
        r.push_back(ops::embeddingGrad(table, ids, x));
        return r;
    };
    ThreadPool::setGlobalNumThreads(1);
    const std::vector<Tensor> serial = all();
    ThreadPool::setGlobalNumThreads(8);
    const std::vector<Tensor> threaded = all();
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
    ASSERT_EQ(serial.size(), threaded.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].shape(), threaded[i].shape());
        EXPECT_EQ(std::memcmp(serial[i].data(), threaded[i].data(),
                              static_cast<size_t>(serial[i].numel()) *
                                  sizeof(float)),
                  0)
            << "kernel " << i;
    }
}

} // namespace
} // namespace echo
