/**
 * @file
 * Tests for the contract-checked pass manager: spec parsing and env
 * alias resolution, static pipeline-legality validation (including the
 * exact diagnostics for the canonical illegal orderings), postcondition
 * checking against a deliberately invariant-breaking pass, per-stage IR
 * snapshot diffs, and the byte-identity contract across every legal
 * pipeline permutation at 1/2/4 threads.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "data/batcher.h"
#include "analysis/numeric_verify.h"
#include "graph/executor.h"
#include "models/word_lm.h"
#include "pass/builtin_passes.h"
#include "pass/pass_manager.h"

namespace echo::pass {
namespace {

/** Set (or clear, with nullptr) an env var for one scope. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name)) {
            had_old_ = true;
            old_ = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_old_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }
    ScopedEnv(const ScopedEnv &) = delete;
    ScopedEnv &operator=(const ScopedEnv &) = delete;

  private:
    std::string name_;
    bool had_old_ = false;
    std::string old_;
};

models::WordLmConfig
tinyLmConfig()
{
    models::WordLmConfig cfg;
    cfg.vocab = 50;
    cfg.hidden = 8;
    cfg.layers = 2;
    cfg.batch = 4;
    cfg.seq_len = 6;
    return cfg;
}

data::Corpus
tinyCorpus()
{
    data::CorpusConfig cfg;
    cfg.vocab = data::Vocab{50};
    cfg.num_tokens = 2000;
    cfg.seed = 3;
    return data::Corpus::generate(cfg);
}

// ---------------------------------------------------------------------
// Spec parsing and resolution
// ---------------------------------------------------------------------

TEST(PassSpec, ParseSplitsTrimsAndHandlesNone)
{
    EXPECT_EQ(parseSpec("autodiff,fusion"),
              (std::vector<std::string>{"autodiff", "fusion"}));
    EXPECT_EQ(parseSpec(" autodiff , fusion ,, recompute "),
              (std::vector<std::string>{"autodiff", "fusion",
                                        "recompute"}));
    EXPECT_TRUE(parseSpec("").empty());
    EXPECT_TRUE(parseSpec("none").empty());
    // "none" is only the empty pipeline when it is the whole spec.
    EXPECT_EQ(parseSpec("none,fusion"),
              (std::vector<std::string>{"none", "fusion"}));
}

TEST(PassSpec, DefaultsPerPipelineKind)
{
    EXPECT_EQ(defaultSpec(PipelineKind::kTraining), "autodiff,fusion");
    EXPECT_EQ(defaultSpec(PipelineKind::kInference), "fusion");
}

TEST(PassSpec, ExplicitRequestWinsOverEnv)
{
    ScopedEnv passes("ECHO_PASSES", "fusion");
    ScopedEnv fus("ECHO_FUSION", "0");
    EXPECT_EQ(resolveSpec(PipelineKind::kTraining, "autodiff,recompute"),
              "autodiff,recompute");
}

TEST(PassSpec, EchoPassesEnvOverridesDefault)
{
    ScopedEnv passes("ECHO_PASSES", "autodiff,recompute");
    ScopedEnv fus("ECHO_FUSION", nullptr);
    ScopedEnv ver("ECHO_VERIFY", nullptr);
    EXPECT_EQ(resolveSpec(PipelineKind::kTraining, ""),
              "autodiff,recompute");
}

TEST(PassSpec, DeprecatedFusionAliasRewritesDefault)
{
    ScopedEnv passes("ECHO_PASSES", nullptr);
    ScopedEnv fus("ECHO_FUSION", "0");
    ScopedEnv ver("ECHO_VERIFY", nullptr);
    EXPECT_EQ(resolveSpec(PipelineKind::kTraining, ""), "autodiff");
    // The inference default is fusion alone, so the alias empties it.
    EXPECT_EQ(resolveSpec(PipelineKind::kInference, ""), "none");
}

TEST(PassSpec, DeprecatedVerifyAliasAppendsVerifyPass)
{
    ScopedEnv passes("ECHO_PASSES", nullptr);
    ScopedEnv fus("ECHO_FUSION", nullptr);
    ScopedEnv ver("ECHO_VERIFY", "1");
    EXPECT_EQ(resolveSpec(PipelineKind::kTraining, ""),
              "autodiff,fusion,verify");
}

TEST(PassSpec, BothAliasesCompose)
{
    ScopedEnv passes("ECHO_PASSES", nullptr);
    ScopedEnv fus("ECHO_FUSION", "0");
    ScopedEnv ver("ECHO_VERIFY", "1");
    EXPECT_EQ(resolveSpec(PipelineKind::kTraining, ""),
              "autodiff,verify");
}

TEST(PassRegistry, BuiltinsRegisteredUnknownsNot)
{
    EXPECT_TRUE(isRegisteredPass("autodiff"));
    EXPECT_TRUE(isRegisteredPass("fusion"));
    EXPECT_TRUE(isRegisteredPass("recompute"));
    EXPECT_TRUE(isRegisteredPass("layout"));
    EXPECT_TRUE(isRegisteredPass("gemm_warm"));
    EXPECT_TRUE(isRegisteredPass("audit_fusion"));
    EXPECT_TRUE(isRegisteredPass("verify"));
    EXPECT_FALSE(isRegisteredPass("bogus"));
    EXPECT_EQ(makePass("bogus"), nullptr);
}

TEST(PassRegistry, BuiltinCheckersResolvable)
{
    for (const char *name :
         {"graph-verify", "lifetime", "hazards", "fusion-audit",
          "recompute-audit", "workspace-aliasing"}) {
        EXPECT_NE(findChecker(name), nullptr) << name;
    }
    EXPECT_EQ(findChecker("bogus-checker"), nullptr);
}

// ---------------------------------------------------------------------
// Static pipeline-legality validation
// ---------------------------------------------------------------------

/** The invariants a fresh forward graph starts with. */
std::set<Invariant>
freshGraphInvariants()
{
    return {Invariant::kDifferentiable};
}

TEST(PipelineLegality, RecomputeBeforeAutodiffRejectedStatically)
{
    const PassManager pm = buildPipeline("recompute,autodiff");
    const std::vector<ContractViolation> violations =
        pm.validate(freshGraphInvariants());
    ASSERT_EQ(violations.size(), 2u);

    // recompute's kGradients precondition is unmet, and the diagnostic
    // names autodiff as the too-late establisher.
    EXPECT_EQ(violations[0].pass, "recompute");
    EXPECT_EQ(violations[0].pass_index, 0u);
    EXPECT_EQ(violations[0].invariant, Invariant::kGradients);
    EXPECT_EQ(violations[0].establisher, "autodiff");
    EXPECT_NE(violations[0].message.find("requires invariant "
                                         "'gradients'"),
              std::string::npos)
        << violations[0].message;
    EXPECT_NE(violations[0].message.find("order it before"),
              std::string::npos)
        << violations[0].message;

    // ... and running recompute first also destroys the fresh-graph
    // invariant autodiff itself needs.
    EXPECT_EQ(violations[1].pass, "autodiff");
    EXPECT_EQ(violations[1].invariant, Invariant::kDifferentiable);
    EXPECT_EQ(violations[1].invalidator, "recompute");
    EXPECT_NE(violations[1].message.find("held at pipeline entry"),
              std::string::npos)
        << violations[1].message;
}

TEST(PipelineLegality, EstablishedThenClobberedNamesThePassPair)
{
    const PassManager pm =
        buildPipeline("autodiff,fusion,recompute,audit_fusion");
    const std::vector<ContractViolation> violations =
        pm.validate(freshGraphInvariants());
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].pass, "audit_fusion");
    EXPECT_EQ(violations[0].invariant, Invariant::kFusionJournal);
    EXPECT_EQ(violations[0].establisher, "fusion");
    EXPECT_EQ(violations[0].invalidator, "recompute");
    EXPECT_NE(violations[0].message.find("established by 'fusion'"),
              std::string::npos)
        << violations[0].message;
    EXPECT_NE(violations[0].message.find("invalidated by 'recompute'"),
              std::string::npos)
        << violations[0].message;
}

TEST(PipelineLegality, DefaultAndPermutedPipelinesAreLegal)
{
    for (const char *spec :
         {"autodiff,fusion", "autodiff,recompute",
          "autodiff,fusion,recompute", "autodiff,recompute,fusion",
          "autodiff,fusion,audit_fusion",
          "autodiff,layout,fusion,gemm_warm,verify", "fusion",
          "none"}) {
        const PassManager pm = buildPipeline(spec);
        EXPECT_TRUE(pm.validate(freshGraphInvariants()).empty())
            << spec;
    }
}

TEST(PipelineLegality, ServePresetsExpandAndAreStaticallyLegal)
{
    // The serving presets are names for inference pipelines; parseSpec
    // expands them, so env rewriting and echo-lint --pipeline see the
    // underlying pass lists.
    EXPECT_EQ(presetSpec("serve-wordlm"), "fusion,gemm_warm");
    EXPECT_EQ(presetSpec("serve-nmt"), "fusion,audit_fusion,gemm_warm");
    EXPECT_EQ(parseSpec("serve-wordlm"),
              (std::vector<std::string>{"fusion", "gemm_warm"}));
    EXPECT_EQ(defaultSpec(PipelineKind::kServeWordLm), "serve-wordlm");
    EXPECT_EQ(defaultSpec(PipelineKind::kServeNmt), "serve-nmt");

    // Both presets must be statically legal on a fresh forward graph:
    // sessions build them unconditionally at construction time.
    for (const char *preset : {"serve-wordlm", "serve-nmt"}) {
        const PassManager pm = buildPipeline(preset);
        EXPECT_TRUE(pm.validate(freshGraphInvariants()).empty())
            << preset;
    }
}

TEST(PipelineLegality, GemmWarmBeforeAutodiffIsStale)
{
    // autodiff appends backward GEMMs, so a warm-up that ran before it
    // no longer covers the graph: kGemmKeysWarm is invalidated.
    const PassManager pm = buildPipeline("autodiff,gemm_warm");
    EXPECT_TRUE(pm.validate(freshGraphInvariants()).empty());

    std::set<Invariant> warmed = freshGraphInvariants();
    warmed.insert(Invariant::kGemmKeysWarm);
    // Nothing requires kGemmKeysWarm, so this is legal — but the walk
    // must drop the invariant; audit via a pipeline that assumes it.
    const PassManager pm2 = buildPipeline("autodiff");
    EXPECT_TRUE(pm2.validate(warmed).empty());
}

TEST(PipelineLegality, AssumeLetsCallersResumeMidPipeline)
{
    graph::Graph g;
    PipelineContext ctx(g);
    // Fresh graph, no grads yet.
    EXPECT_EQ(ctx.initialInvariants(),
              std::set<Invariant>{Invariant::kDifferentiable});
    ctx.assume.push_back(Invariant::kFusionJournal);
    std::set<Invariant> initial = ctx.initialInvariants();
    EXPECT_EQ(initial.count(Invariant::kFusionJournal), 1u);
    // A journal-only pipeline becomes legal under the assumption.
    const PassManager pm = buildPipeline("audit_fusion");
    EXPECT_FALSE(pm.validate({Invariant::kDifferentiable}).empty());
    EXPECT_TRUE(pm.validate(initial).empty());
}

TEST(PipelineLegality, SpecRoundTripsThroughManager)
{
    const PassManager pm = buildPipeline("autodiff,fusion,recompute");
    EXPECT_EQ(pm.size(), 3u);
    EXPECT_EQ(pm.spec(), "autodiff,fusion,recompute");
    EXPECT_STREQ(pm.at(1).name(), "fusion");
}

// ---------------------------------------------------------------------
// Budget passes: registration, argument parsing, contract legality
// ---------------------------------------------------------------------

TEST(BudgetPassRegistry, PassesAndCheckersRegistered)
{
    EXPECT_TRUE(isRegisteredPass("plan"));
    EXPECT_TRUE(isRegisteredPass("recompute_budget"));
    EXPECT_NE(findChecker("memory-plan"), nullptr);
    EXPECT_NE(findChecker("plan-feasible"), nullptr);
}

TEST(BudgetPassRegistry, ConfigureRejectsMalformedArguments)
{
    const struct
    {
        const char *spec;
        const char *expect;
    } cases[] = {
        {"recompute_budget", "needs bytes="},
        {"recompute_budget(bytes=64KiB:fraction=0.5)",
         "exactly one of bytes= and fraction="},
        {"recompute_budget(fraction=1.5)", "fraction must be in"},
        {"recompute_budget(bytes=1MiB:solver=simplex)",
         "unknown solver"},
        {"recompute_budget(bytes=zero)", "bad byte size"},
        {"recompute_budget(pool=2GiB)", "unknown argument"},
        {"recompute_budget(bytes)", "malformed argument"},
    };
    for (const auto &c : cases) {
        std::string error;
        EXPECT_EQ(makePass(c.spec, &error), nullptr) << c.spec;
        EXPECT_NE(error.find(c.expect), std::string::npos)
            << c.spec << " -> " << error;
    }

    std::string error;
    const auto pass =
        makePass("recompute_budget(fraction=0.5:solver=lagrange)",
                 &error);
    ASSERT_NE(pass, nullptr) << error;
    EXPECT_STREQ(pass->name(),
                 "recompute_budget(fraction=0.5:solver=lagrange)");
}

TEST(PipelineLegality, BudgetBeforePlanRejectedStatically)
{
    const PassManager pm = buildPipeline(
        "autodiff,recompute_budget(bytes=64KiB),plan");
    const std::vector<ContractViolation> violations =
        pm.validate(freshGraphInvariants());
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].pass, "recompute_budget(bytes=64KiB)");
    EXPECT_EQ(violations[0].invariant, Invariant::kMemoryPlanned);
    EXPECT_EQ(violations[0].establisher, "plan");
    EXPECT_NE(violations[0].message.find("order it before"),
              std::string::npos)
        << violations[0].message;
}

TEST(PipelineLegality, BudgetSpecRoundTripsAndValidates)
{
    const std::string spec =
        "autodiff,plan,recompute_budget(bytes=64KiB:solver=dp)";
    const PassManager pm = buildPipeline(spec);
    EXPECT_EQ(pm.size(), 3u);
    EXPECT_EQ(pm.spec(), spec);
    EXPECT_STREQ(pm.at(2).name(),
                 "recompute_budget(bytes=64KiB:solver=dp)");
    EXPECT_TRUE(pm.validate(freshGraphInvariants()).empty());
}

// ---------------------------------------------------------------------
// Postcondition checking
// ---------------------------------------------------------------------

/** Deliberately invariant-breaking pass: records a fetch output shape
 *  that disagrees with the op signature, which the graph verifier's
 *  shape-inference replay must catch. */
class BadShapePass : public Pass
{
  public:
    const char *name() const override { return "bad-shape"; }
    void
    run(PipelineContext &ctx) override
    {
        const std::vector<graph::Val> eff = ctx.effectiveFetches();
        ASSERT_FALSE(eff.empty());
        graph::Node *node = eff[0].node;
        node->out_shapes[eff[0].index] =
            Shape({node->out_shapes[eff[0].index].numel() + 1});
    }
};

TEST(Postconditions, BuggyPassCaughtByGraphVerifier)
{
    models::WordLmModel model(tinyLmConfig(), "none");
    PipelineContext ctx(model.graph());
    ctx.loss = model.loss();
    for (const auto &[name, val] : model.weights())
        ctx.wrt.push_back(val);

    PassManager pm = buildPipeline("autodiff");
    pm.add(std::make_unique<BadShapePass>());

    // Statically legal — the bug is behavioral, not an ordering issue.
    EXPECT_TRUE(pm.validate(ctx.initialInvariants()).empty());

    const PipelineReport report = pm.run(ctx);
    EXPECT_TRUE(report.aborted);
    EXPECT_FALSE(report.ok());
    ASSERT_EQ(report.stages.size(), 2u);
    EXPECT_EQ(report.stages[1].pass, "bad-shape");
    EXPECT_GT(report.stages[1].post.errorCount(), 0);
    EXPECT_NE(report.toString().find("shape-mismatch"),
              std::string::npos)
        << report.toString();
}

TEST(PostconditionsDeathTest, RunOrDiePanicsOnBuggyPass)
{
    models::WordLmModel model(tinyLmConfig(), "none");
    PipelineContext ctx(model.graph());
    ctx.loss = model.loss();
    for (const auto &[name, val] : model.weights())
        ctx.wrt.push_back(val);

    PassManager pm = buildPipeline("autodiff");
    pm.add(std::make_unique<BadShapePass>());
    EXPECT_DEATH(pm.runOrDie(ctx, "test pipeline"), "postcondition");
}

TEST(PostconditionsDeathTest, RunPanicsOnStaticallyIllegalPipeline)
{
    models::WordLmModel model(tinyLmConfig(), "none");
    PipelineContext ctx(model.graph());
    ctx.loss = model.loss();
    for (const auto &[name, val] : model.weights())
        ctx.wrt.push_back(val);

    const PassManager pm = buildPipeline("recompute,autodiff");
    EXPECT_DEATH(pm.run(ctx), "contract violation");
}

TEST(Postconditions, CleanPipelineReportsCheckersRun)
{
    models::WordLmModel model(tinyLmConfig(), "autodiff,fusion");
    const PipelineReport &report = model.pipelineReport();
    EXPECT_TRUE(report.ok());
    ASSERT_EQ(report.stages.size(), 2u);
    // autodiff runs its default graph-verify postcondition; fusion
    // declares graph-verify + fusion-audit.
    EXPECT_EQ(report.stages[0].checkers_run,
              (std::vector<std::string>{"graph-verify"}));
    EXPECT_EQ(report.stages[1].checkers_run,
              (std::vector<std::string>{"graph-verify",
                                        "fusion-audit"}));
    EXPECT_EQ(report.stages[1].post.errorCount(), 0);
}

// ---------------------------------------------------------------------
// IR snapshot diffs
// ---------------------------------------------------------------------

TEST(StageDiffs, AutodiffGrowsGraphFusionShrinksReachableSet)
{
    models::WordLmModel model(tinyLmConfig(), "autodiff,fusion");
    const PipelineReport &report = model.pipelineReport();
    ASSERT_EQ(report.stages.size(), 2u);

    const StageReport &ad = report.stages[0];
    EXPECT_EQ(ad.pass, "autodiff");
    EXPECT_GT(ad.nodes_after, ad.nodes_before);
    EXPECT_GT(ad.reachable_after, ad.reachable_before);
    EXPECT_GT(ad.bytes_after, ad.bytes_before);

    const StageReport &fu = report.stages[1];
    EXPECT_EQ(fu.pass, "fusion");
    // Fusion only retypes/redirects; the graph never loses nodes.
    EXPECT_GE(fu.nodes_after, fu.nodes_before);
    if (model.fusionResult().num_groups > 0) {
        // Interior nodes of fused groups drop out of the fetch cone.
        EXPECT_LT(fu.reachable_after, fu.reachable_before);
    }
}

TEST(Postconditions, LateFusionNeverRetypesPinnedReplayTemplates)
{
    // Regression: with the default fused replay, the recompute rewrite
    // leaves FusedRegionOp nodes that re-execute their template nodes'
    // op live.  A later fusion pass used to retype those templates in
    // place (new op, new input arity), so the replay fed stale inputs
    // to the new op and crashed at execution.  Fusion must claim every
    // pinned node up front and leave it alone.
    models::WordLmModel model(tinyLmConfig(),
                              "autodiff,recompute,fusion");
    ASSERT_TRUE(model.pipelineReport().ok());
    int pinned = 0;
    for (const auto &node : model.graph().nodes()) {
        if (node->op == nullptr)
            continue;
        for (const graph::Node *t : node->op->pinnedNodes()) {
            ++pinned;
            ASSERT_NE(t->op, nullptr);
            EXPECT_NE(t->op->name(), "fused_ew")
                << "replay template #" << t->id
                << " was retyped by the late fusion pass";
        }
    }
    // Non-vacuity: the rewrite did compile fused regions over
    // templates, and fusion still found groups elsewhere.
    EXPECT_GT(pinned, 0);
    EXPECT_GT(model.fusionResult().num_groups, 0);
}

// ---------------------------------------------------------------------
// Byte-identity across legal pipeline permutations and thread counts
// ---------------------------------------------------------------------

TEST(PipelinePermutations, ByteIdenticalFetchesAcrossThreads)
{
    const models::WordLmConfig cfg = tinyLmConfig();
    data::Corpus corpus = tinyCorpus();
    data::LmBatcher batcher(corpus, cfg.batch, cfg.seq_len);
    const data::LmBatch batch = batcher.next();

    // Reference: plain autodiff, no graph optimization, one thread.
    models::WordLmModel reference(cfg, "autodiff");
    Rng rng(11);
    models::ParamStore params = reference.initialParams(rng);
    ThreadPool::setGlobalNumThreads(1);
    graph::Executor ref_ex(reference.fetches());
    const std::vector<Tensor> ref_out =
        ref_ex.run(reference.makeFeed(params, batch));

    const char *specs[] = {
        "autodiff",
        "autodiff,fusion",
        "autodiff,recompute",
        "autodiff,fusion,recompute",
        "autodiff,recompute,fusion",
        "autodiff,layout,fusion,gemm_warm",
    };
    for (const char *spec : specs) {
        models::WordLmModel model(cfg, spec);
        ASSERT_TRUE(model.pipelineReport().ok()) << spec;
        for (const int threads : {1, 2, 4}) {
            ThreadPool::setGlobalNumThreads(threads);
            graph::Executor ex(model.fetches());
            const std::vector<Tensor> out =
                ex.run(model.makeFeed(params, batch));
            const analysis::VerifyResult vr =
                analysis::compareFetches(out, ref_out);
            EXPECT_TRUE(vr.identical())
                << "spec '" << spec << "' at " << threads
                << " thread(s): max abs diff " << vr.max_abs_diff;
        }
    }
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}

} // namespace
} // namespace echo::pass
