/**
 * @file
 * Tests for liveness analysis, the pool planner (including the paper's
 * workspace-sharing behaviour), and the memory profiler's category
 * attribution.
 */
#include <gtest/gtest.h>

#include "graph/autodiff.h"
#include "graph/ops/oplib.h"
#include "memory/liveness.h"
#include "memory/planner.h"
#include "memory/profiler.h"

namespace echo::memory {
namespace {

namespace ol = graph::oplib;
using graph::Graph;
using graph::Phase;

TEST(Liveness, IntervalsCoverConsumers)
{
    Graph g;
    Val x = g.placeholder(Shape({4}), "x");
    Val a = g.apply1(ol::tanhOp(), {x});
    Val b = g.apply1(ol::sigmoidOp(), {a});
    Val c = g.apply1(ol::add(), {a, b});

    const LivenessResult live = analyzeLiveness({c});
    const ValueInfo &ia = live.values[live.index.at(a)];
    const ValueInfo &ib = live.values[live.index.at(b)];
    // a is used by both b's node and c's node; last use is c.
    EXPECT_EQ(ia.last_use_pos, live.values[live.index.at(c)].def_pos);
    EXPECT_GT(ia.last_use_pos, ib.def_pos);
}

TEST(Liveness, CategoriesFollowPaperTaxonomy)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 3}), "x");
    Val w = g.weight(Shape({4, 3}), "w");
    Val y = g.apply1(ol::gemm(false, true), {x, w});
    Val t = g.apply1(ol::tanhOp(), {y});
    Val loss = g.apply1(ol::crossEntropyLoss(),
                        {t, g.placeholder(Shape({2}), "labels")});
    auto gr = graph::backward(g, loss, {w});

    std::vector<Val> fetches = {loss};
    fetches.insert(fetches.end(), gr.weight_grads.begin(),
                   gr.weight_grads.end());
    const LivenessResult live =
        analyzeLiveness(fetches, gr.weight_grads);

    EXPECT_EQ(live.values[live.index.at(x)].category,
              DataStructure::kPlaceholders);
    EXPECT_EQ(live.values[live.index.at(w)].category,
              DataStructure::kWeights);
    // tanh output feeds its backward grad kernel -> feature map.
    EXPECT_EQ(live.values[live.index.at(t)].category,
              DataStructure::kFeatureMaps);
    // Weight gradient counted under Weights.
    EXPECT_EQ(live.values[live.index.at(gr.weight_grads[0])].category,
              DataStructure::kWeights);
    // Weights and placeholders are persistent.
    EXPECT_TRUE(live.values[live.index.at(w)].persistent);
    EXPECT_TRUE(live.values[live.index.at(x)].persistent);
}

TEST(Planner, ReusesDisjointLifetimes)
{
    // Equal-size transients with staggered lifetimes share slots: at
    // most two are live at once, so the pool holds two 4 KB slots while
    // the no-reuse baseline needs one per transient.
    Graph g;
    Val x = g.placeholder(Shape({1024}), "x");
    Val a = g.apply1(ol::tanhOp(), {x});
    Val b = g.apply1(ol::sigmoidOp(), {a}); // a dies here
    Val c = g.apply1(ol::tanhOp(), {b});    // b dies here
    Val d = g.apply1(ol::sigmoidOp(), {c}); // c dies here

    const LivenessResult live = analyzeLiveness({d});
    const MemoryPlan plan = planMemory(live);
    PlannerOptions no_reuse;
    no_reuse.reuse_transients = false;
    const MemoryPlan plan2 = planMemory(live, no_reuse);
    EXPECT_EQ(plan.pool_peak_bytes, 2 * 4096);
    EXPECT_EQ(plan2.pool_peak_bytes, 3 * 4096);
}

TEST(Planner, OverlappingLifetimesDoNotAlias)
{
    Graph g;
    Val x = g.placeholder(Shape({256}), "x");
    Val a = g.apply1(ol::tanhOp(), {x});
    Val b = g.apply1(ol::sigmoidOp(), {x});
    Val c = g.apply1(ol::add(), {a, b}); // a and b both live here

    const LivenessResult live = analyzeLiveness({c});
    const MemoryPlan plan = planMemory(live);
    const auto &alloc_a = plan.offsets.at(a);
    const auto &alloc_b = plan.offsets.at(b);
    const bool disjoint =
        alloc_a.offset + alloc_a.bytes <= alloc_b.offset ||
        alloc_b.offset + alloc_b.bytes <= alloc_a.offset;
    EXPECT_TRUE(disjoint);
}

TEST(Planner, PropertyNoLiveOverlapInPool)
{
    // Build a wider graph and assert the planner never overlaps two
    // values that are simultaneously live.
    Graph g;
    Val x = g.placeholder(Shape({64, 64}), "x");
    std::vector<Val> vals;
    Val cur = x;
    for (int i = 0; i < 8; ++i) {
        Val t = g.apply1(i % 2 ? ol::tanhOp() : ol::sigmoidOp(), {cur});
        Val u = g.apply1(ol::mul(), {t, cur});
        vals.push_back(t);
        vals.push_back(u);
        cur = u;
    }
    const LivenessResult live = analyzeLiveness({cur});
    const MemoryPlan plan = planMemory(live);

    for (const ValueInfo &a : live.values) {
        if (a.persistent)
            continue;
        for (const ValueInfo &b : live.values) {
            if (b.persistent || a.val == b.val)
                continue;
            const bool lifetimes_overlap =
                a.def_pos <= b.last_use_pos &&
                b.def_pos <= a.last_use_pos;
            if (!lifetimes_overlap)
                continue;
            const auto &aa = plan.offsets.at(a.val);
            const auto &ab = plan.offsets.at(b.val);
            const bool disjoint =
                aa.offset + aa.bytes <= ab.offset ||
                ab.offset + ab.bytes <= aa.offset;
            EXPECT_TRUE(disjoint)
                << "overlapping allocation for simultaneously live "
                   "values";
        }
    }
}

TEST(Planner, PersistentBytesCounted)
{
    Graph g;
    Val w = g.weight(Shape({256}), "w"); // 1 KB
    Val y = g.apply1(ol::tanhOp(), {w});
    const LivenessResult live = analyzeLiveness({y});
    const MemoryPlan plan = planMemory(live);
    // w persistent (1 KB) + y fetched (persistent).
    EXPECT_EQ(plan.persistent_bytes, 2 * 1024);
    EXPECT_EQ(plan.pool_peak_bytes, 0);
}

TEST(Planner, AlignmentRespected)
{
    Graph g;
    Val x = g.placeholder(Shape({3}), "x"); // 12 bytes
    Val a = g.apply1(ol::tanhOp(), {x});
    Val b = g.apply1(ol::sigmoidOp(), {a});
    const LivenessResult live = analyzeLiveness({b});
    const MemoryPlan plan = planMemory(live);
    for (const auto &[val, alloc] : plan.offsets) {
        EXPECT_EQ(alloc.offset % 256, 0);
        EXPECT_EQ(alloc.bytes % 256, 0);
    }
}

TEST(Profiler, AttributesFeatureMapsAndLayers)
{
    Graph g;
    Val x = g.placeholder(Shape({8, 16}), "x");
    Val w = g.weight(Shape({16, 16}), "w");
    Val h;
    {
        graph::TagScope tag(g, "rnn");
        h = g.apply1(ol::tanhOp(),
                     {g.apply1(ol::gemm(false, true), {x, w})});
    }
    Val labels = g.placeholder(Shape({8}), "labels");
    Val loss;
    {
        graph::TagScope tag(g, "output");
        loss = g.apply1(ol::crossEntropyLoss(), {h, labels});
    }
    auto gr = graph::backward(g, loss, {w});
    std::vector<Val> fetches = {loss, gr.weight_grads[0]};

    ProfilerOptions opts;
    opts.cuda_context_bytes = 0;
    const MemoryProfile prof =
        profileMemory(fetches, gr.weight_grads, opts);

    EXPECT_GT(prof.planned_bytes, 0);
    EXPECT_GT(prof.by_data_structure.at(DataStructure::kFeatureMaps), 0);
    EXPECT_GT(prof.by_layer.at("rnn"), 0);
    EXPECT_GE(prof.device_bytes, prof.planned_bytes);

    // Fractions sum to ~1 across data structures.
    double total = 0.0;
    for (const auto &[ds, bytes] : prof.by_data_structure)
        total += static_cast<double>(bytes);
    EXPECT_DOUBLE_EQ(total, static_cast<double>(prof.planned_bytes));
}

TEST(Profiler, OptimizerStateScalesWeights)
{
    Graph g;
    Val w = g.weight(Shape({1024}), "w");
    Val y = g.apply1(ol::tanhOp(), {w});
    ProfilerOptions opts;
    opts.cuda_context_bytes = 0;
    opts.optimizer_state_per_weight_byte = 2.0; // Adam
    const MemoryProfile prof = profileMemory({y}, {}, opts);
    // 4 KB weight + 8 KB optimizer state.
    EXPECT_EQ(prof.by_data_structure.at(DataStructure::kWeights),
              3 * 4096);
}

TEST(Profiler, FragmentationModelAddsGap)
{
    Graph g;
    Val x = g.placeholder(Shape({1 << 20}), "x");
    Val a = g.apply1(ol::tanhOp(), {x});
    Val b = g.apply1(ol::sigmoidOp(), {a});
    ProfilerOptions opts;
    opts.cuda_context_bytes = 100 << 20;
    const MemoryProfile prof = profileMemory({b}, {}, opts);
    EXPECT_GE(prof.undisclosed_bytes, 100 << 20);
    EXPECT_EQ(prof.device_bytes,
              prof.planned_bytes + prof.undisclosed_bytes);
}

} // namespace
} // namespace echo::memory
