/**
 * @file
 * Tests for the steady-state execution tape (graph/tape.h), its pass
 * integration (tape_compile / tape-ready), and the persistent
 * packed-weight cache (tensor/pack_cache.h):
 *
 *  - tape runs are byte-identical to the interpreter on the word-LM
 *    and NMT training presets, serial and parallel, at 1/2/4 threads;
 *  - the tape arena equals the planner's pool peak EXACTLY and
 *    analysis::auditTape replays the records clean;
 *  - index-bound feeds perform zero hash lookups per run, and the
 *    arena serves steady-state outputs without heap fallbacks;
 *  - the pack cache hits 100% after the first iteration, drops packs
 *    on version bumps, and never serves stale panels when a dead
 *    tensor's heap address is reused by a new one;
 *  - PackScratch's shrink policy bounds retained capacity without
 *    thrashing on alternating shapes.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/numeric_verify.h"
#include "analysis/tape_audit.h"
#include "core/thread_pool.h"
#include "data/batcher.h"
#include "graph/executor.h"
#include "graph/ops/oplib.h"
#include "graph/tape.h"
#include "models/nmt.h"
#include "models/word_lm.h"
#include "obs/counters.h"
#include "pass/builtin_passes.h"
#include "pass/pass_manager.h"
#include "tensor/pack_cache.h"
#include "tensor/pack_scratch.h"

namespace echo::graph {
namespace {

namespace ol = oplib;

models::WordLmConfig
tinyLmConfig()
{
    models::WordLmConfig cfg;
    cfg.vocab = 50;
    cfg.hidden = 8;
    cfg.layers = 2;
    cfg.batch = 4;
    cfg.seq_len = 6;
    return cfg;
}

data::Corpus
tinyCorpus()
{
    data::CorpusConfig cfg;
    cfg.vocab = data::Vocab{50};
    cfg.num_tokens = 2000;
    cfg.seed = 3;
    return data::Corpus::generate(cfg);
}

models::NmtConfig
tinyNmtConfig()
{
    models::NmtConfig cfg;
    cfg.src_vocab = 40;
    cfg.tgt_vocab = 45;
    cfg.hidden = 8;
    cfg.enc_layers = 1;
    cfg.batch = 3;
    cfg.src_len = 7;
    cfg.tgt_len = 7;
    return cfg;
}

data::ParallelCorpus
tinyParallelCorpus()
{
    data::ParallelCorpusConfig cfg;
    cfg.src_vocab = data::Vocab{40};
    cfg.tgt_vocab = data::Vocab{45};
    cfg.num_pairs = 64;
    cfg.min_len = 3;
    cfg.max_len = 6;
    cfg.seed = 11;
    return data::ParallelCorpus::generate(cfg);
}

/** Interpreter reference vs tape (serial and parallel), bit for bit. */
void
expectTapeMatchesInterpreter(const std::vector<Val> &fetches,
                             const FeedDict &feed, const char *what)
{
    Executor ex(fetches, ExecMode::kSerial);
    Tape tape(fetches);
    EXPECT_EQ(tape.arenaBytes(), tape.plan().pool_peak_bytes) << what;

    for (const int threads : {1, 2, 4}) {
        ThreadPool::setGlobalNumThreads(threads);
        const std::vector<Tensor> ref = ex.run(feed);
        tape.bindFeeds(feed);
        for (const bool parallel : {false, true}) {
            const std::vector<Tensor> out = tape.run(parallel);
            const analysis::VerifyResult vr =
                analysis::compareFetches(out, ref);
            EXPECT_TRUE(vr.shapes_match)
                << what << " threads=" << threads
                << " parallel=" << parallel;
            EXPECT_EQ(vr.max_abs_diff, 0.0)
                << what << " threads=" << threads
                << " parallel=" << parallel;
        }
    }
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}

TEST(TapeWordLm, ByteIdenticalToInterpreterAtEveryThreadCount)
{
    models::WordLmModel model(tinyLmConfig());
    Rng rng(7);
    models::ParamStore params = model.initialParams(rng);
    data::Corpus corpus = tinyCorpus();
    data::LmBatcher batcher(corpus, 4, 6);
    expectTapeMatchesInterpreter(model.fetches(),
                                 model.makeFeed(params, batcher.next()),
                                 "word-lm");
}

TEST(TapeNmt, ByteIdenticalToInterpreterAtEveryThreadCount)
{
    models::NmtModel model(tinyNmtConfig());
    Rng rng(5);
    models::ParamStore params = model.initialParams(rng);
    data::ParallelCorpus pc = tinyParallelCorpus();
    data::NmtBatcher batcher(pc, 3, 7, 7);
    expectTapeMatchesInterpreter(model.fetches(),
                                 model.makeFeed(params, batcher.next()),
                                 "nmt");
}

TEST(TapeWordLm, ArenaEqualsPlannerPeakAndAuditsClean)
{
    models::WordLmModel model(tinyLmConfig());
    Tape tape(model.fetches());
    // The plan IS the allocator: sized to the peak, byte for byte.
    EXPECT_EQ(tape.arenaBytes(), tape.plan().pool_peak_bytes);
    EXPECT_GT(tape.arenaBytes(), 0);
    const analysis::AnalysisReport report = analysis::auditTape(tape);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(TapeNmt, AuditReplaysRecordsClean)
{
    models::NmtModel model(tinyNmtConfig());
    Tape tape(model.fetches());
    EXPECT_EQ(tape.arenaBytes(), tape.plan().pool_peak_bytes);
    const analysis::AnalysisReport report = analysis::auditTape(tape);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(TapeFeeds, IndexBoundBindingSkipsHashLookups)
{
    models::WordLmModel model(tinyLmConfig());
    Rng rng(3);
    models::ParamStore params = model.initialParams(rng);
    data::Corpus corpus = tinyCorpus();
    data::LmBatcher batcher(corpus, 4, 6);
    const FeedDict feed = model.makeFeed(params, batcher.next());

    ThreadPool::setGlobalNumThreads(1);
    Tape tape(model.fetches());

    // Setup: resolve each feed node's index once (this may hash).
    std::vector<std::pair<int, const Tensor *>> bound;
    for (const Node *n : tape.feedNodes()) {
        const auto it = feed.find(n);
        ASSERT_NE(it, feed.end());
        const int idx = tape.feedIndex(n);
        ASSERT_GE(idx, 0);
        bound.emplace_back(idx, &it->second);
    }

    // Reference run through the hashing path.
    tape.bindFeeds(feed);
    const std::vector<Tensor> ref = tape.run(false);
    std::vector<Tensor> ref_copy;
    for (const Tensor &t : ref)
        ref_copy.push_back(t.clone());

    // Steady state: bind by index, run, and assert the feed-lookup
    // counter never moved — zero hash lookups per iteration.
    const int64_t lookups_before =
        obs::counter("exec.feed_lookups").value();
    std::vector<Tensor> out;
    for (int iter = 0; iter < 3; ++iter) {
        for (const auto &[idx, t] : bound)
            tape.bindFeed(idx, *t);
        tape.runInto(out, false);
        const analysis::VerifyResult vr =
            analysis::compareFetches(out, ref_copy);
        EXPECT_TRUE(vr.shapes_match) << "iter " << iter;
        EXPECT_EQ(vr.max_abs_diff, 0.0) << "iter " << iter;
    }
    EXPECT_EQ(obs::counter("exec.feed_lookups").value(), lookups_before);
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}

TEST(TapeSteadyState, ArenaServesAllTransientsOnSimpleGraphs)
{
    // Element-wise chain + GEMM: every op allocates exactly its
    // planned output, so the arena must serve every request — the
    // heap-fallback counter stays flat across steady-state runs.
    Graph g;
    const Val x = g.placeholder(Shape({4, 8}), "x");
    const Val w = g.weight(Shape({8, 8}), "w");
    const Val h = g.apply1(ol::gemm(false, false), {x, w});
    const Val t = g.apply1(ol::tanhOp(), {h});
    const Val y = g.apply1(ol::mul(), {t, t});

    Rng rng(9);
    FeedDict feed;
    feed[x.node] = Tensor::uniform(Shape({4, 8}), rng, -1.0f, 1.0f);
    feed[w.node] = Tensor::uniform(Shape({8, 8}), rng, -1.0f, 1.0f);

    ThreadPool::setGlobalNumThreads(1);
    Tape tape({y});
    tape.bindFeeds(feed);
    std::vector<Tensor> out;
    tape.runInto(out, false); // warm
    const int64_t misses_before =
        obs::counter("tape.arena_miss", obs::CounterKind::kScheduling)
            .value();
    for (int iter = 0; iter < 4; ++iter)
        tape.runInto(out, false);
    EXPECT_EQ(obs::counter("tape.arena_miss",
                           obs::CounterKind::kScheduling)
                  .value(),
              misses_before);
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}

// ---------------------------------------------------------------------
// Pass integration
// ---------------------------------------------------------------------

TEST(TapePipeline, CompilePassEstablishesTapeReadyAndAuditsClean)
{
    models::WordLmModel model(tinyLmConfig(),
                              "autodiff,plan,tape_compile");
    // die_on_error inside the model ctor means reaching here implies
    // the tape-ready postcondition replayed the tape clean.
    ASSERT_TRUE(model.pipelineReport().ok())
        << model.pipelineReport().toString();
    bool tape_checker_ran = false;
    for (const pass::StageReport &stage : model.pipelineReport().stages) {
        if (stage.pass == "tape_compile") {
            tape_checker_ran =
                std::find(stage.checkers_run.begin(),
                          stage.checkers_run.end(),
                          "tape-ready") != stage.checkers_run.end();
        }
    }
    EXPECT_TRUE(tape_checker_ran);
}

TEST(TapePipeline, ContextKeepsTheTapeAndItMatchesTheInterpreter)
{
    models::WordLmConfig cfg = tinyLmConfig();
    data::Corpus corpus = tinyCorpus();
    data::LmBatcher batcher(corpus, cfg.batch, cfg.seq_len);

    // Reference model (plain autodiff) for byte-comparison.
    models::WordLmModel model(cfg, "autodiff");
    Rng rng(13);
    models::ParamStore params = model.initialParams(rng);
    const FeedDict feed = model.makeFeed(params, batcher.next());

    // Re-run the pipeline with tape_compile over the SAME graph shape
    // via a fresh model, then execute its tape.
    models::WordLmModel taped(cfg, "autodiff,plan,tape_compile");
    models::ParamStore taped_params = [&] {
        Rng r(13);
        return taped.initialParams(r);
    }();
    const FeedDict taped_feed =
        taped.makeFeed(taped_params, [&] {
            data::LmBatcher b(corpus, cfg.batch, cfg.seq_len);
            return b.next();
        }());

    ThreadPool::setGlobalNumThreads(1);
    Executor ref_ex(model.fetches(), ExecMode::kSerial);
    const std::vector<Tensor> ref = ref_ex.run(feed);

    Tape tape(taped.fetches());
    tape.bindFeeds(taped_feed);
    const std::vector<Tensor> out = tape.run(false);
    const analysis::VerifyResult vr = analysis::compareFetches(out, ref);
    EXPECT_TRUE(vr.shapes_match);
    EXPECT_EQ(vr.max_abs_diff, 0.0);
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
}

TEST(TapePipeline, CompileWithoutPlanRejectedStatically)
{
    const pass::PassManager pm =
        pass::buildPipeline("autodiff,tape_compile");
    const std::vector<pass::ContractViolation> violations =
        pm.validate({pass::Invariant::kDifferentiable});
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].pass, "tape_compile");
    EXPECT_EQ(violations[0].invariant, pass::Invariant::kMemoryPlanned);
}

TEST(TapePipeline, GraphRewritesClobberTapeReady)
{
    // fusion after tape_compile invalidates kTapeReady, so a pipeline
    // that re-audits the tape afterwards must be statically illegal.
    // (audit is modeled by tape_compile's own precondition chain: a
    // second tape_compile re-establishes; here we check the invalidate
    // edge directly.)
    const pass::PassManager pm = pass::buildPipeline(
        "autodiff,plan,tape_compile,fusion");
    const std::vector<pass::ContractViolation> violations =
        pm.validate({pass::Invariant::kDifferentiable});
    EXPECT_TRUE(violations.empty());
    bool found = false;
    for (size_t i = 0; i < pm.size(); ++i) {
        if (std::string(pm.at(i).name()) == "fusion") {
            const auto inv = pm.at(i).invalidates();
            found = std::find(inv.begin(), inv.end(),
                              pass::Invariant::kTapeReady) != inv.end();
        }
    }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------
// Persistent packed-weight cache
// ---------------------------------------------------------------------

TEST(PackCache, SecondLookupHitsAndVersionBumpInvalidates)
{
    ops::clearPackCacheForTest();
    const int64_t k = 8, n = 16;
    Tensor b(Shape({k, n}));
    std::fill(b.data(), b.data() + b.numel(), 3.0f);
    ops::registerPackableTensor(b);
    const ops::GemmSchedule sch = ops::GemmSchedule::fixedDefault();

    ops::PackCacheStats s0 = ops::packCacheStats();
    ops::CachedPackHold hold;
    const ops::CachedPack p1 =
        ops::lookupPackedB(b, false, k, n, sch, hold);
    ASSERT_TRUE(p1);
    EXPECT_EQ(p1.data[p1.offsets[0]], 3.0f);
    ops::PackCacheStats s1 = ops::packCacheStats();
    EXPECT_EQ(s1.misses, s0.misses + 1);

    // Steady state: same operand, same schedule -> pure hits.
    for (int i = 0; i < 3; ++i) {
        ops::CachedPackHold h2;
        EXPECT_TRUE(ops::lookupPackedB(b, false, k, n, sch, h2));
    }
    ops::PackCacheStats s2 = ops::packCacheStats();
    EXPECT_EQ(s2.misses, s1.misses);
    EXPECT_EQ(s2.hits, s1.hits + 3);

    // In-place update + version bump: old packs dropped, the next
    // lookup rebuilds from the new contents.
    std::fill(b.data(), b.data() + b.numel(), 7.0f);
    ops::bumpTensorVersion(b);
    ops::PackCacheStats s3 = ops::packCacheStats();
    EXPECT_GT(s3.invalidations, s2.invalidations);
    ops::CachedPackHold h3;
    const ops::CachedPack p2 =
        ops::lookupPackedB(b, false, k, n, sch, h3);
    ASSERT_TRUE(p2);
    EXPECT_EQ(p2.data[p2.offsets[0]], 7.0f);
    ops::clearPackCacheForTest();
}

TEST(PackCache, AddressReuseAfterFreeNeverServesStalePanels)
{
    // The dead-store scenario: register a tensor, cache its pack, let
    // the tensor die, then register a NEW tensor (which frequently
    // lands on the same heap address).  The cache must rebuild from
    // the new bytes — never serve the dead tensor's panels.
    ops::clearPackCacheForTest();
    const int64_t k = 8, n = 16;
    const ops::GemmSchedule sch = ops::GemmSchedule::fixedDefault();
    {
        Tensor dead(Shape({k, n}));
        std::fill(dead.data(), dead.data() + dead.numel(), 1.0f);
        ops::registerPackableTensor(dead);
        ops::CachedPackHold hold;
        ASSERT_TRUE(ops::lookupPackedB(dead, false, k, n, sch, hold));
    }
    Tensor fresh(Shape({k, n}));
    std::fill(fresh.data(), fresh.data() + fresh.numel(), 2.0f);
    ops::registerPackableTensor(fresh);
    ops::CachedPackHold hold;
    const ops::CachedPack p =
        ops::lookupPackedB(fresh, false, k, n, sch, hold);
    ASSERT_TRUE(p);
    EXPECT_EQ(p.data[p.offsets[0]], 2.0f);
    ops::clearPackCacheForTest();
}

TEST(PackCache, SteadyStateTrainingIterationHitsEveryPack)
{
    // After the first (warm) iteration every weight pack must be
    // served from the cache: zero further misses.
    ops::clearPackCacheForTest();
    models::WordLmModel model(tinyLmConfig());
    Rng rng(17);
    models::ParamStore params = model.initialParams(rng);
    data::Corpus corpus = tinyCorpus();
    data::LmBatcher batcher(corpus, 4, 6);
    const FeedDict feed = model.makeFeed(params, batcher.next());

    ThreadPool::setGlobalNumThreads(1);
    Executor ex(model.fetches(), ExecMode::kSerial);
    (void)ex.run(feed); // warm: builds every pack once
    const ops::PackCacheStats warm = ops::packCacheStats();
    (void)ex.run(feed);
    (void)ex.run(feed);
    const ops::PackCacheStats steady = ops::packCacheStats();
    EXPECT_EQ(steady.misses, warm.misses);
    EXPECT_GT(steady.hits, warm.hits);
    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
    ops::clearPackCacheForTest();
}

// ---------------------------------------------------------------------
// PackScratch shrink policy
// ---------------------------------------------------------------------

TEST(PackScratch, ShrinksAfterSustainedOversizedStreak)
{
    ops::PackScratch s;
    ASSERT_NE(s.acquire(1 << 16), nullptr);
    EXPECT_GE(s.capacityElems(), size_t(1) << 16);
    // A sustained run of small acquires (oversized by > kShrinkFactor)
    // must release the high-water buffer.
    for (int i = 0; i < ops::PackScratch::kShrinkStreak; ++i)
        ASSERT_NE(s.acquire(64), nullptr);
    EXPECT_LT(s.capacityElems(), (size_t(1) << 16) /
                                     ops::PackScratch::kShrinkFactor);
}

TEST(PackScratch, AlternatingShapesDoNotThrash)
{
    ops::PackScratch s;
    ASSERT_NE(s.acquire(1 << 14), nullptr);
    const size_t big_cap = s.capacityElems();
    // Alternating small/large requests keep resetting the oversized
    // streak, so the big buffer is retained (no realloc churn).
    for (int i = 0; i < 4 * ops::PackScratch::kShrinkStreak; ++i) {
        ASSERT_NE(s.acquire(16), nullptr);
        ASSERT_NE(s.acquire(1 << 14), nullptr);
    }
    EXPECT_EQ(s.capacityElems(), big_cap);
}

TEST(PackScratch, PeriodicBurstSettlesAtHighWater)
{
    // A training iteration's pack pattern: a long run of small packs,
    // then a burst the streak window cannot see (the smalls outnumber
    // the streak requirement).  A fixed streak shrinks and regrows
    // every period; the adaptive backoff must instead settle at the
    // burst size after a bounded number of wasted cycles.
    ops::PackScratch s;
    auto period = [&s] {
        for (int i = 0; i < 2 * ops::PackScratch::kShrinkStreak; ++i)
            ASSERT_NE(s.acquire(64), nullptr);
        ASSERT_NE(s.acquire(1 << 15), nullptr);
    };
    // Let the policy learn (each premature shrink doubles the window;
    // log2(kShrinkStreakMax / kShrinkStreak) cycles suffice).
    for (int cycle = 0; cycle < 12; ++cycle)
        period();
    // Steady state: capacity pinned at the burst size, no reallocs.
    const size_t settled = s.capacityElems();
    EXPECT_GE(settled, size_t(1) << 15);
    for (int cycle = 0; cycle < 4; ++cycle) {
        period();
        EXPECT_EQ(s.capacityElems(), settled);
    }
}

} // namespace
} // namespace echo::graph
