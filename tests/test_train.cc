/**
 * @file
 * Tests for the training infrastructure: optimizers, metrics
 * (perplexity/BLEU), the training loop (loss actually decreases on the
 * synthetic corpora), and the iteration profiler.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/thread_pool.h"
#include "data/batcher.h"
#include "graph/executor.h"
#include "models/nmt.h"
#include "models/word_lm.h"
#include "train/metrics.h"
#include "train/optimizer.h"
#include "train/nmt_eval.h"
#include "train/simulation.h"
#include "train/trainer.h"

namespace echo::train {
namespace {

TEST(Metrics, PerplexityIsExpOfLoss)
{
    EXPECT_NEAR(perplexity(std::log(100.0)), 100.0, 1e-6);
    EXPECT_NEAR(perplexity(0.0), 1.0, 1e-12);
}

TEST(Metrics, BleuPerfectMatchIs100)
{
    std::vector<std::vector<int64_t>> hyp = {{1, 2, 3, 4, 5}};
    EXPECT_NEAR(corpusBleu(hyp, hyp), 100.0, 1e-9);
}

TEST(Metrics, BleuZeroOnDisjoint)
{
    std::vector<std::vector<int64_t>> hyp = {{1, 2, 3, 4}};
    std::vector<std::vector<int64_t>> ref = {{5, 6, 7, 8}};
    EXPECT_DOUBLE_EQ(corpusBleu(hyp, ref), 0.0);
}

TEST(Metrics, BleuBrevityPenaltyApplies)
{
    // A correct but short hypothesis scores below a full-length one.
    std::vector<std::vector<int64_t>> ref = {{1, 2, 3, 4, 5, 6, 7, 8}};
    std::vector<std::vector<int64_t>> full = {{1, 2, 3, 4, 5, 6, 7, 8}};
    std::vector<std::vector<int64_t>> part = {{1, 2, 3, 4, 5}};
    EXPECT_LT(corpusBleu(part, ref), corpusBleu(full, ref));
    EXPECT_GT(corpusBleu(part, ref), 0.0);
}

TEST(Metrics, BleuOrderSensitivity)
{
    std::vector<std::vector<int64_t>> ref = {{1, 2, 3, 4, 5, 6}};
    std::vector<std::vector<int64_t>> shuffled = {{6, 4, 2, 1, 3, 5}};
    EXPECT_LT(corpusBleu(shuffled, ref), 20.0);
}

TEST(Optimizer, SgdDescendsQuadratic)
{
    // One-parameter bowl: L = 0.5 * w^2, grad = w.
    models::NamedWeights weights;
    graph::Graph g;
    const graph::Val w = g.weight(Shape({1}), "w");
    weights.emplace_back("w", w);
    ParamStore params;
    params["w"] = Tensor(Shape({1}), {10.0f});

    SgdOptimizer opt(0.1, 0.0, 0.0);
    for (int i = 0; i < 50; ++i) {
        std::vector<Tensor> grads = {
            Tensor(Shape({1}), {params["w"].at(0)})};
        opt.step(params, weights, grads);
    }
    EXPECT_LT(std::abs(params["w"].at(0)), 0.1f);
}

TEST(Optimizer, MomentumAcceleratesDescent)
{
    graph::Graph g;
    models::NamedWeights weights;
    weights.emplace_back("w", g.weight(Shape({1}), "w"));

    auto run = [&](double momentum) {
        ParamStore params;
        params["w"] = Tensor(Shape({1}), {10.0f});
        SgdOptimizer opt(0.02, momentum, 0.0);
        for (int i = 0; i < 30; ++i) {
            std::vector<Tensor> grads = {
                Tensor(Shape({1}), {params["w"].at(0)})};
            opt.step(params, weights, grads);
        }
        return std::abs(params["w"].at(0));
    };
    EXPECT_LT(run(0.9), run(0.0));
}

TEST(Optimizer, ClippingBoundsStep)
{
    graph::Graph g;
    models::NamedWeights weights;
    weights.emplace_back("w", g.weight(Shape({1}), "w"));
    ParamStore params;
    params["w"] = Tensor(Shape({1}), {0.0f});

    SgdOptimizer opt(1.0, 0.0, 1.0); // clip to norm 1
    std::vector<Tensor> grads = {Tensor(Shape({1}), {1000.0f})};
    const double norm = opt.step(params, weights, grads);
    EXPECT_NEAR(norm, 1000.0, 1e-6);
    EXPECT_NEAR(params["w"].at(0), -1.0f, 1e-5);
}

TEST(Optimizer, AdamDescendsQuadratic)
{
    graph::Graph g;
    models::NamedWeights weights;
    weights.emplace_back("w", g.weight(Shape({1}), "w"));
    ParamStore params;
    params["w"] = Tensor(Shape({1}), {5.0f});

    AdamOptimizer opt(0.3);
    for (int i = 0; i < 100; ++i) {
        std::vector<Tensor> grads = {
            Tensor(Shape({1}), {params["w"].at(0)})};
        opt.step(params, weights, grads);
    }
    EXPECT_LT(std::abs(params["w"].at(0)), 0.5f);
}

TEST(Optimizer, GlobalNormAggregates)
{
    std::vector<Tensor> grads = {Tensor(Shape({2}), {3.0f, 0.0f}),
                                 Tensor(Shape({1}), {4.0f})};
    EXPECT_NEAR(globalNorm(grads), 5.0, 1e-9);
}

TEST(Trainer, WordLmLossDecreases)
{
    models::WordLmConfig cfg;
    cfg.vocab = 30;
    cfg.hidden = 16;
    cfg.layers = 1;
    cfg.batch = 8;
    cfg.seq_len = 8;
    cfg.backend = rnn::RnnBackend::kCudnn; // fused = fewer CPU ops
    models::WordLmModel model(cfg);

    data::CorpusConfig ccfg;
    ccfg.vocab = data::Vocab{30};
    ccfg.num_tokens = 20000;
    ccfg.structure = 0.9;
    ccfg.seed = 13;
    data::Corpus corpus = data::Corpus::generate(ccfg);
    data::LmBatcher batcher(corpus, cfg.batch, cfg.seq_len);

    Rng rng(17);
    ParamStore params = model.initialParams(rng);
    SgdOptimizer opt(0.5, 0.9);

    graph::Executor ex(model.fetches());
    TrainLoopConfig loop;
    loop.iterations = 80;
    loop.seconds_per_iteration = 0.01;
    const auto curve = runTrainingLoop(
        ex, loop,
        [&](int64_t) { return model.makeFeed(params, batcher.next()); },
        [&](double, const std::vector<Tensor> &grads) {
            opt.step(params, model.weights(), grads);
        });

    ASSERT_EQ(curve.size(), 80u);
    // Perplexity at the end is much lower than at the start.
    const double first = curve.front().perplexity;
    const double last = curve.back().perplexity;
    EXPECT_LT(last, first * 0.6);
    // Time axis advances uniformly.
    EXPECT_NEAR(curve.back().wall_seconds, 0.8, 1e-9);
}

namespace {

/** Run a few word-LM training steps at a given mode / thread count. */
models::ParamStore
runWordLmSteps(graph::ExecMode mode, int num_threads)
{
    ThreadPool::setGlobalNumThreads(num_threads);

    models::WordLmConfig cfg;
    cfg.vocab = 20;
    cfg.hidden = 12;
    cfg.layers = 1;
    cfg.batch = 4;
    cfg.seq_len = 6;
    models::WordLmModel model(cfg);

    data::CorpusConfig ccfg;
    ccfg.vocab = data::Vocab{20};
    ccfg.num_tokens = 2000;
    ccfg.structure = 0.9;
    ccfg.seed = 13;
    data::Corpus corpus = data::Corpus::generate(ccfg);
    data::LmBatcher batcher(corpus, cfg.batch, cfg.seq_len);

    Rng rng(17);
    models::ParamStore params = model.initialParams(rng);
    SgdOptimizer opt(0.5, 0.9);

    graph::Executor ex(model.fetches(), mode);
    TrainLoopConfig loop;
    loop.iterations = 5;
    loop.seconds_per_iteration = 0.01;
    runTrainingLoop(
        ex, loop,
        [&](int64_t) { return model.makeFeed(params, batcher.next()); },
        [&](double, const std::vector<Tensor> &grads) {
            opt.step(params, model.weights(), grads);
        });

    ThreadPool::setGlobalNumThreads(ThreadPool::defaultNumThreads());
    return params;
}

} // namespace

TEST(Trainer, TrainingStepBitIdenticalAcrossThreadCounts)
{
    // The ISSUE's determinism contract end to end: identical data,
    // seeds, and schedule must give byte-identical weights after
    // several full training steps whether the run is serial on one
    // thread or ready-queue parallel on eight.
    const models::ParamStore serial =
        runWordLmSteps(graph::ExecMode::kSerial, 1);
    const models::ParamStore parallel =
        runWordLmSteps(graph::ExecMode::kParallel, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &[name, tensor] : serial) {
        ASSERT_TRUE(parallel.count(name)) << name;
        const Tensor &other = parallel.at(name);
        ASSERT_EQ(tensor.shape(), other.shape()) << name;
        EXPECT_EQ(std::memcmp(tensor.data(), other.data(),
                              static_cast<size_t>(tensor.numel()) *
                                  sizeof(float)),
                  0)
            << "weight " << name << " diverged across thread counts";
    }
}

TEST(Trainer, SpeedometerMatchesDefinition)
{
    EXPECT_NEAR(speedometer(128, 0.5), 256.0, 1e-9);
}

TEST(Simulation, ProfileBundlesRuntimeMemoryPower)
{
    models::WordLmConfig cfg;
    cfg.vocab = 100;
    cfg.hidden = 32;
    cfg.layers = 1;
    cfg.batch = 8;
    cfg.seq_len = 10;
    models::WordLmModel model(cfg);

    const IterationProfile prof =
        profileIteration(model.fetches(), model.weightGrads());
    EXPECT_GT(prof.runtime.wall_time_us, 0.0);
    EXPECT_GT(prof.memory.device_bytes, 0);
    EXPECT_GT(prof.avg_power_w, 50.0);
    EXPECT_TRUE(prof.fits);
    EXPECT_GT(prof.throughput(cfg.batch), 0.0);
}

TEST(Simulation, CapacityCheckFlagsOversizedModels)
{
    models::NmtConfig cfg;
    cfg.hidden = 512;
    cfg.batch = 256;
    cfg.src_len = 100;
    cfg.tgt_len = 100;
    models::NmtModel model(cfg);
    const IterationProfile prof =
        profileIteration(model.fetches(), model.weightGrads());
    // B=256 legacy NMT cannot fit in 12 GB (the paper's memory wall).
    EXPECT_FALSE(prof.fits);
}


TEST(NmtEval, BucketsAreNormalizedAndCapped)
{
    const auto buckets = iwsltBuckets();
    double total = 0.0;
    int64_t max_len = 0;
    for (const auto &b : buckets) {
        EXPECT_GT(b.weight, 0.0);
        total += b.weight;
        max_len = std::max(max_len, b.length);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_EQ(max_len, 100); // the hyperparameters' max bucket
}

TEST(NmtEval, MemoryComesFromMaxBucketAndPassReducesIt)
{
    models::NmtConfig cfg;
    cfg.batch = 32; // reduced scale to keep the test fast
    const std::vector<LengthBucket> buckets = {{10, 0.6}, {30, 0.4}};

    NmtEvalOptions off;
    const auto base = profileNmtBucketed(cfg, buckets, off);
    EXPECT_GT(base.throughput, 0.0);
    ASSERT_EQ(base.per_bucket.size(), 2u);
    // The reported footprint is the larger bucket's.
    EXPECT_EQ(base.device_bytes,
              std::max(base.per_bucket[0].memory.device_bytes,
                       base.per_bucket[1].memory.device_bytes));

    NmtEvalOptions eco;
    eco.policy = pass::PassConfig::Policy::kManual;
    const auto passed = profileNmtBucketed(cfg, buckets, eco);
    EXPECT_LT(passed.device_bytes, base.device_bytes);
    EXPECT_GT(passed.replay_fraction, 0.0);
    EXPECT_LT(passed.replay_fraction, 0.2);
}

TEST(NmtEval, MeanIterationTimeIsWeighted)
{
    models::NmtConfig cfg;
    cfg.batch = 32;
    const std::vector<LengthBucket> buckets = {{10, 0.5}, {30, 0.5}};
    const auto prof = profileNmtBucketed(cfg, buckets, {});
    const double expected =
        0.5 * prof.per_bucket[0].iterationSeconds() +
        0.5 * prof.per_bucket[1].iterationSeconds();
    EXPECT_NEAR(prof.mean_iteration_seconds, expected, 1e-12);
    EXPECT_NEAR(prof.throughput, 32.0 / expected, 1e-6);
}

} // namespace
} // namespace echo::train
