/**
 * @file
 * Tests for the Echo recomputation pass: feature-map discovery,
 * candidate construction (GEMM boundaries), cost-model accounting,
 * the graph rewrite, gradient equivalence, footprint reduction, and
 * workspace sharing across time steps.
 */
#include <gtest/gtest.h>

#include "core/rng.h"
#include "echo/candidate.h"
#include "echo/feature_maps.h"
#include "echo/recompute_pass.h"
#include "analysis/analysis.h"
#include "graph/autodiff.h"
#include "graph/executor.h"
#include "graph/ops/oplib.h"
#include "memory/profiler.h"

namespace echo::pass {
namespace {

namespace ol = graph::oplib;
using graph::FeedDict;
using graph::Graph;
using graph::Phase;

/**
 * A miniature attention decoder: per step, an O-shape scoring region
 * (broadcast + layernorm + tanh + v-dot) between GEMM projections —
 * the structure of the paper's Fig. 3 attention layer.
 */
struct ToyAttentionModel
{
    std::unique_ptr<Graph> g = std::make_unique<Graph>();
    Val hs, q0, labels;                 // placeholders
    Val wk, wq, wo, v;                  // weights
    Val loss;
    std::vector<Val> fetches;           // loss + weight grads
    std::vector<Val> weight_grads;
    int64_t batch, steps, hidden;

    void
    build(int64_t b, int64_t t, int64_t h)
    {
        batch = b;
        steps = t;
        hidden = h;
        hs = g->placeholder(Shape({b, t, h}), "encoder_states");
        q0 = g->placeholder(Shape({b, h}), "q0");
        labels = g->placeholder(Shape({b}), "labels");
        wk = g->weight(Shape({h, h}), "wk");
        wq = g->weight(Shape({h, h}), "wq");
        wo = g->weight(Shape({h, h}), "wo");
        v = g->weight(Shape({h}), "v");

        Val proj_k;
        {
            graph::TagScope tag(*g, "encoder");
            Val flat =
                g->apply1(ol::reshape(Shape({b * t, h})), {hs});
            Val pk = g->apply1(ol::gemm(false, true), {flat, wk});
            proj_k = g->apply1(ol::reshape(Shape({b, t, h})), {pk});
        }

        Val cur = q0;
        for (int64_t step = 0; step < t; ++step) {
            g->setTimeStep(static_cast<int>(step));
            Val ctx;
            {
                graph::TagScope tag(*g, "attention");
                Val q = g->apply1(ol::gemm(false, true), {cur, wq});
                Val e = g->apply1(ol::broadcastAddBT(), {proj_k, q});
                Val ln = g->apply(ol::layerNorm(), {e})[0];
                Val th = g->apply1(ol::tanhOp(), {ln});
                Val scores = g->apply1(ol::dotLastAxis(), {th, v});
                Val alpha = g->apply1(ol::softmax(), {scores});
                Val alpha3 =
                    g->apply1(ol::reshape(Shape({b, 1, t})), {alpha});
                Val c3 = g->apply1(ol::bmm(false, false),
                                   {alpha3, proj_k});
                Val c2 =
                    g->apply1(ol::reshape(Shape({b, h})), {c3});
                ctx = g->apply1(ol::add(), {c2, q});
            }
            {
                graph::TagScope tag(*g, "decoder");
                cur = g->apply1(
                    ol::tanhOp(),
                    {g->apply1(ol::gemm(false, true), {ctx, wo})});
            }
        }
        g->setTimeStep(-1);

        {
            graph::TagScope tag(*g, "output");
            loss = g->apply1(ol::crossEntropyLoss(), {cur, labels});
        }
        auto gr = graph::backward(*g, loss, {wk, wq, wo, v});
        weight_grads = gr.weight_grads;
        fetches = {loss};
        fetches.insert(fetches.end(), weight_grads.begin(),
                       weight_grads.end());
    }

    FeedDict
    feed(uint64_t seed) const
    {
        Rng rng(seed);
        FeedDict f;
        f[hs.node] = Tensor::uniform(Shape({batch, steps, hidden}),
                                     rng, -1.0f, 1.0f);
        f[q0.node] = Tensor::uniform(Shape({batch, hidden}), rng,
                                     -1.0f, 1.0f);
        Tensor lab(Shape({batch}));
        for (int64_t i = 0; i < batch; ++i)
            lab.at(i) = static_cast<float>(
                rng.uniformInt(static_cast<uint64_t>(hidden)));
        f[labels.node] = lab;
        f[wk.node] = Tensor::uniform(Shape({hidden, hidden}), rng,
                                     -0.3f, 0.3f);
        f[wq.node] = Tensor::uniform(Shape({hidden, hidden}), rng,
                                     -0.3f, 0.3f);
        f[wo.node] = Tensor::uniform(Shape({hidden, hidden}), rng,
                                     -0.3f, 0.3f);
        f[v.node] =
            Tensor::uniform(Shape({hidden}), rng, -0.3f, 0.3f);
        return f;
    }
};

TEST(FeatureMaps, FindsStashedActivations)
{
    Graph g;
    Val x = g.weight(Shape({4}), "x");
    Val y = g.apply1(ol::tanhOp(), {x});
    Val z = g.apply1(ol::sigmoidOp(), {y});
    Val labels = g.placeholder(Shape({1}), "l");
    Val flat = g.apply1(ol::reshape(Shape({1, 4})), {z});
    Val loss = g.apply1(ol::crossEntropyLoss(), {flat, labels});
    auto gr = graph::backward(g, loss, {x});

    auto fms = findFeatureMaps({loss, gr.weight_grads[0]});
    // tanh output (consumed by sigmoid_grad via y? no — by z's grad) and
    // sigmoid output are stashed; exact set nonempty and includes z.
    bool found_z = false;
    for (const FeatureMap &fm : fms)
        if (fm.val == z)
            found_z = true;
    EXPECT_TRUE(found_z);
    EXPECT_FALSE(fms.empty());
}

TEST(Candidate, StopsAtGemmBoundary)
{
    ToyAttentionModel m;
    m.build(2, 3, 8);
    auto fms = findFeatureMaps(m.fetches);

    // Find the tanh output inside an attention step.
    const FeatureMap *tanh_fm = nullptr;
    for (const FeatureMap &fm : fms)
        if (fm.val.node->layer_tag == "attention" &&
            fm.val.node->kind == graph::NodeKind::kOp &&
            fm.val.node->op->name() == "tanh" && fm.val.index == 0)
            tanh_fm = &fm;
    ASSERT_NE(tanh_fm, nullptr);

    Candidate cand = buildCandidate(*tanh_fm);
    ASSERT_TRUE(cand.admissible);
    // Subgraph contains no GEMM.
    for (const graph::Node *n : cand.subgraph)
        EXPECT_TRUE(n->op->cheapToRecompute())
            << n->op->name() << " in recompute region";
    // The frontier is fed by GEMM projections (possibly via reshapes in
    // the frontier values' producers).
    EXPECT_FALSE(cand.frontier.empty());
    EXPECT_GT(cand.interiorBytes(), 0);
}

TEST(Candidate, GemmBoundaryAblationGrowsRegion)
{
    ToyAttentionModel m;
    m.build(2, 3, 8);
    auto fms = findFeatureMaps(m.fetches);
    const FeatureMap *target = nullptr;
    for (const FeatureMap &fm : fms)
        if (fm.val.node->layer_tag == "attention" &&
            fm.val.node->op->name() == "tanh")
            target = &fm;
    ASSERT_NE(target, nullptr);

    Candidate bounded = buildCandidate(*target, true);
    Candidate unbounded = buildCandidate(*target, false);
    EXPECT_GT(unbounded.subgraph.size(), bounded.subgraph.size());
    bool has_gemm = false;
    for (const graph::Node *n : unbounded.subgraph)
        has_gemm = has_gemm || !n->op->cheapToRecompute();
    EXPECT_TRUE(has_gemm);
}

TEST(Candidate, InadmissibleWhenRootIsGemm)
{
    Graph g;
    Val x = g.placeholder(Shape({2, 3}), "x");
    Val w = g.weight(Shape({4, 3}), "w");
    Val y = g.apply1(ol::gemm(false, true), {x, w});
    FeatureMap fm;
    fm.val = y;
    fm.bytes = 32;
    EXPECT_FALSE(buildCandidate(fm).admissible);
}

TEST(RecomputePass, OffPolicyDoesNothing)
{
    ToyAttentionModel m;
    m.build(2, 3, 8);
    PassConfig cfg;
    cfg.policy = PassConfig::Policy::kOff;
    const size_t before = m.g->numNodes();
    PassResult res = runRecomputePass(*m.g, m.fetches, cfg);
    EXPECT_EQ(res.num_regions, 0);
    EXPECT_EQ(m.g->numNodes(), before);
}

TEST(RecomputePass, AutoAcceptsAttentionRegions)
{
    ToyAttentionModel m;
    m.build(2, 4, 16);
    const analysis::GraphSnapshot snap =
        analysis::snapshotGraph(*m.g, m.fetches, m.weight_grads);
    PassResult res = runRecomputePass(*m.g, m.fetches, {});
    EXPECT_GT(res.num_regions, 0);
    EXPECT_GT(res.num_recompute_nodes, 0);
    EXPECT_GT(res.bytes_saved, res.bytes_added);
    // Recompute nodes exist and are phase-tagged.
    int recompute_nodes = 0;
    for (const auto &n : m.g->nodes())
        if (n->phase == Phase::kRecompute)
            ++recompute_nodes;
    EXPECT_EQ(recompute_nodes, res.num_recompute_nodes);
    // Mandatory post-pass audit: diff discipline, GEMM-free replay,
    // workspace sharing, honest footprint accounting.
    const analysis::AnalysisReport audit = analysis::auditRecomputePass(
        snap, *m.g, m.fetches, m.weight_grads, res, {});
    EXPECT_TRUE(audit.ok()) << audit.toString();
}

TEST(RecomputePass, GradientsBitIdentical)
{
    ToyAttentionModel baseline, rewritten;
    baseline.build(2, 3, 8);
    rewritten.build(2, 3, 8);
    PassResult res = runRecomputePass(*rewritten.g, rewritten.fetches,
                                      {});
    ASSERT_GT(res.num_regions, 0);

    graph::Executor ex_base(baseline.fetches);
    graph::Executor ex_rw(rewritten.fetches);
    const auto out_base = ex_base.run(baseline.feed(99));
    const auto out_rw = ex_rw.run(rewritten.feed(99));

    const analysis::VerifyResult vr = analysis::compareFetches(out_base, out_rw);
    EXPECT_TRUE(vr.shapes_match);
    EXPECT_EQ(vr.max_abs_diff, 0.0)
        << "recomputation must replay identical float ops";
}

TEST(RecomputePass, ReducesFootprint)
{
    ToyAttentionModel baseline, rewritten;
    baseline.build(4, 6, 32);
    rewritten.build(4, 6, 32);
    // Toy dimensions make replay time all kernel-overhead floor, so the
    // paper's 2% budget (sized for real workloads) must be relaxed.
    PassConfig cfg;
    cfg.overhead_budget_fraction = 0.5;
    runRecomputePass(*rewritten.g, rewritten.fetches, cfg);

    memory::ProfilerOptions opts;
    opts.cuda_context_bytes = 0;
    const auto before = memory::profileMemory(
        baseline.fetches, baseline.weight_grads, opts);
    const auto after = memory::profileMemory(
        rewritten.fetches, rewritten.weight_grads, opts);

    EXPECT_LT(after.planned_bytes, before.planned_bytes);
    // The rewritten graph must still satisfy every static invariant.
    EXPECT_TRUE(
        analysis::analyzeAll(rewritten.fetches, rewritten.weight_grads)
            .ok());
    // Attention's absolute bytes at the peak must drop (the 59% -> 6%
    // fraction collapse of Fig. 14a is demonstrated at paper scale by
    // bench/fig14_breakdown_comparison; at toy scale weights dominate
    // and fractions are noisy, so assert absolute bytes here).
    EXPECT_LT(after.by_layer.at("attention"),
              before.by_layer.at("attention"));
}

TEST(RecomputePass, ManualPolicyOnlyTouchesTaggedRegions)
{
    ToyAttentionModel m;
    m.build(2, 3, 8);
    PassConfig cfg;
    cfg.policy = PassConfig::Policy::kManual;
    cfg.manual_tag = "attention";
    cfg.overhead_budget_fraction = 0.5; // toy scale, see above
    PassResult res = runRecomputePass(*m.g, m.fetches, cfg);
    EXPECT_GT(res.num_regions, 0);
    // Manual regions target attention feature maps; the region may pull
    // in cheap producers from adjacent layers (the encoder-side reshape
    // feeding the broadcast), but never the decoder or output layers.
    bool any_attention = false;
    for (const auto &n : m.g->nodes()) {
        if (n->phase != Phase::kRecompute)
            continue;
        any_attention = any_attention || n->layer_tag == "attention";
        EXPECT_NE(n->layer_tag, "decoder");
        EXPECT_NE(n->layer_tag, "output");
    }
    EXPECT_TRUE(any_attention);
}

TEST(RecomputePass, AutoFindsAtLeastManualSavings)
{
    ToyAttentionModel manual_model, auto_model;
    manual_model.build(2, 4, 16);
    auto_model.build(2, 4, 16);

    PassConfig manual_cfg;
    manual_cfg.policy = PassConfig::Policy::kManual;
    manual_cfg.overhead_budget_fraction = 0.5; // toy scale
    PassConfig auto_cfg;
    auto_cfg.overhead_budget_fraction = 0.5;
    const PassResult manual_res =
        runRecomputePass(*manual_model.g, manual_model.fetches,
                         manual_cfg);
    const PassResult auto_res =
        runRecomputePass(*auto_model.g, auto_model.fetches, auto_cfg);
    EXPECT_GE(auto_res.bytes_saved, manual_res.bytes_saved);
    EXPECT_GE(auto_res.num_regions, manual_res.num_regions);
}

TEST(RecomputePass, ZeroBudgetAcceptsOnlyFreeRegions)
{
    ToyAttentionModel m;
    m.build(2, 3, 8);
    PassConfig cfg;
    cfg.overhead_budget_fraction = 0.0;
    const PassResult res = runRecomputePass(*m.g, m.fetches, cfg);
    // Only regions whose modelled selection cost is zero (pure shape
    // plumbing) are admitted; the emitted fused kernels may still move
    // a few bytes, so allow a sliver of the baseline.
    EXPECT_LE(res.replay_time_us,
              0.05 * res.baseline_gpu_time_us);
}

TEST(RecomputePass, OverheadWithinBudget)
{
    ToyAttentionModel m;
    m.build(4, 6, 32);
    PassConfig cfg;
    cfg.overhead_budget_fraction = 0.02;
    const PassResult res = runRecomputePass(*m.g, m.fetches, cfg);
    EXPECT_LE(res.replay_time_us,
              cfg.overhead_budget_fraction * res.baseline_gpu_time_us +
                  1e-9);
}

TEST(RecomputePass, ScheduleAnchorsReplaysInBackwardRegion)
{
    ToyAttentionModel m;
    m.build(2, 3, 8);
    runRecomputePass(*m.g, m.fetches, {});
    const auto sched = graph::buildSchedule(m.fetches);
    // Every recompute node must appear after all pure-forward nodes it
    // replays (i.e., inside the backward region): its position must be
    // greater than the position of the loss node.
    int loss_pos = -1;
    for (size_t i = 0; i < sched.size(); ++i)
        if (sched[i] == m.loss.node)
            loss_pos = static_cast<int>(i);
    ASSERT_GE(loss_pos, 0);
    for (size_t i = 0; i < sched.size(); ++i) {
        if (sched[i]->phase == Phase::kRecompute) {
            EXPECT_GT(static_cast<int>(i), loss_pos);
        }
    }
}

TEST(RecomputePass, WorkspaceSharedAcrossTimeSteps)
{
    // With the pass applied, the pool peak must grow ~linearly in T
    // (shared workspace), not quadratically (paper §4.1.2).
    auto pool_peak = [](int64_t t, bool reuse) {
        ToyAttentionModel m;
        m.build(2, t, 16);
        PassConfig cfg;
        cfg.overhead_budget_fraction = 0.5; // toy scale
        runRecomputePass(*m.g, m.fetches, cfg);
        memory::PlannerOptions popts;
        popts.reuse_transients = reuse;
        const auto live =
            memory::analyzeLiveness(m.fetches, m.weight_grads);
        return memory::planMemory(live, popts).pool_peak_bytes;
    };

    const int64_t p4 = pool_peak(4, true);
    const int64_t p8 = pool_peak(8, true);
    // Doubling T should roughly double the pooled peak (the [BxTxH]
    // tensors grow linearly and the recompute arena is shared).
    EXPECT_LT(static_cast<double>(p8) / static_cast<double>(p4), 3.0);

    // Disabling reuse (the ablation) must cost substantially more.
    const int64_t p8_no_reuse = pool_peak(8, false);
    EXPECT_GT(p8_no_reuse, p8);
}

TEST(RecomputePass, TrainingStillConvergesAfterRewrite)
{
    // One SGD step on the rewritten graph must reduce the loss like the
    // baseline does (sanity for end-to-end training with the pass on).
    ToyAttentionModel m;
    m.build(2, 3, 8);
    runRecomputePass(*m.g, m.fetches, {});
    graph::Executor ex(m.fetches);
    FeedDict feed = m.feed(123);

    const auto out0 = ex.run(feed);
    const float loss0 = out0[0].at(0);
    // SGD step on all four weights.
    const Val weights[] = {m.wk, m.wq, m.wo, m.v};
    for (size_t i = 0; i < 4; ++i) {
        Tensor &w = feed[weights[i].node];
        const Tensor &grad = out0[i + 1];
        for (int64_t j = 0; j < w.numel(); ++j)
            w.at(j) -= 0.5f * grad.at(j);
    }
    const auto out1 = ex.run(feed);
    EXPECT_LT(out1[0].at(0), loss0);
}


TEST(RecomputePass, FusedAndUnfusedReplayBitIdentical)
{
    // fuse_replay changes kernel granularity, never numerics: baseline,
    // unfused replay, and fused replay all produce identical fetches.
    ToyAttentionModel baseline, unfused, fused;
    baseline.build(2, 4, 16);
    unfused.build(2, 4, 16);
    fused.build(2, 4, 16);

    PassConfig cfg;
    cfg.overhead_budget_fraction = -1.0;
    cfg.fuse_replay = false;
    runRecomputePass(*unfused.g, unfused.fetches, cfg);
    cfg.fuse_replay = true;
    runRecomputePass(*fused.g, fused.fetches, cfg);

    graph::Executor ex_base(baseline.fetches);
    graph::Executor ex_unfused(unfused.fetches);
    graph::Executor ex_fused(fused.fetches);
    const auto out_base = ex_base.run(baseline.feed(5));
    const auto out_unfused = ex_unfused.run(unfused.feed(5));
    const auto out_fused = ex_fused.run(fused.feed(5));

    EXPECT_EQ(analysis::compareFetches(out_base, out_unfused).max_abs_diff, 0.0);
    EXPECT_EQ(analysis::compareFetches(out_base, out_fused).max_abs_diff, 0.0);
}

TEST(RecomputePass, FusionReducesReplayNodesAndTime)
{
    ToyAttentionModel unfused, fused;
    unfused.build(4, 6, 32);
    fused.build(4, 6, 32);

    PassConfig cfg;
    cfg.overhead_budget_fraction = -1.0;
    cfg.fuse_replay = false;
    const PassResult r_unfused =
        runRecomputePass(*unfused.g, unfused.fetches, cfg);
    cfg.fuse_replay = true;
    const PassResult r_fused =
        runRecomputePass(*fused.g, fused.fetches, cfg);

    ASSERT_GT(r_unfused.num_regions, 0);
    ASSERT_GT(r_fused.num_regions, 0);
    // One generated kernel per region instead of one per op.
    EXPECT_LT(r_fused.num_recompute_nodes,
              r_unfused.num_recompute_nodes);
    // The fused kernel only reads the frontier and writes the exits,
    // so the emitted replay is cheaper.
    EXPECT_LT(r_fused.replay_time_us, r_unfused.replay_time_us);
}

TEST(RecomputePass, FusedRegionsDoNotSpanTimeSteps)
{
    // Regions of different decoder steps must stay separate fused
    // kernels; otherwise the scheduler could not anchor each replay at
    // its own backward step and the workspace arena could not be
    // shared (paper 4.1.2).
    ToyAttentionModel m;
    m.build(2, 5, 16);
    PassConfig cfg;
    cfg.overhead_budget_fraction = -1.0;
    runRecomputePass(*m.g, m.fetches, cfg);

    int fused_steps = 0;
    for (const auto &n : m.g->nodes())
        if (n->phase == Phase::kRecompute &&
            n->op->name() == "fused_recompute" && n->time_step >= 0)
            ++fused_steps;
    EXPECT_GE(fused_steps, 5);
}

} // namespace
} // namespace echo::pass
