/**
 * @file
 * Tests for the analytical GPU model: spec presets, the layout-sensitive
 * GEMM model (calibrated against the paper's Fig. 9), kernel costing,
 * the iteration timeline / CUDA-API model, and the power model.
 */
#include <gtest/gtest.h>

#include "gpusim/gemm_model.h"
#include "gpusim/kernel_cost.h"
#include "gpusim/power.h"
#include "gpusim/timeline.h"
#include "graph/autodiff.h"
#include "graph/ops/oplib.h"

namespace echo::gpusim {
namespace {

namespace ol = graph::oplib;

TEST(GpuSpec, PresetsAreSane)
{
    for (const GpuSpec &s :
         {GpuSpec::titanXp(), GpuSpec::titanV(), GpuSpec::rtx2080Ti()}) {
        EXPECT_GT(s.fp32_tflops, 1.0);
        EXPECT_GT(s.dram_gbps, 100.0);
        EXPECT_GT(s.sm_count, 0);
        EXPECT_GT(s.mem_capacity_bytes, 1ll << 30);
        EXPECT_GT(s.max_power_w, s.idle_power_w);
    }
}

TEST(GpuSpec, NewerGpusAreFaster)
{
    EXPECT_GT(GpuSpec::titanV().fp32_tflops,
              GpuSpec::titanXp().fp32_tflops);
    EXPECT_GT(GpuSpec::rtx2080Ti().dram_gbps,
              GpuSpec::titanXp().dram_gbps);
    EXPECT_LT(GpuSpec::rtx2080Ti().mem_capacity_bytes,
              GpuSpec::titanXp().mem_capacity_bytes);
}

// ----------------------------------------------------------------------
// GEMM model calibration against Fig. 9
// ----------------------------------------------------------------------

TEST(GemmModel, Fig9LstmShapes)
{
    // Y = X W^T with X [64x512], W [2048x512]  ->  M=64, N=2048, K=512
    // Y^T = W X^T                              ->  M=2048, N=64, K=512
    const GpuSpec gpu = GpuSpec::titanXp();
    const GemmCost slow = estimateGemm({64, 2048, 512}, gpu);
    const GemmCost fast = estimateGemm({2048, 64, 512}, gpu);
    const double ratio = slow.time_us / fast.time_us;
    // Paper: the transposed form is ~2x faster for LSTM shapes.
    EXPECT_GT(ratio, 1.6) << "slow=" << slow.time_us
                          << "us fast=" << fast.time_us << "us";
    EXPECT_LT(ratio, 2.5);
    // And has better cache utilization.
    EXPECT_GT(fast.l2_hit_rate, slow.l2_hit_rate);
}

TEST(GemmModel, Fig9GruShapes)
{
    // GRU: W [3072x1024], X [64x1024] -> ~1.3x.
    const GpuSpec gpu = GpuSpec::titanXp();
    const GemmCost slow = estimateGemm({64, 3072, 1024}, gpu);
    const GemmCost fast = estimateGemm({3072, 64, 1024}, gpu);
    const double ratio = slow.time_us / fast.time_us;
    EXPECT_GT(ratio, 1.1);
    EXPECT_LT(ratio, 1.6);
}

TEST(GemmModel, SquareShapesNearPeak)
{
    const GpuSpec gpu = GpuSpec::titanXp();
    const GemmCost c = estimateGemm({2048, 2048, 2048}, gpu);
    EXPECT_GT(c.efficiency, 0.7);
    // Runtime close to flops / (peak * eff).
    const double ideal_us =
        2.0 * 2048 * 2048 * 2048 / (12.15e12 * c.efficiency) * 1e6;
    EXPECT_NEAR(c.time_us, ideal_us, ideal_us * 0.1 + 5.0);
}

TEST(GemmModel, PenaltyShrinksWithBatch)
{
    // As M (batch) grows toward the tile size, the skew penalty fades —
    // the layout optimization matters most at small batch, as the paper
    // observes.
    const GpuSpec gpu = GpuSpec::titanXp();
    double prev_ratio = 1e9;
    for (int64_t b : {32, 64, 128}) {
        const GemmCost slow = estimateGemm({b, 2048, 512}, gpu);
        const GemmCost fast = estimateGemm({2048, b, 512}, gpu);
        const double ratio = slow.time_us / fast.time_us;
        EXPECT_LT(ratio, prev_ratio + 1e-9);
        prev_ratio = ratio;
    }
    EXPECT_LT(prev_ratio, 1.35); // B=128: near parity
}

TEST(GemmModel, MonotoneInK)
{
    const GpuSpec gpu = GpuSpec::titanXp();
    double prev = 0.0;
    for (int64_t k : {128, 256, 512, 1024}) {
        const GemmCost c = estimateGemm({256, 256, k}, gpu);
        EXPECT_GT(c.time_us, prev);
        prev = c.time_us;
    }
}

TEST(GemmModel, FasterGpuIsFaster)
{
    const GemmCost xp =
        estimateGemm({1024, 1024, 1024}, GpuSpec::titanXp());
    const GemmCost v =
        estimateGemm({1024, 1024, 1024}, GpuSpec::titanV());
    EXPECT_LT(v.time_us, xp.time_us);
}

// ----------------------------------------------------------------------
// Kernel cost
// ----------------------------------------------------------------------

TEST(KernelCost, UncoalescedReverseIsCatastrophic)
{
    // The paper's §5.1: batch-sequential SequenceReverse reads ~1 GB/s
    // on a 547 GB/s part; the parallel fix restores bandwidth.
    graph::KernelDesc seq;
    seq.category = "sequence_reverse";
    seq.bytes_read = 64ll << 20;
    seq.bytes_written = 64ll << 20;
    seq.coalesced = false;
    graph::KernelDesc par = seq;
    par.coalesced = true;

    const GpuSpec gpu = GpuSpec::titanXp();
    const KernelCost c_seq = estimateKernel(seq, gpu);
    const KernelCost c_par = estimateKernel(par, gpu);
    EXPECT_GT(c_seq.time_us / c_par.time_us, 100.0);
}

TEST(KernelCost, LaunchesPropagate)
{
    graph::KernelDesc d;
    d.bytes_read = 1024;
    d.bytes_written = 1024;
    d.launches = 50;
    const KernelCost c = estimateKernel(d, GpuSpec::titanXp());
    EXPECT_EQ(c.launches, 50);
    // 50 kernel overheads dominate the tiny transfers.
    EXPECT_GT(c.time_us, 50 * 1.0);
}

TEST(KernelCost, GemmDescUsesGemmModel)
{
    graph::KernelDesc d;
    d.is_gemm = true;
    d.gemm_m = 64;
    d.gemm_n = 2048;
    d.gemm_k = 512;
    d.flops = 2ll * 64 * 2048 * 512;
    const KernelCost c = estimateKernel(d, GpuSpec::titanXp());
    const GemmCost g = estimateGemm({64, 2048, 512},
                                    GpuSpec::titanXp());
    EXPECT_NEAR(c.time_us, g.time_us, 1e-9);
}

// ----------------------------------------------------------------------
// Timeline / CUDA API model
// ----------------------------------------------------------------------

TEST(Timeline, ManySmallKernelsAreLaunchBound)
{
    // A chain of tiny element-wise ops: wall time ~= launches * 5us,
    // kernels much cheaper — MXNet Default's profile (Fig. 7a).
    graph::Graph g;
    graph::Val x = g.placeholder(Shape({64}), "x");
    graph::Val cur = x;
    for (int i = 0; i < 40; ++i)
        cur = g.apply1(ol::tanhOp(), {cur});

    const ProfileReport rep = simulateRun({cur}, GpuSpec::titanXp());
    EXPECT_EQ(rep.kernel_launches, 40);
    // CPU launch time is of the same order as the (overhead-dominated)
    // kernels themselves — the Fig. 7a profile shape.
    EXPECT_GT(rep.cuda_launch_time_us,
              rep.gpu_kernel_time_us * 0.5);
    EXPECT_GE(rep.wall_time_us, rep.cuda_launch_time_us);
}

TEST(Timeline, BigGemmIsComputeBound)
{
    graph::Graph g;
    graph::Val x = g.placeholder(Shape({2048, 2048}), "x");
    graph::Val w = g.weight(Shape({2048, 2048}), "w");
    graph::Val y = g.apply1(ol::gemm(false, true), {x, w});

    const ProfileReport rep = simulateRun({y}, GpuSpec::titanXp());
    EXPECT_GT(rep.gpu_kernel_time_us, rep.cuda_launch_time_us * 10);
    EXPECT_GT(rep.kernel_time_by_category.at("fully_connected"), 0.0);
}

TEST(Timeline, LayerAndPhaseAttribution)
{
    graph::Graph g;
    graph::Val x = g.placeholder(Shape({32, 32}), "x");
    graph::Val y;
    {
        graph::TagScope tag(g, "attention");
        y = g.apply1(ol::tanhOp(), {x});
    }
    graph::Val labels = g.placeholder(Shape({32}), "labels");
    graph::Val loss = g.apply1(ol::crossEntropyLoss(), {y, labels});
    auto gr = graph::backward(g, loss, {});
    (void)gr;

    const ProfileReport rep = simulateRun({loss}, GpuSpec::titanXp());
    EXPECT_GT(rep.kernel_time_by_layer.at("attention"), 0.0);
    EXPECT_GT(rep.kernel_time_by_phase.at("forward"), 0.0);
}

TEST(Timeline, ThroughputInvertsWallTime)
{
    ProfileReport rep;
    rep.wall_time_us = 1e6; // one second
    EXPECT_DOUBLE_EQ(rep.throughput(128), 128.0);
}

TEST(Timeline, DramTransactionsAre32Bytes)
{
    graph::Graph g;
    graph::Val x = g.placeholder(Shape({1024}), "x");
    graph::Val y = g.apply1(ol::tanhOp(), {x});
    const ProfileReport rep = simulateRun({y}, GpuSpec::titanXp());
    EXPECT_EQ(rep.dram_transactions, rep.dram_bytes / 32);
    EXPECT_GT(rep.dram_bytes, 0);
}

// ----------------------------------------------------------------------
// Power model
// ----------------------------------------------------------------------

TEST(Power, BusyGpuNearTdpIdleNearIdle)
{
    const GpuSpec gpu = GpuSpec::titanXp();
    ProfileReport busy;
    busy.wall_time_us = 100.0;
    busy.gpu_kernel_time_us = 100.0;
    busy.avg_utilization = 0.8;
    const PowerEstimate p_busy = estimatePower(busy, gpu, 10.0);
    EXPECT_GT(p_busy.avg_power_w, 180.0);
    EXPECT_LE(p_busy.avg_power_w, gpu.max_power_w);

    ProfileReport idle;
    idle.wall_time_us = 100.0;
    idle.gpu_kernel_time_us = 0.0;
    const PowerEstimate p_idle = estimatePower(idle, gpu, 10.0);
    EXPECT_NEAR(p_idle.avg_power_w, gpu.idle_power_w, 1.0);
}

TEST(Power, EnergyScalesWithTime)
{
    ProfileReport rep;
    rep.wall_time_us = 100.0;
    rep.gpu_kernel_time_us = 80.0;
    rep.avg_utilization = 0.5;
    const GpuSpec gpu = GpuSpec::titanXp();
    const PowerEstimate e1 = estimatePower(rep, gpu, 100.0);
    const PowerEstimate e2 = estimatePower(rep, gpu, 150.0);
    EXPECT_NEAR(e2.energy_j / e1.energy_j, 1.5, 1e-9);
    EXPECT_NEAR(e1.avg_power_w, e2.avg_power_w, 1e-9);
}

} // namespace
} // namespace echo::gpusim
