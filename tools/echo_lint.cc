/**
 * @file
 * echo-lint: command-line front end of the static-analysis layer
 * (src/analysis).  Builds the repo's training graphs at small presets,
 * runs the graph verifier, the schedule lifetime analyzer, the parallel
 * hazard detector, and — after applying the Echo recompute pass — the
 * pass auditor, then prints every diagnostic with its offending node
 * chain (name, op, phase, schedule slot).
 *
 * Exit status is the number of graphs with errors (0 = clean), so CI
 * can gate on it.  --dot=PATH additionally dumps the violating
 * subgraph of the first failing graph as Graphviz.
 *
 * A second mode checks serving workspace journals (written by
 * echo-serve --journal=PATH): --serve-journal=PATH parses the slot
 * occupancy intervals and runs the slot-aliasing detector — no two
 * live requests may ever share a (pool, slot) row.  This mode replaces
 * the graph lints; exit status is 0 when the journal is clean.
 *
 * A third mode audits compiled execution tapes: --tape compiles each
 * model's training schedule into a graph::Tape (the planner-addressed
 * steady-state form, graph/tape.h) and replays its records against the
 * liveness analyzer — arena sized to the planned peak byte for byte,
 * every transient at its planned offset, no overlapping live buffers,
 * no leaks, high-water equal to pool_peak_bytes.  Exit status is the
 * number of tapes with errors.
 *
 * A fourth mode replays an arbitrary pass pipeline under the contract
 * checker: --pipeline=SPEC (comma-separated pass names, or "default"
 * for the resolved training spec) statically validates the pipeline's
 * declared contracts first — an illegal ordering prints each contract
 * violation with the offending pass pair and exits 1 without running
 * anything — then runs the pipeline over freshly built forward graphs
 * with EVERY registered checker between passes, printing per-stage IR
 * snapshot diffs and the first failing invariant with its node chain.
 * --inject=bad-shape appends a deliberately invariant-breaking pass,
 * for checking that the postcondition auditors actually fire.
 *
 * usage: echo-lint [--model=word_lm|nmt|all] [--policy=off|auto|all]
 *                  [--dot=PATH]
 *        echo-lint --serve-journal=PATH [--serve-slots=N]
 *        echo-lint --tape [--model=word_lm|nmt|all]
 *        echo-lint --pipeline=SPEC [--model=...] [--inject=bad-shape]
 */
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/hazards.h"
#include "analysis/tape_audit.h"
#include "budget/planner.h"
#include "graph/tape.h"
#include "echo/recompute_pass.h"
#include "memory/liveness.h"
#include "memory/planner.h"
#include "models/nmt.h"
#include "models/word_lm.h"
#include "pass/builtin_passes.h"

namespace {

using namespace echo;

struct LintOptions
{
    std::string model = "all";  // word_lm | nmt | all
    std::string policy = "all"; // off | auto | all
    std::string dot_path;       // empty = no dump
    std::string serve_journal;  // empty = graph-lint mode
    int serve_slots = 8;
    std::string pipeline;       // empty = no pipeline replay
    std::string inject;         // "" | "bad-shape"
    bool tape = false;          // compile + audit execution tapes
    int64_t budget_bytes = 0;   // >0: lint the transient pool peak too
};

/** One graph to lint: where it came from and what it computes. */
struct LintSubject
{
    std::string title;
    const graph::Graph *graph = nullptr;
    std::vector<graph::Val> fetches;
    std::vector<graph::Val> weight_grads;
    /** Set when the Echo pass ran on this graph. */
    const analysis::GraphSnapshot *snapshot = nullptr;
    const pass::PassResult *pass_result = nullptr;
    /** Set when the element-wise fusion pass ran on this graph (and
     *  the recompute pass has not rewritten its frontiers since). */
    const fusion::FusionResult *fusion = nullptr;
};

int
lintOne(const LintSubject &subject, const LintOptions &opts,
        bool &dot_written)
{
    analysis::AnalysisReport report =
        analysis::analyzeAll(subject.fetches, subject.weight_grads);
    if (opts.budget_bytes > 0) {
        // The budget lint: does this graph's transient pool fit?  A
        // violation names the binding buffers live at the peak.
        const memory::LivenessResult live = memory::analyzeLiveness(
            subject.fetches, subject.weight_grads);
        const memory::MemoryPlan plan = memory::planMemory(live);
        report.merge(
            analysis::checkPoolBudget(live, plan, opts.budget_bytes));
    }
    if (subject.snapshot != nullptr) {
        report.merge(analysis::auditRecomputePass(
            *subject.snapshot, *subject.graph, subject.fetches,
            subject.weight_grads, *subject.pass_result));
    }
    if (subject.fusion != nullptr)
        report.merge(
            analysis::auditFusion(subject.fetches, *subject.fusion));

    std::cout << "== " << subject.title << ": ";
    if (report.diagnostics.empty()) {
        std::cout << "clean\n";
        return 0;
    }
    std::cout << report.errorCount() << " error(s), "
              << report.warningCount() << " warning(s)\n"
              << report.toString();

    if (!report.ok() && !opts.dot_path.empty() && !dot_written) {
        std::vector<graph::Node *> universe;
        for (const auto &n : subject.graph->nodes())
            universe.push_back(n.get());
        std::ofstream out(opts.dot_path);
        out << analysis::violatingSubgraphDot(report, universe);
        std::cout << "   violating subgraph written to "
                  << opts.dot_path << "\n";
        dot_written = true;
    }
    return report.ok() ? 0 : 1;
}

/**
 * Lint one model's training graph: baseline first, then (policy
 * permitting) rewritten by the Echo pass and audited against the
 * pre-pass snapshot.  @p build must populate graph/fetches/weight_grads.
 */
template <typename Model>
int
lintModel(Model &model, const std::string &title,
          const LintOptions &opts, bool &dot_written)
{
    int failures = 0;

    LintSubject base;
    base.title = title + " (pass off, " +
                 std::to_string(model.fusionResult().num_groups) +
                 " fused groups)";
    base.graph = &model.graph();
    base.fetches = model.fetches();
    base.weight_grads = model.weightGrads();
    // The fusion audit replays the journalled groups against the
    // orphaned originals, so it must run before the recompute pass
    // redirects any fused frontier to a recomputed clone.
    base.fusion = &model.fusionResult();
    if (opts.policy == "off" || opts.policy == "all")
        failures += lintOne(base, opts, dot_written);

    if (opts.policy == "auto" || opts.policy == "all") {
        const analysis::GraphSnapshot snapshot = analysis::snapshotGraph(
            model.graph(), model.fetches(), model.weightGrads());
        pass::PassConfig cfg;
        cfg.policy = pass::PassConfig::Policy::kAuto;
        const pass::PassResult result = pass::runRecomputePass(
            model.graph(), model.fetches(), cfg);

        LintSubject rewritten = base;
        rewritten.title = title + " (pass auto, " +
                          std::to_string(result.num_regions) +
                          " regions)";
        rewritten.snapshot = &snapshot;
        rewritten.pass_result = &result;
        // The recompute pass may redirect a fused sink's frontier to
        // recomputed clones, so the frontier-intact audit only holds
        // on the pre-pass graph.
        rewritten.fusion = nullptr;
        failures += lintOne(rewritten, opts, dot_written);
    }
    return failures;
}

/** Parse a lease terminal status: a word or its numeric code. */
bool
parseLeaseStatus(const std::string &token, analysis::LeaseStatus *out)
{
    if (token == "served" || token == "0")
        *out = analysis::LeaseStatus::kServed;
    else if (token == "cancelled" || token == "1")
        *out = analysis::LeaseStatus::kCancelled;
    else if (token == "expired" || token == "2")
        *out = analysis::LeaseStatus::kExpired;
    else
        return false;
    return true;
}

/**
 * Lint a serving workspace journal ('#' comments allowed).  Two line
 * formats, auto-detected:
 *  - legacy run-to-completion intervals (echo-serve --journal):
 *      "request_id pool slot acquired released"
 *  - continuous-scheduler slot leases:
 *      "request_id pool slot acquired released reinit status"
 *    where status is served|cancelled|expired (or 0|1|2).
 * Any lease line switches the whole journal to the slot-recycling
 * audit (exclusivity + state-leak + lifecycle); otherwise only the
 * aliasing/range check runs.
 */
int
lintServeJournal(const LintOptions &opts)
{
    std::ifstream in(opts.serve_journal);
    if (!in) {
        std::cerr << "echo-lint: cannot open " << opts.serve_journal
                  << "\n";
        return 2;
    }
    std::vector<analysis::SlotLease> journal;
    bool any_lease_line = false;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        analysis::SlotLease lease;
        if (!(fields >> lease.request_id >> lease.pool >> lease.slot >>
              lease.acquired >> lease.released)) {
            std::cerr << "echo-lint: " << opts.serve_journal << ":"
                      << line_no << ": malformed journal line\n";
            return 2;
        }
        std::string status;
        if (fields >> lease.reinit >> status) {
            if (!parseLeaseStatus(status, &lease.status)) {
                std::cerr << "echo-lint: " << opts.serve_journal << ":"
                          << line_no << ": bad lease status '" << status
                          << "'\n";
                return 2;
            }
            any_lease_line = true;
        }
        journal.push_back(lease);
    }

    analysis::AnalysisReport report;
    if (any_lease_line) {
        report = analysis::auditSlotRecycling(journal, opts.serve_slots);
    } else {
        std::vector<analysis::SlotInterval> intervals;
        intervals.reserve(journal.size());
        for (const analysis::SlotLease &lease : journal)
            intervals.push_back(analysis::SlotInterval{
                lease.request_id, lease.pool, lease.slot, lease.acquired,
                lease.released});
        report =
            analysis::detectWorkspaceAliasing(intervals, opts.serve_slots);
    }
    std::cout << "== serve journal (" << journal.size()
              << (any_lease_line ? " leases, " : " intervals, ")
              << opts.serve_slots << " slots): ";
    if (report.diagnostics.empty()) {
        std::cout << "clean\n";
        return 0;
    }
    std::cout << report.errorCount() << " error(s), "
              << report.warningCount() << " warning(s)\n"
              << report.toString();
    return report.ok() ? 0 : 1;
}

/**
 * Compile one model's full training schedule (fetches + weight grads)
 * into an execution tape and replay it against the liveness analyzer.
 */
int
lintOneTape(const std::vector<graph::Val> &fetches,
            const std::vector<graph::Val> &weight_grads,
            const std::string &title)
{
    std::vector<graph::Val> all = fetches;
    all.insert(all.end(), weight_grads.begin(), weight_grads.end());
    const graph::Tape tape(all);
    std::cout << "== " << title << " tape ("
              << tape.records().size() << " records, arena "
              << tape.arenaBytes() << " B, persistent "
              << tape.persistentBytes() << " B): ";
    const analysis::AnalysisReport report = analysis::auditTape(tape);
    if (report.diagnostics.empty()) {
        std::cout << "clean\n";
        return 0;
    }
    std::cout << report.errorCount() << " error(s), "
              << report.warningCount() << " warning(s)\n"
              << report.toString();
    return report.ok() ? 0 : 1;
}

int
lintTapes(const LintOptions &opts)
{
    int failures = 0;
    if (opts.model == "word_lm" || opts.model == "all") {
        models::WordLmConfig cfg;
        cfg.vocab = 120;
        cfg.hidden = 16;
        cfg.layers = 2;
        cfg.batch = 4;
        cfg.seq_len = 10;
        models::WordLmModel model(cfg);
        failures += lintOneTape(model.fetches(), model.weightGrads(),
                                "word_lm");
    }
    if (opts.model == "nmt" || opts.model == "all") {
        models::NmtConfig cfg;
        cfg.src_vocab = 60;
        cfg.tgt_vocab = 70;
        cfg.hidden = 16;
        cfg.enc_layers = 1;
        cfg.batch = 3;
        cfg.src_len = 8;
        cfg.tgt_len = 8;
        models::NmtModel model(cfg);
        failures += lintOneTape(model.fetches(), model.weightGrads(),
                                "nmt");
    }
    if (failures == 0)
        std::cout << "echo-lint: all tapes clean\n";
    else
        std::cout << "echo-lint: " << failures
                  << " tape(s) with errors\n";
    return failures;
}

/** The injected mutation pass: declares a clean contract but corrupts
 *  a reachable node's output shape, so the graph verifier's
 *  postcondition audit must catch it (the mutation-test leg). */
class BadShapePass : public pass::Pass
{
  public:
    const char *name() const override { return "bad-shape"; }
    void
    run(pass::PipelineContext &ctx) override
    {
        // Corrupt a fetched value's recorded shape: nothing consumes a
        // fetch, so no op's own shape inference trips first and the
        // graph verifier gets to report the mismatch with its chain.
        const std::vector<graph::Val> eff = ctx.effectiveFetches();
        if (eff.empty())
            return;
        graph::Node *node = eff[0].node;
        const auto idx = static_cast<size_t>(eff[0].index);
        node->out_shapes[idx] =
            Shape({node->out_shapes[idx].numel() + 1});
    }
};

/**
 * Replay @p spec over one freshly built forward graph: static
 * contract validation first (illegal = print the violations, fail),
 * then the run with every registered checker between passes.
 */
int
replayPipeline(graph::Graph &g, const std::string &title,
               const graph::Val &loss, const models::NamedWeights &weights,
               const std::string &spec, const LintOptions &opts)
{
    pass::PassManager pm = pass::buildPipeline(spec);
    if (opts.inject == "bad-shape")
        pm.add(std::make_unique<BadShapePass>());

    pass::PipelineContext ctx(g);
    ctx.loss = loss;
    ctx.wrt.reserve(weights.size());
    for (const auto &[name, val] : weights)
        ctx.wrt.push_back(val);

    std::cout << "== " << title << " pipeline '" << pm.spec() << "': ";
    const std::vector<pass::ContractViolation> violations =
        pm.validate(ctx.initialInvariants());
    if (!violations.empty()) {
        std::cout << "statically ILLEGAL (" << violations.size()
                  << " contract violation(s))\n";
        for (const pass::ContractViolation &v : violations)
            std::cout << "   " << v.message << "\n";
        return 1;
    }

    pass::PassManager::RunOptions run_opts;
    run_opts.all_checkers = true;
    run_opts.what = "echo-lint --pipeline";
    const pass::PipelineReport report = pm.run(ctx, run_opts);
    std::cout << (report.ok() ? "clean\n" : "postcondition FAILURE\n")
              << report.toString();
    return report.ok() ? 0 : 1;
}

int
lintPipelines(const LintOptions &opts)
{
    std::string spec = opts.pipeline;
    if (spec == "default")
        spec = pass::resolveSpec(pass::PipelineKind::kTraining);
    for (const std::string &name : pass::parseSpec(spec)) {
        if (!pass::isRegisteredPass(name)) {
            std::cerr << "echo-lint: unknown pass '" << name
                      << "' in --pipeline spec; registered:";
            for (const std::string &reg : pass::registeredPassNames())
                std::cerr << " " << reg;
            std::cerr << "\n";
            return 2;
        }
    }

    int failures = 0;
    if (opts.model == "word_lm" || opts.model == "all") {
        models::WordLmConfig cfg;
        cfg.vocab = 120;
        cfg.hidden = 16;
        cfg.layers = 2;
        cfg.batch = 4;
        cfg.seq_len = 10;
        // Spec "none": the constructor leaves the forward graph
        // untouched so the replay below owns every transform.
        models::WordLmModel model(cfg, "none");
        failures += replayPipeline(model.graph(), "word_lm",
                                   model.loss(), model.weights(), spec,
                                   opts);
    }
    if (opts.model == "nmt" || opts.model == "all") {
        models::NmtConfig cfg;
        cfg.src_vocab = 60;
        cfg.tgt_vocab = 70;
        cfg.hidden = 16;
        cfg.enc_layers = 1;
        cfg.batch = 3;
        cfg.src_len = 8;
        cfg.tgt_len = 8;
        models::NmtModel model(cfg, "none");
        failures += replayPipeline(model.graph(), "nmt", model.loss(),
                                   model.weights(), spec, opts);
    }

    if (failures == 0)
        std::cout << "echo-lint: all pipelines clean\n";
    else
        std::cout << "echo-lint: " << failures
                  << " pipeline replay(s) failed\n";
    return failures;
}

bool
parseArgs(int argc, char **argv, LintOptions &opts)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--model=", 0) == 0) {
            opts.model = arg.substr(8);
        } else if (arg.rfind("--policy=", 0) == 0) {
            opts.policy = arg.substr(9);
        } else if (arg.rfind("--dot=", 0) == 0) {
            opts.dot_path = arg.substr(6);
        } else if (arg.rfind("--serve-journal=", 0) == 0) {
            opts.serve_journal = arg.substr(16);
        } else if (arg.rfind("--serve-slots=", 0) == 0) {
            opts.serve_slots = std::stoi(arg.substr(14));
        } else if (arg == "--tape") {
            opts.tape = true;
        } else if (arg.rfind("--pipeline=", 0) == 0) {
            opts.pipeline = arg.substr(11);
        } else if (arg.rfind("--inject=", 0) == 0) {
            opts.inject = arg.substr(9);
        } else if (arg.rfind("--budget=", 0) == 0) {
            if (!budget::parseByteSize(arg.substr(9), &opts.budget_bytes) ||
                opts.budget_bytes <= 0) {
                std::cerr << "echo-lint: bad --budget value '"
                          << arg.substr(9) << "'\n";
                return false;
            }
        } else {
            std::cerr << "echo-lint: unknown argument " << arg << "\n"
                      << "usage: echo-lint [--model=word_lm|nmt|all] "
                         "[--policy=off|auto|all] [--dot=PATH] "
                         "[--budget=BYTES]\n"
                         "       echo-lint --serve-journal=PATH "
                         "[--serve-slots=N]\n"
                         "       echo-lint --tape "
                         "[--model=word_lm|nmt|all]\n"
                         "       echo-lint --pipeline=SPEC "
                         "[--model=...] [--inject=bad-shape]\n";
            return false;
        }
    }
    const bool model_ok = opts.model == "word_lm" ||
                          opts.model == "nmt" || opts.model == "all";
    const bool policy_ok = opts.policy == "off" ||
                           opts.policy == "auto" || opts.policy == "all";
    if (!model_ok || !policy_ok) {
        std::cerr << "echo-lint: bad --model or --policy value\n";
        return false;
    }
    if (!opts.inject.empty() && opts.inject != "bad-shape") {
        std::cerr << "echo-lint: bad --inject value (only bad-shape)\n";
        return false;
    }
    if (!opts.inject.empty() && opts.pipeline.empty()) {
        std::cerr << "echo-lint: --inject needs --pipeline\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    LintOptions opts;
    if (!parseArgs(argc, argv, opts))
        return 2;

    if (!opts.serve_journal.empty())
        return lintServeJournal(opts);
    if (opts.tape)
        return lintTapes(opts);
    if (!opts.pipeline.empty())
        return lintPipelines(opts);

    int failures = 0;
    bool dot_written = false;

    if (opts.model == "word_lm" || opts.model == "all") {
        models::WordLmConfig cfg;
        cfg.vocab = 120;
        cfg.hidden = 16;
        cfg.layers = 2;
        cfg.batch = 4;
        cfg.seq_len = 10;
        models::WordLmModel model(cfg);
        failures +=
            lintModel(model, "word_lm", opts, dot_written);
    }
    if (opts.model == "nmt" || opts.model == "all") {
        models::NmtConfig cfg;
        cfg.src_vocab = 60;
        cfg.tgt_vocab = 70;
        cfg.hidden = 16;
        cfg.enc_layers = 1;
        cfg.batch = 3;
        cfg.src_len = 8;
        cfg.tgt_len = 8;
        models::NmtModel model(cfg);
        failures += lintModel(model, "nmt", opts, dot_written);
    }

    if (failures == 0)
        std::cout << "echo-lint: all graphs clean\n";
    else
        std::cout << "echo-lint: " << failures
                  << " graph(s) with errors\n";
    return failures;
}
