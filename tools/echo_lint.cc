/**
 * @file
 * echo-lint: command-line front end of the static-analysis layer
 * (src/analysis).  Builds the repo's training graphs at small presets,
 * runs the graph verifier, the schedule lifetime analyzer, the parallel
 * hazard detector, and — after applying the Echo recompute pass — the
 * pass auditor, then prints every diagnostic with its offending node
 * chain (name, op, phase, schedule slot).
 *
 * Exit status is the number of graphs with errors (0 = clean), so CI
 * can gate on it.  --dot=PATH additionally dumps the violating
 * subgraph of the first failing graph as Graphviz.
 *
 * A second mode checks serving workspace journals (written by
 * echo-serve --journal=PATH): --serve-journal=PATH parses the slot
 * occupancy intervals and runs the slot-aliasing detector — no two
 * live requests may ever share a (pool, slot) row.  This mode replaces
 * the graph lints; exit status is 0 when the journal is clean.
 *
 * usage: echo-lint [--model=word_lm|nmt|all] [--policy=off|auto|all]
 *                  [--dot=PATH]
 *        echo-lint --serve-journal=PATH [--serve-slots=N]
 */
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/hazards.h"
#include "echo/recompute_pass.h"
#include "models/nmt.h"
#include "models/word_lm.h"

namespace {

using namespace echo;

struct LintOptions
{
    std::string model = "all";  // word_lm | nmt | all
    std::string policy = "all"; // off | auto | all
    std::string dot_path;       // empty = no dump
    std::string serve_journal;  // empty = graph-lint mode
    int serve_slots = 8;
};

/** One graph to lint: where it came from and what it computes. */
struct LintSubject
{
    std::string title;
    const graph::Graph *graph = nullptr;
    std::vector<graph::Val> fetches;
    std::vector<graph::Val> weight_grads;
    /** Set when the Echo pass ran on this graph. */
    const analysis::GraphSnapshot *snapshot = nullptr;
    const pass::PassResult *pass_result = nullptr;
    /** Set when the element-wise fusion pass ran on this graph (and
     *  the recompute pass has not rewritten its frontiers since). */
    const fusion::FusionResult *fusion = nullptr;
};

int
lintOne(const LintSubject &subject, const LintOptions &opts,
        bool &dot_written)
{
    analysis::AnalysisReport report =
        analysis::analyzeAll(subject.fetches, subject.weight_grads);
    if (subject.snapshot != nullptr) {
        report.merge(analysis::auditRecomputePass(
            *subject.snapshot, *subject.graph, subject.fetches,
            subject.weight_grads, *subject.pass_result));
    }
    if (subject.fusion != nullptr)
        report.merge(
            analysis::auditFusion(subject.fetches, *subject.fusion));

    std::cout << "== " << subject.title << ": ";
    if (report.diagnostics.empty()) {
        std::cout << "clean\n";
        return 0;
    }
    std::cout << report.errorCount() << " error(s), "
              << report.warningCount() << " warning(s)\n"
              << report.toString();

    if (!report.ok() && !opts.dot_path.empty() && !dot_written) {
        std::vector<graph::Node *> universe;
        for (const auto &n : subject.graph->nodes())
            universe.push_back(n.get());
        std::ofstream out(opts.dot_path);
        out << analysis::violatingSubgraphDot(report, universe);
        std::cout << "   violating subgraph written to "
                  << opts.dot_path << "\n";
        dot_written = true;
    }
    return report.ok() ? 0 : 1;
}

/**
 * Lint one model's training graph: baseline first, then (policy
 * permitting) rewritten by the Echo pass and audited against the
 * pre-pass snapshot.  @p build must populate graph/fetches/weight_grads.
 */
template <typename Model>
int
lintModel(Model &model, const std::string &title,
          const LintOptions &opts, bool &dot_written)
{
    int failures = 0;

    LintSubject base;
    base.title = title + " (pass off, " +
                 std::to_string(model.fusionResult().num_groups) +
                 " fused groups)";
    base.graph = &model.graph();
    base.fetches = model.fetches();
    base.weight_grads = model.weightGrads();
    // The fusion audit replays the journalled groups against the
    // orphaned originals, so it must run before the recompute pass
    // redirects any fused frontier to a recomputed clone.
    base.fusion = &model.fusionResult();
    if (opts.policy == "off" || opts.policy == "all")
        failures += lintOne(base, opts, dot_written);

    if (opts.policy == "auto" || opts.policy == "all") {
        const analysis::GraphSnapshot snapshot = analysis::snapshotGraph(
            model.graph(), model.fetches(), model.weightGrads());
        pass::PassConfig cfg;
        cfg.policy = pass::PassConfig::Policy::kAuto;
        const pass::PassResult result = pass::runRecomputePass(
            model.graph(), model.fetches(), cfg);

        LintSubject rewritten = base;
        rewritten.title = title + " (pass auto, " +
                          std::to_string(result.num_regions) +
                          " regions)";
        rewritten.snapshot = &snapshot;
        rewritten.pass_result = &result;
        // The recompute pass may redirect a fused sink's frontier to
        // recomputed clones, so the frontier-intact audit only holds
        // on the pre-pass graph.
        rewritten.fusion = nullptr;
        failures += lintOne(rewritten, opts, dot_written);
    }
    return failures;
}

/**
 * Lint a serving workspace journal: one interval per line,
 * "request_id pool slot acquired released" (echo-serve --journal
 * format; '#' comments allowed).
 */
int
lintServeJournal(const LintOptions &opts)
{
    std::ifstream in(opts.serve_journal);
    if (!in) {
        std::cerr << "echo-lint: cannot open " << opts.serve_journal
                  << "\n";
        return 2;
    }
    std::vector<analysis::SlotInterval> journal;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        analysis::SlotInterval iv;
        if (!(fields >> iv.request_id >> iv.pool >> iv.slot >>
              iv.acquired >> iv.released)) {
            std::cerr << "echo-lint: " << opts.serve_journal << ":"
                      << line_no << ": malformed journal line\n";
            return 2;
        }
        journal.push_back(iv);
    }

    const analysis::AnalysisReport report =
        analysis::detectWorkspaceAliasing(journal, opts.serve_slots);
    std::cout << "== serve journal (" << journal.size()
              << " intervals, " << opts.serve_slots << " slots): ";
    if (report.diagnostics.empty()) {
        std::cout << "clean\n";
        return 0;
    }
    std::cout << report.errorCount() << " error(s), "
              << report.warningCount() << " warning(s)\n"
              << report.toString();
    return report.ok() ? 0 : 1;
}

bool
parseArgs(int argc, char **argv, LintOptions &opts)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--model=", 0) == 0) {
            opts.model = arg.substr(8);
        } else if (arg.rfind("--policy=", 0) == 0) {
            opts.policy = arg.substr(9);
        } else if (arg.rfind("--dot=", 0) == 0) {
            opts.dot_path = arg.substr(6);
        } else if (arg.rfind("--serve-journal=", 0) == 0) {
            opts.serve_journal = arg.substr(16);
        } else if (arg.rfind("--serve-slots=", 0) == 0) {
            opts.serve_slots = std::stoi(arg.substr(14));
        } else {
            std::cerr << "echo-lint: unknown argument " << arg << "\n"
                      << "usage: echo-lint [--model=word_lm|nmt|all] "
                         "[--policy=off|auto|all] [--dot=PATH]\n"
                         "       echo-lint --serve-journal=PATH "
                         "[--serve-slots=N]\n";
            return false;
        }
    }
    const bool model_ok = opts.model == "word_lm" ||
                          opts.model == "nmt" || opts.model == "all";
    const bool policy_ok = opts.policy == "off" ||
                           opts.policy == "auto" || opts.policy == "all";
    if (!model_ok || !policy_ok) {
        std::cerr << "echo-lint: bad --model or --policy value\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    LintOptions opts;
    if (!parseArgs(argc, argv, opts))
        return 2;

    if (!opts.serve_journal.empty())
        return lintServeJournal(opts);

    int failures = 0;
    bool dot_written = false;

    if (opts.model == "word_lm" || opts.model == "all") {
        models::WordLmConfig cfg;
        cfg.vocab = 120;
        cfg.hidden = 16;
        cfg.layers = 2;
        cfg.batch = 4;
        cfg.seq_len = 10;
        models::WordLmModel model(cfg);
        failures +=
            lintModel(model, "word_lm", opts, dot_written);
    }
    if (opts.model == "nmt" || opts.model == "all") {
        models::NmtConfig cfg;
        cfg.src_vocab = 60;
        cfg.tgt_vocab = 70;
        cfg.hidden = 16;
        cfg.enc_layers = 1;
        cfg.batch = 3;
        cfg.src_len = 8;
        cfg.tgt_len = 8;
        models::NmtModel model(cfg);
        failures += lintModel(model, "nmt", opts, dot_written);
    }

    if (failures == 0)
        std::cout << "echo-lint: all graphs clean\n";
    else
        std::cout << "echo-lint: " << failures
                  << " graph(s) with errors\n";
    return failures;
}
