/**
 * @file
 * echo-trace: command-line front end of the observability layer
 * (src/obs).  Builds one of the repo's training models at a small
 * preset, optionally applies the Echo recompute pass, runs a few real
 * training iterations with tracing enabled, and emits:
 *
 *  - a Chrome Trace Event Format JSON (open in chrome://tracing or
 *    Perfetto) with per-op executor spans, thread-pool worker spans,
 *    trainer iteration spans, Echo pass decision events, and planner
 *    alloc/free events,
 *  - a footprint-curve CSV (schedule position vs live transient bytes)
 *    replayed from the memory plan's timeline — the Fig. 5-style
 *    per-iteration view,
 *  - a counter summary on stdout.
 *
 * The tool self-checks that the replayed timeline is consistent: no
 * overlapping live allocations, balanced allocs/frees, and an address
 * peak byte-identical to MemoryPlan::pool_peak_bytes.  Exit status is
 * nonzero when the self-check fails, so CI can gate on it.
 *
 * usage: echo-trace [--model word_lm|nmt] [--policy off|auto]
 *                   [--iters N] [--out trace.json] [--csv footprint.csv]
 *        (both "--flag value" and "--flag=value" forms are accepted)
 */
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "data/batcher.h"
#include "pass/builtin_passes.h"
#include "graph/executor.h"
#include "memory/planner.h"
#include "models/nmt.h"
#include "models/word_lm.h"
#include "obs/obs.h"
#include "train/optimizer.h"
#include "train/trainer.h"

namespace {

using namespace echo;

struct TraceOptions
{
    std::string model = "word_lm"; // word_lm | nmt
    std::string policy = "auto";   // off | auto
    int64_t iters = 2;
    std::string out_path = "echo_trace.json";
    std::string csv_path = "echo_footprint.csv";
};

void
usage(std::ostream &os)
{
    os << "usage: echo-trace [--model word_lm|nmt] [--policy off|auto]\n"
          "                  [--iters N] [--out trace.json] "
          "[--csv footprint.csv]\n";
}

/** Parse "--flag=value" / "--flag value"; returns false on error. */
bool
parseArgs(int argc, char **argv, TraceOptions &opts)
{
    auto take = [&](int &i, const std::string &arg,
                    const std::string &flag,
                    std::string &out) -> bool {
        if (arg.rfind(flag + "=", 0) == 0) {
            out = arg.substr(flag.size() + 1);
            return true;
        }
        if (arg == flag && i + 1 < argc) {
            out = argv[++i];
            return true;
        }
        return false;
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (take(i, arg, "--model", opts.model) ||
            take(i, arg, "--policy", opts.policy) ||
            take(i, arg, "--out", opts.out_path) ||
            take(i, arg, "--csv", opts.csv_path)) {
            continue;
        }
        if (take(i, arg, "--iters", value)) {
            opts.iters = std::strtoll(value.c_str(), nullptr, 10);
            if (opts.iters < 1) {
                std::cerr << "echo-trace: --iters must be >= 1\n";
                return false;
            }
            continue;
        }
        std::cerr << "echo-trace: unknown argument " << arg << "\n";
        usage(std::cerr);
        return false;
    }
    if (opts.model != "word_lm" && opts.model != "nmt") {
        std::cerr << "echo-trace: bad --model value\n";
        return false;
    }
    if (opts.policy != "off" && opts.policy != "auto") {
        std::cerr << "echo-trace: bad --policy value\n";
        return false;
    }
    return true;
}

/** Train @p iters steps of a built model; shared by both model paths. */
template <typename Model, typename Batcher>
void
runIterations(Model &model, Batcher &batcher, int64_t iters)
{
    Rng rng(17);
    models::ParamStore params = model.initialParams(rng);
    train::SgdOptimizer opt(0.1, 0.9);

    graph::Executor ex(model.fetches());
    train::TrainLoopConfig loop;
    loop.iterations = iters;
    loop.seconds_per_iteration = 1.0;
    train::runTrainingLoop(
        ex, loop,
        [&](int64_t) { return model.makeFeed(params, batcher.next()); },
        [&](double, const std::vector<Tensor> &grads) {
            opt.step(params, model.weights(), grads);
        });
}

/** Plan memory with a recorded timeline, replay it, and write the
 *  footprint CSV.  Returns false when the self-check fails. */
bool
planAndReplay(const std::vector<graph::Val> &fetches,
              const std::vector<graph::Val> &weight_grads,
              const TraceOptions &opts)
{
    const memory::LivenessResult live =
        memory::analyzeLiveness(fetches, weight_grads);
    obs::MemoryTimeline timeline;
    memory::PlannerOptions popts;
    popts.timeline = &timeline;
    const memory::MemoryPlan plan = memory::planMemory(live, popts);
    const obs::TimelineReplay replay = obs::replayTimeline(timeline);

    std::cout << "memory plan: pool peak " << plan.pool_peak_bytes
              << " B at slot " << plan.peak_pos << ", persistent "
              << plan.persistent_bytes << " B\n"
              << "timeline replay: live peak " << replay.live_peak_bytes
              << " B at slot " << replay.peak_pos << ", address peak "
              << replay.address_peak_bytes << " B, "
              << timeline.events.size() << " events\n";

    bool ok = true;
    for (const std::string &v : replay.violations) {
        std::cerr << "echo-trace: timeline violation: " << v << "\n";
        ok = false;
    }
    if (replay.outstanding_bytes != 0) {
        std::cerr << "echo-trace: timeline leaks "
                  << replay.outstanding_bytes << " bytes\n";
        ok = false;
    }
    if (replay.address_peak_bytes != plan.pool_peak_bytes) {
        std::cerr << "echo-trace: replayed address peak "
                  << replay.address_peak_bytes
                  << " != planner pool peak " << plan.pool_peak_bytes
                  << "\n";
        ok = false;
    }

    if (!opts.csv_path.empty()) {
        std::ofstream csv(opts.csv_path);
        if (!csv.good()) {
            std::cerr << "echo-trace: cannot open " << opts.csv_path
                      << "\n";
            return false;
        }
        obs::writeFootprintCsv(replay, csv);
        std::cout << "footprint curve written to " << opts.csv_path
                  << " (" << replay.curve.size() << " points)\n";
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    TraceOptions opts;
    if (!parseArgs(argc, argv, opts))
        return 2;

    pass::PassConfig pass_cfg;
    pass_cfg.policy = opts.policy == "auto"
                          ? pass::PassConfig::Policy::kAuto
                          : pass::PassConfig::Policy::kOff;

    obs::startTrace(opts.out_path);

    bool ok = true;
    if (opts.model == "word_lm") {
        models::WordLmConfig cfg;
        cfg.vocab = 120;
        cfg.hidden = 32;
        cfg.layers = 2;
        cfg.batch = 8;
        cfg.seq_len = 16;
        models::WordLmModel model(cfg);
        pass::PipelineContext pctx(model.graph());
        pctx.fetches = model.fetches();
        pctx.weight_grads = model.weightGrads();
        pctx.recompute_config = pass_cfg;
        pass::buildPipeline("recompute")
            .runOrDie(pctx, "echo-trace recompute");
        const pass::PassResult pr = pctx.recompute;
        std::cout << "echo pass: " << pr.num_regions << " regions, "
                  << pr.bytes_saved << " B saved, " << pr.bytes_added
                  << " B added\n";

        data::CorpusConfig ccfg;
        ccfg.vocab = data::Vocab{cfg.vocab};
        ccfg.num_tokens = 20000;
        ccfg.seed = 13;
        data::Corpus corpus = data::Corpus::generate(ccfg);
        data::LmBatcher batcher(corpus, cfg.batch, cfg.seq_len);
        runIterations(model, batcher, opts.iters);
        ok = planAndReplay(model.fetches(), model.weightGrads(), opts);
    } else {
        models::NmtConfig cfg;
        cfg.src_vocab = 80;
        cfg.tgt_vocab = 90;
        cfg.hidden = 24;
        cfg.enc_layers = 1;
        cfg.batch = 4;
        cfg.src_len = 10;
        cfg.tgt_len = 10;
        models::NmtModel model(cfg);
        pass::PipelineContext pctx(model.graph());
        pctx.fetches = model.fetches();
        pctx.weight_grads = model.weightGrads();
        pctx.recompute_config = pass_cfg;
        pass::buildPipeline("recompute")
            .runOrDie(pctx, "echo-trace recompute");
        const pass::PassResult pr = pctx.recompute;
        std::cout << "echo pass: " << pr.num_regions << " regions, "
                  << pr.bytes_saved << " B saved, " << pr.bytes_added
                  << " B added\n";

        data::ParallelCorpusConfig ccfg;
        ccfg.src_vocab = data::Vocab{cfg.src_vocab};
        ccfg.tgt_vocab = data::Vocab{cfg.tgt_vocab};
        ccfg.num_pairs = 200;
        ccfg.max_len = 9;
        data::ParallelCorpus corpus =
            data::ParallelCorpus::generate(ccfg);
        data::NmtBatcher batcher(corpus, cfg.batch, cfg.src_len,
                                 cfg.tgt_len);
        runIterations(model, batcher, opts.iters);
        ok = planAndReplay(model.fetches(), model.weightGrads(), opts);
    }

    obs::stopTrace();
    std::cout << "trace written to " << opts.out_path << "\n";

    std::cout << "\ncounters (D = deterministic, S = scheduling):\n";
    for (const obs::CounterSample &c : obs::snapshotCounters()) {
        std::cout << "  ["
                  << (c.kind == obs::CounterKind::kDeterministic ? 'D'
                                                                 : 'S')
                  << "] " << c.name << " = " << c.value << "\n";
    }
    return ok ? 0 : 1;
}
