/**
 * @file
 * echo-plan: command-line front end of the budget-targeted
 * recomputation planner (src/budget).  Builds a training graph at a
 * small preset, asks planWithBudget to fit its transient pool in the
 * requested byte budget, and prints what the planner decided and
 * measured: baseline / tightest / planned pool peaks, the added replay
 * time, solver statistics, and — for infeasible budgets — the binding
 * buffers that keep the budget out of reach.
 *
 * --solver=all runs each solver against a fresh copy of the model so
 * their plans are directly comparable (the greedy baseline vs the
 * exact chain DP vs the Lagrangian relaxation).
 *
 * Exit status: 0 when every requested solve was feasible, 1 when any
 * was infeasible, 2 on usage errors — so CI can gate on a budget.
 *
 * --tape=on routes the planner's replay-time measurements through the
 * compiled execution tape (graph/tape.h) instead of the interpreting
 * executor, so the reported replay costs reflect steady-state
 * (arena-backed, zero-allocation) execution.  Latched process-wide
 * before the first run (it sets ECHO_TAPE).
 *
 * usage: echo-plan --budget=BYTES|--budget-fraction=F
 *                  [--model=word_lm|nmt] [--solver=greedy|dp|lagrange|all]
 *                  [--tape=on|off]
 */
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "budget/planner.h"
#include "core/table.h"
#include "memory/liveness.h"
#include "memory/planner.h"
#include "models/nmt.h"
#include "models/word_lm.h"

namespace {

using namespace echo;

struct PlanOptions
{
    std::string model = "word_lm"; // word_lm | nmt
    std::string solver = "dp";     // greedy | dp | lagrange | all
    int64_t budget_bytes = 0;      // absolute budget, or
    double budget_fraction = 0.0;  // fraction of the baseline pool peak
    bool verbose = false;
};

/** One solve against a fresh model; returns the plan. */
template <typename ModelT, typename ConfigT>
budget::BudgetPlan
planFresh(const ConfigT &cfg, const PlanOptions &opts,
          budget::Solver solver)
{
    ModelT model(cfg);
    budget::BudgetConfig config;
    config.solver = solver;
    config.budget_bytes = opts.budget_bytes;
    if (opts.budget_fraction > 0.0) {
        // Resolve the fraction against this model's measured baseline.
        const memory::LivenessResult live = memory::analyzeLiveness(
            model.fetches(), model.weightGrads());
        const int64_t baseline =
            memory::planMemory(live).pool_peak_bytes;
        config.budget_bytes = static_cast<int64_t>(std::llround(
            opts.budget_fraction * static_cast<double>(baseline)));
    }
    return budget::planWithBudget(model.graph(), model.fetches(),
                                  model.weightGrads(), config);
}

budget::BudgetPlan
planModel(const PlanOptions &opts, budget::Solver solver)
{
    // Presets sized so the per-step feature maps (what recomputation
    // can reclaim) dominate the vocab-sized logits (what it cannot):
    // the feasible budget range is then wide enough to be interesting.
    if (opts.model == "word_lm") {
        models::WordLmConfig cfg;
        cfg.vocab = 2000;
        cfg.hidden = 192;
        cfg.layers = 2;
        cfg.batch = 16;
        cfg.seq_len = 35;
        return planFresh<models::WordLmModel>(cfg, opts, solver);
    }
    models::NmtConfig cfg;
    cfg.src_vocab = 1500;
    cfg.tgt_vocab = 1200;
    cfg.hidden = 128;
    cfg.enc_layers = 1;
    cfg.batch = 16;
    cfg.src_len = 25;
    cfg.tgt_len = 25;
    return planFresh<models::NmtModel>(cfg, opts, solver);
}

bool
parseArgs(int argc, char **argv, PlanOptions &opts)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--model=", 0) == 0) {
            opts.model = arg.substr(8);
        } else if (arg.rfind("--solver=", 0) == 0) {
            opts.solver = arg.substr(9);
        } else if (arg.rfind("--budget=", 0) == 0) {
            if (!budget::parseByteSize(arg.substr(9),
                                       &opts.budget_bytes) ||
                opts.budget_bytes <= 0) {
                std::cerr << "echo-plan: bad --budget value '"
                          << arg.substr(9) << "'\n";
                return false;
            }
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (arg.rfind("--tape=", 0) == 0) {
            const std::string mode = arg.substr(7);
            if (mode != "on" && mode != "off") {
                std::cerr << "echo-plan: --tape must be 'on' or 'off'\n";
                return false;
            }
            // Latched by the executor before the first run.
            setenv("ECHO_TAPE", mode.c_str(), 1);
        } else if (arg.rfind("--budget-fraction=", 0) == 0) {
            try {
                opts.budget_fraction = std::stod(arg.substr(18));
            } catch (...) {
                opts.budget_fraction = 0.0;
            }
            if (!(opts.budget_fraction > 0.0 &&
                  opts.budget_fraction <= 1.0)) {
                std::cerr << "echo-plan: --budget-fraction must be in "
                             "(0, 1]\n";
                return false;
            }
        } else {
            std::cerr
                << "echo-plan: unknown argument " << arg << "\n"
                << "usage: echo-plan --budget=BYTES|--budget-fraction=F\n"
                   "                 [--model=word_lm|nmt]\n"
                   "                 [--solver=greedy|dp|lagrange|all]\n"
                   "                 [--tape=on|off]\n";
            return false;
        }
    }
    if (opts.model != "word_lm" && opts.model != "nmt") {
        std::cerr << "echo-plan: bad --model value '" << opts.model
                  << "'\n";
        return false;
    }
    budget::Solver ignored;
    if (opts.solver != "all" &&
        !budget::parseSolver(opts.solver, &ignored)) {
        std::cerr << "echo-plan: bad --solver value '" << opts.solver
                  << "'\n";
        return false;
    }
    if ((opts.budget_bytes > 0) == (opts.budget_fraction > 0.0)) {
        std::cerr << "echo-plan: exactly one of --budget and "
                     "--budget-fraction is required\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    PlanOptions opts;
    if (!parseArgs(argc, argv, opts))
        return 2;

    std::vector<budget::Solver> solvers;
    if (opts.solver == "all") {
        solvers = {budget::Solver::kGreedy, budget::Solver::kChainDp,
                   budget::Solver::kLagrange};
    } else {
        budget::Solver s;
        budget::parseSolver(opts.solver, &s);
        solvers = {s};
    }

    Table table({"solver", "budget", "feasible", "baseline peak",
                 "tightest peak", "planned peak", "replay us", "regions",
                 "rounds", "exact", "replay ok"});
    int infeasible = 0;
    std::vector<std::string> notes;
    for (budget::Solver solver : solvers) {
        const budget::BudgetPlan plan = planModel(opts, solver);
        if (!plan.feasible)
            ++infeasible;
        table.addRow({budget::solverName(solver),
                      budget::formatBytes(plan.budget_bytes),
                      plan.feasible ? "yes" : "NO",
                      budget::formatBytes(plan.baseline_pool_peak),
                      budget::formatBytes(plan.tightest_pool_peak),
                      budget::formatBytes(plan.planned_pool_peak),
                      Table::fmt(plan.pass.replay_time_us, 1),
                      std::to_string(plan.pass.num_regions),
                      std::to_string(plan.rounds),
                      plan.solved.exact ? "yes" : "no",
                      plan.replay_ok ? "yes" : "NO"});
        notes.push_back(std::string(budget::solverName(solver)) + ": " +
                        plan.note);
        if (opts.verbose) {
            std::ostringstream oss;
            oss << "  solver chose " << plan.solved.chosen.size()
                << " of " << plan.num_items
                << " item(s); modelled saved "
                << budget::formatBytes(plan.solved.cost.bytes_saved)
                << ", added "
                << budget::formatBytes(plan.solved.cost.bytes_added)
                << ", net "
                << budget::formatBytes(plan.solved.cost.netSavings())
                << ", replay "
                << Table::fmt(plan.solved.cost.replay_time_us, 1)
                << " us over " << plan.solved.states << " state(s)";
            notes.push_back(oss.str());
        }
        if (!plan.feasible && !plan.binding.empty()) {
            std::ostringstream oss;
            oss << "  binding buffers at the tightest plan's peak:";
            notes.push_back(oss.str());
            for (const budget::BindingBuffer &b : plan.binding) {
                notes.push_back("    " + b.name + " (" + b.category +
                                ", " + budget::formatBytes(b.bytes) +
                                ", slots " + std::to_string(b.def_pos) +
                                ".." + std::to_string(b.last_use_pos) +
                                ")");
            }
        }
    }

    std::cout << "echo-plan: model " << opts.model << "\n";
    table.print();
    for (const std::string &note : notes)
        std::cout << note << "\n";
    return infeasible > 0 ? 1 : 0;
}
