/**
 * @file
 * echo-serve: command-line front end of the inference-serving layer
 * (src/serve).  Loads a checkpoint (model family and hyperparameters
 * are inferred from the stored tensors), starts a Server, submits the
 * requests from a file (or a built-in demo set), prints one line per
 * response, and finishes with the latency/throughput summary.
 *
 * Request file format — one request per line:
 *
 *     # comment
 *     12 7 93 5            <- token ids (greedy decode / LM top-k)
 *     beam=4 12 7 93 5     <- NMT beam search, width 4
 *     topk=3 12 7 93       <- word LM, report 3 candidates
 *
 * --journal=PATH dumps the workspace slot-occupancy journal in the
 * format `echo-lint --serve-journal=PATH` checks, closing the loop
 * between the serving layer and the static analyzer.
 *
 * Exit status: 0 when every submitted request completed ok, 1 when any
 * was rejected or produced no payload, 2 on usage errors.
 *
 * usage: echo-serve --ckpt=PATH [--requests=FILE] [--slots=N]
 *                   [--buckets=8,16,32] [--beam=K] [--max-new=N]
 *                   [--queue=N] [--max-wait-us=N] [--threads=N]
 *                   [--journal=PATH]
 */
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "serve/server.h"

namespace {

using namespace echo;

struct ServeOptions
{
    std::string ckpt;
    std::string requests_path;
    std::string journal_path;
    serve::SessionConfig session;
    serve::ServerConfig server;
    int64_t max_new_tokens = 16;
    int threads = 0; // 0 = leave the pool alone
};

std::vector<int64_t>
parseBuckets(const std::string &spec)
{
    std::vector<int64_t> buckets;
    std::istringstream fields(spec);
    std::string item;
    while (std::getline(fields, item, ','))
        buckets.push_back(std::stoll(item));
    return buckets;
}

bool
parseArgs(int argc, char **argv, ServeOptions &opts)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--ckpt=", 0) == 0) {
            opts.ckpt = arg.substr(7);
        } else if (arg.rfind("--requests=", 0) == 0) {
            opts.requests_path = arg.substr(11);
        } else if (arg.rfind("--journal=", 0) == 0) {
            opts.journal_path = arg.substr(10);
        } else if (arg.rfind("--slots=", 0) == 0) {
            opts.session.slots = std::stoll(arg.substr(8));
        } else if (arg.rfind("--buckets=", 0) == 0) {
            opts.session.buckets = parseBuckets(arg.substr(10));
        } else if (arg.rfind("--beam=", 0) == 0) {
            opts.session.beam_width = std::stoi(arg.substr(7));
        } else if (arg.rfind("--max-new=", 0) == 0) {
            opts.max_new_tokens = std::stoll(arg.substr(10));
        } else if (arg.rfind("--queue=", 0) == 0) {
            opts.server.queue_capacity =
                static_cast<size_t>(std::stoull(arg.substr(8)));
        } else if (arg.rfind("--max-wait-us=", 0) == 0) {
            opts.server.max_wait =
                std::chrono::microseconds(std::stoll(arg.substr(14)));
        } else if (arg.rfind("--threads=", 0) == 0) {
            opts.threads = std::stoi(arg.substr(10));
        } else {
            std::cerr << "echo-serve: unknown argument " << arg << "\n";
            return false;
        }
    }
    if (opts.ckpt.empty()) {
        std::cerr << "echo-serve: --ckpt=PATH is required\n";
        return false;
    }
    return true;
}

/** Parse the request file (see the file comment for the format). */
bool
loadRequests(const std::string &path, int64_t max_new,
             std::vector<serve::Request> &out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "echo-serve: cannot open " << path << "\n";
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        serve::Request req;
        req.max_new_tokens = max_new;
        std::string tok;
        while (fields >> tok) {
            if (tok.rfind("beam=", 0) == 0)
                req.beam_width = std::stoi(tok.substr(5));
            else if (tok.rfind("topk=", 0) == 0)
                req.top_k = std::stoi(tok.substr(5));
            else
                req.tokens.push_back(std::stoll(tok));
        }
        out.push_back(std::move(req));
    }
    return true;
}

/** Fallback when no --requests file is given: a small fixed set of
 *  short prefixes valid for any vocabulary (ids stay tiny). */
std::vector<serve::Request>
demoRequests(int64_t max_new)
{
    std::vector<serve::Request> reqs;
    const std::vector<std::vector<int64_t>> token_sets = {
        {3, 4, 5}, {6, 7}, {3, 5, 7, 9, 11}, {4, 4, 4, 4}};
    for (const auto &tokens : token_sets) {
        serve::Request req;
        req.tokens = tokens;
        req.max_new_tokens = max_new;
        reqs.push_back(std::move(req));
    }
    return reqs;
}

std::string
formatTokens(const std::vector<int64_t> &tokens)
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < tokens.size(); ++i)
        oss << (i == 0 ? "" : " ") << tokens[i];
    oss << "]";
    return oss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    ServeOptions opts;
    if (!parseArgs(argc, argv, opts))
        return 2;
    if (opts.threads > 0)
        ThreadPool::setGlobalNumThreads(opts.threads);

    std::vector<serve::Request> requests;
    if (!opts.requests_path.empty()) {
        if (!loadRequests(opts.requests_path, opts.max_new_tokens,
                          requests))
            return 2;
    } else {
        requests = demoRequests(opts.max_new_tokens);
    }
    if (requests.empty()) {
        std::cerr << "echo-serve: no requests to submit\n";
        return 2;
    }

    auto session =
        serve::InferenceSession::fromCheckpoint(opts.ckpt, opts.session);
    std::cout << "echo-serve: " << session->describe() << "\n";

    serve::Server server(std::move(session), opts.server);
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(requests.size());
    for (serve::Request &req : requests)
        futures.push_back(server.submit(std::move(req)));

    int failures = 0;
    for (auto &future : futures) {
        const serve::Response resp = future.get();
        if (resp.ok && !resp.tokens.empty()) {
            std::cout << "id=" << resp.id
                      << " ok tokens=" << formatTokens(resp.tokens)
                      << " score="
                      << (resp.scores.empty() ? 0.0f : resp.scores[0])
                      << " bucket=" << resp.bucket_len
                      << " batch=" << resp.batch_requests << "\n";
        } else {
            ++failures;
            std::cout << "id=" << resp.id << " FAILED reason="
                      << serve::rejectReasonName(resp.reject) << "\n";
        }
    }
    server.stop();

    const serve::ServerStats stats = server.stats();
    std::cout << "accepted=" << stats.accepted
              << " rejected=" << stats.rejected
              << " completed=" << stats.completed
              << " batches=" << stats.batches << " mean_batch="
              << stats.mean_batch_requests << "\n"
              << "latency_us p50=" << stats.latency_p50_us
              << " p95=" << stats.latency_p95_us
              << " p99=" << stats.latency_p99_us << "\n";

    if (!opts.journal_path.empty()) {
        std::ofstream journal(opts.journal_path);
        journal << "# request_id pool slot acquired released\n";
        for (const auto &iv : server.session().slotJournal())
            journal << iv.request_id << " " << iv.pool << " " << iv.slot
                    << " " << iv.acquired << " " << iv.released << "\n";
        std::cout << "journal written to " << opts.journal_path << "\n";
    }
    return failures == 0 ? 0 : 1;
}
