/**
 * @file
 * echo-serve: command-line front end of the inference-serving layer
 * (src/serve).  Loads one or more checkpoints (model family and
 * hyperparameters are inferred from the stored tensors — several
 * checkpoints make a mixed-traffic server), starts a Server, submits
 * the requests from a file (or a built-in demo set), prints one line
 * per response, and finishes with the latency/throughput summary.
 *
 * Request file format — one request per line:
 *
 *     # comment
 *     12 7 93 5                  <- token ids (greedy decode / LM top-k)
 *     beam=4 12 7 93 5           <- NMT beam search, width 4
 *     topk=3 12 7 93             <- word LM, report 3 candidates
 *     model=nmt 12 7 93          <- route to the nmt session
 *     tier=interactive 12 7      <- SLO tier (default batch)
 *     deadline-us=5000 12 7      <- deadline budget from admission
 *     cancel-after-us=200 12 7   <- client cancels this id after 200us
 *
 * --journal=PATH dumps the slot-occupancy journal in the format
 * `echo-lint --serve-journal=PATH` checks: slot-recycling leases under
 * the continuous scheduler (the default), plain intervals under
 * --scheduler=batch — closing the loop between the serving layer and
 * the static analyzer.
 *
 * Exit status: 0 when every submitted request resolved as expected
 * (cancelled requests count as expected when a cancel was asked for),
 * 1 otherwise, 2 on usage errors.
 *
 * --tape=on routes every decode step through the compiled execution
 * tape (graph/tape.h): sessions replay planner-addressed records from
 * a fixed arena instead of interpreting the schedule, with packed
 * weights pre-registered at checkpoint load.  The switch is latched
 * process-wide before the first run (it sets ECHO_TAPE), so it applies
 * to every session of this server.
 *
 * usage: echo-serve --ckpt=PATH[,PATH...] [--requests=FILE] [--slots=N]
 *                   [--buckets=8,16,32] [--beam=K] [--max-new=N]
 *                   [--queue=N] [--max-wait-us=N] [--threads=N]
 *                   [--scheduler=continuous|batch] [--journal=PATH]
 *                   [--tape=on|off]
 */
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "serve/server.h"

namespace {

using namespace echo;

struct ServeOptions
{
    std::vector<std::string> ckpts;
    std::string requests_path;
    std::string journal_path;
    serve::SessionConfig session;
    serve::ServerConfig server;
    int64_t max_new_tokens = 16;
    int threads = 0; // 0 = leave the pool alone
};

/** A request plus its client-side cancellation delay (0 = none). */
struct PlannedRequest
{
    serve::Request req;
    int64_t cancel_after_us = 0;
};

std::vector<std::string>
splitCommas(const std::string &spec)
{
    std::vector<std::string> items;
    std::istringstream fields(spec);
    std::string item;
    while (std::getline(fields, item, ','))
        items.push_back(item);
    return items;
}

std::vector<int64_t>
parseBuckets(const std::string &spec)
{
    std::vector<int64_t> buckets;
    for (const std::string &item : splitCommas(spec))
        buckets.push_back(std::stoll(item));
    return buckets;
}

bool
parseArgs(int argc, char **argv, ServeOptions &opts)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--ckpt=", 0) == 0) {
            opts.ckpts = splitCommas(arg.substr(7));
        } else if (arg.rfind("--requests=", 0) == 0) {
            opts.requests_path = arg.substr(11);
        } else if (arg.rfind("--journal=", 0) == 0) {
            opts.journal_path = arg.substr(10);
        } else if (arg.rfind("--slots=", 0) == 0) {
            opts.session.slots = std::stoll(arg.substr(8));
        } else if (arg.rfind("--buckets=", 0) == 0) {
            opts.session.buckets = parseBuckets(arg.substr(10));
        } else if (arg.rfind("--beam=", 0) == 0) {
            opts.session.beam_width = std::stoi(arg.substr(7));
        } else if (arg.rfind("--max-new=", 0) == 0) {
            opts.max_new_tokens = std::stoll(arg.substr(10));
        } else if (arg.rfind("--queue=", 0) == 0) {
            opts.server.queue_capacity =
                static_cast<size_t>(std::stoull(arg.substr(8)));
        } else if (arg.rfind("--max-wait-us=", 0) == 0) {
            opts.server.max_wait =
                std::chrono::microseconds(std::stoll(arg.substr(14)));
        } else if (arg.rfind("--threads=", 0) == 0) {
            opts.threads = std::stoi(arg.substr(10));
        } else if (arg.rfind("--tape=", 0) == 0) {
            const std::string mode = arg.substr(7);
            if (mode != "on" && mode != "off") {
                std::cerr << "echo-serve: --tape must be 'on' or "
                             "'off'\n";
                return false;
            }
            // Latched by the executor before the first run; set it now
            // so every session compiles (or skips) its tape.
            setenv("ECHO_TAPE", mode.c_str(), 1);
        } else if (arg.rfind("--scheduler=", 0) == 0) {
            const std::string kind = arg.substr(12);
            if (kind == "continuous") {
                opts.server.scheduler = serve::SchedulerKind::kContinuous;
            } else if (kind == "batch") {
                opts.server.scheduler =
                    serve::SchedulerKind::kDynamicBatch;
            } else {
                std::cerr << "echo-serve: --scheduler must be "
                             "'continuous' or 'batch'\n";
                return false;
            }
        } else {
            std::cerr << "echo-serve: unknown argument " << arg << "\n";
            return false;
        }
    }
    if (opts.ckpts.empty()) {
        std::cerr << "echo-serve: --ckpt=PATH[,PATH...] is required\n";
        return false;
    }
    return true;
}

/** Parse the request file (see the file comment for the format). */
bool
loadRequests(const std::string &path, int64_t max_new,
             std::vector<PlannedRequest> &out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "echo-serve: cannot open " << path << "\n";
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        PlannedRequest planned;
        serve::Request &req = planned.req;
        req.max_new_tokens = max_new;
        std::string tok;
        while (fields >> tok) {
            if (tok.rfind("beam=", 0) == 0)
                req.beam_width = std::stoi(tok.substr(5));
            else if (tok.rfind("topk=", 0) == 0)
                req.top_k = std::stoi(tok.substr(5));
            else if (tok.rfind("model=", 0) == 0)
                req.model = tok.substr(6);
            else if (tok.rfind("tier=", 0) == 0)
                req.tier = tok.substr(5) == "interactive"
                               ? serve::Tier::kInteractive
                               : serve::Tier::kBatch;
            else if (tok.rfind("deadline-us=", 0) == 0)
                req.deadline_us = std::stoll(tok.substr(12));
            else if (tok.rfind("cancel-after-us=", 0) == 0)
                planned.cancel_after_us = std::stoll(tok.substr(16));
            else
                req.tokens.push_back(std::stoll(tok));
        }
        out.push_back(std::move(planned));
    }
    return true;
}

/** Fallback when no --requests file is given: a small fixed set of
 *  short prefixes valid for any vocabulary (ids stay tiny). */
std::vector<PlannedRequest>
demoRequests(int64_t max_new)
{
    std::vector<PlannedRequest> reqs;
    const std::vector<std::vector<int64_t>> token_sets = {
        {3, 4, 5}, {6, 7}, {3, 5, 7, 9, 11}, {4, 4, 4, 4}};
    for (const auto &tokens : token_sets) {
        PlannedRequest planned;
        planned.req.tokens = tokens;
        planned.req.max_new_tokens = max_new;
        reqs.push_back(std::move(planned));
    }
    return reqs;
}

std::string
formatTokens(const std::vector<int64_t> &tokens)
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < tokens.size(); ++i)
        oss << (i == 0 ? "" : " ") << tokens[i];
    oss << "]";
    return oss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    ServeOptions opts;
    if (!parseArgs(argc, argv, opts))
        return 2;
    if (opts.threads > 0)
        ThreadPool::setGlobalNumThreads(opts.threads);

    std::vector<PlannedRequest> requests;
    if (!opts.requests_path.empty()) {
        if (!loadRequests(opts.requests_path, opts.max_new_tokens,
                          requests))
            return 2;
    } else {
        requests = demoRequests(opts.max_new_tokens);
    }
    if (requests.empty()) {
        std::cerr << "echo-serve: no requests to submit\n";
        return 2;
    }

    std::vector<std::unique_ptr<serve::InferenceSession>> sessions;
    for (const std::string &ckpt : opts.ckpts) {
        sessions.push_back(
            serve::InferenceSession::fromCheckpoint(ckpt, opts.session));
        std::cout << "echo-serve: " << sessions.back()->describe()
                  << "\n";
    }

    serve::Server server(std::move(sessions), opts.server);
    std::vector<std::future<serve::Response>> futures;
    std::vector<int64_t> cancel_after;
    futures.reserve(requests.size());
    for (PlannedRequest &planned : requests) {
        cancel_after.push_back(planned.cancel_after_us);
        futures.push_back(server.submit(std::move(planned.req)));
    }
    // Client-side cancellations: the id sequence is the submit order.
    for (size_t i = 0; i < cancel_after.size(); ++i) {
        if (cancel_after[i] <= 0)
            continue;
        std::this_thread::sleep_for(
            std::chrono::microseconds(cancel_after[i]));
        server.cancel(static_cast<int64_t>(i));
    }

    int failures = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
        const serve::Response resp = futures[i].get();
        if (resp.ok && !resp.tokens.empty()) {
            std::cout << "id=" << resp.id
                      << " ok tokens=" << formatTokens(resp.tokens)
                      << " score="
                      << (resp.scores.empty() ? 0.0f : resp.scores[0])
                      << " bucket=" << resp.bucket_len
                      << " batch=" << resp.batch_requests << "\n";
            continue;
        }
        // A request the file asked to cancel resolving kCancelled (or
        // finishing first) is the expected outcome, not a failure.
        const bool expected_cancel =
            cancel_after[i] > 0 &&
            resp.reject == serve::RejectReason::kCancelled;
        if (!expected_cancel)
            ++failures;
        std::cout << "id=" << resp.id << " "
                  << (expected_cancel ? "cancelled" : "FAILED")
                  << " reason="
                  << serve::rejectReasonName(resp.reject) << "\n";
    }
    server.stop();

    const serve::ServerStats stats = server.stats();
    std::cout << "accepted=" << stats.accepted
              << " rejected=" << stats.rejected
              << " completed=" << stats.completed
              << " cancelled=" << stats.cancelled
              << " expired=" << stats.expired
              << " batches=" << stats.batches << " mean_batch="
              << stats.mean_batch_requests
              << " splices=" << stats.splices
              << " recycled=" << stats.recycled_slots << "\n"
              << "latency_us p50=" << stats.latency_p50_us
              << " p95=" << stats.latency_p95_us
              << " p99=" << stats.latency_p99_us
              << " wait_p99=" << stats.wait_p99_us << "\n";

    if (!opts.journal_path.empty()) {
        std::ofstream journal(opts.journal_path);
        if (opts.server.scheduler == serve::SchedulerKind::kContinuous) {
            journal << "# request_id pool slot acquired released "
                       "reinit status\n";
            for (const auto &lease : server.leaseJournal()) {
                const char *status =
                    lease.status == analysis::LeaseStatus::kServed
                        ? "served"
                        : lease.status ==
                                  analysis::LeaseStatus::kCancelled
                              ? "cancelled"
                              : "expired";
                journal << lease.request_id << " " << lease.pool << " "
                        << lease.slot << " " << lease.acquired << " "
                        << lease.released << " " << lease.reinit << " "
                        << status << "\n";
            }
        } else {
            journal << "# request_id pool slot acquired released\n";
            for (const auto &iv : server.session().slotJournal())
                journal << iv.request_id << " " << iv.pool << " "
                        << iv.slot << " " << iv.acquired << " "
                        << iv.released << "\n";
        }
        std::cout << "journal written to " << opts.journal_path << "\n";
    }
    return failures == 0 ? 0 : 1;
}
