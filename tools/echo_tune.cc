/**
 * @file
 * echo-tune: command-line front end of the GEMM autotuner (src/tune).
 *
 * Modes (combinable; they run in the order warm, layout, dump, check):
 *
 *  - --warm=word_lm|nmt|shapes  Tune the model family's GEMM shape set
 *    at the given hyperparameters (--batch/--hidden/--vocab/--beam,
 *    or --suite=small|full presets; --shapes=MxNxK[:TT],... for the
 *    explicit form) and persist the winners to the cache.  A shape
 *    that already has a usable cache entry is NOT re-measured — a
 *    second warm run against the same cache performs zero measurement
 *    runs, which CI asserts via the tune.* counter summary.
 *  - --layout                   Fold the TBH-vs-THB layout choice into
 *    the tuner: tune both forms of the recurrent projection and print
 *    the measured decision.
 *  - --dump                     Print every cache entry.
 *  - --check                    Validate the cache file; exit nonzero
 *    on a missing-but-expected, wrong-version, or corrupt cache.
 *
 * Always prints the tune.* counters last, one "name=value" per line.
 *
 * usage: echo-tune [--cache PATH] [--warm word_lm|nmt|shapes]
 *                  [--suite small|full] [--shapes LIST]
 *                  [--batch N] [--hidden N] [--vocab N] [--beam N]
 *                  [--candidates N] [--reps N]
 *                  [--layout] [--dump] [--check]
 *        (both "--flag value" and "--flag=value" forms are accepted)
 */
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "layout/layout_optimizer.h"
#include "obs/counters.h"
#include "tensor/gemm_schedule.h"
#include "tune/cache.h"
#include "tune/tuner.h"

namespace {

using namespace echo;

struct TuneCliOptions
{
    std::string cache_path; // empty: ECHO_TUNE_CACHE / default
    std::string warm;       // "", word_lm, nmt, shapes
    std::string suite;      // "", small, full
    std::string shapes;     // explicit MxNxK[:TT] list
    int64_t batch = 32;
    int64_t hidden = 650;
    int64_t vocab = 10000;
    int64_t beam = 8;
    int candidates = 16;
    int reps = 3;
    bool layout = false;
    bool dump = false;
    bool check = false;
};

void
usage(std::ostream &os)
{
    os << "usage: echo-tune [--cache PATH] [--warm word_lm|nmt|shapes]\n"
          "                 [--suite small|full] [--shapes MxNxK[:TT],...]\n"
          "                 [--batch N] [--hidden N] [--vocab N] [--beam N]\n"
          "                 [--candidates N] [--reps N]\n"
          "                 [--layout] [--dump] [--check]\n";
}

/** Parse "MxNxK" or "MxNxK:NT"-style entries (T/N per operand). */
bool
parseShape(const std::string &text, int threads, ops::GemmKey *out)
{
    ops::GemmKey key;
    key.threads = threads;
    char ta = 'N', tb = 'N';
    const int got =
        std::sscanf(text.c_str(), "%ldx%ldx%ld:%c%c", &key.m, &key.n,
                    &key.k, &ta, &tb);
    if (got != 3 && got != 5)
        return false;
    if ((ta != 'N' && ta != 'T') || (tb != 'N' && tb != 'T'))
        return false;
    if (key.m < 1 || key.n < 1 || key.k < 1)
        return false;
    key.trans_a = ta == 'T';
    key.trans_b = tb == 'T';
    *out = key;
    return true;
}

/**
 * The GEMM shape set of one LSTM LM / NMT configuration: the per-step
 * gate projections at training batch, single-slot decode, and beam
 * width; the vocab projection at each of those batches; and the
 * K-skewed weight-gradient forms of the training projections.
 */
std::vector<ops::GemmKey>
modelShapeSet(const TuneCliOptions &opt, bool nmt, int threads)
{
    const int64_t h = opt.hidden;
    std::vector<int64_t> batches{1, opt.beam, opt.batch};
    std::vector<ops::GemmKey> keys;
    for (int64_t b : batches) {
        // Gate projection X[b x H] * W^T[4H x H] and the vocab head.
        keys.push_back({b, 4 * h, h, false, true, threads});
        keys.push_back({b, opt.vocab, h, false, true, threads});
        if (nmt) // attention score head: [b x H] * Henc^T
            keys.push_back({b, h, h, false, true, threads});
    }
    // Weight gradients: dW = dY^T X, K = batch (K-skewed).
    keys.push_back({4 * h, h, opt.batch, true, false, threads});
    keys.push_back({opt.vocab, h, opt.batch, true, false, threads});
    return keys;
}

/** Small fixed suites for smoke runs and CI. */
std::vector<ops::GemmKey>
suiteShapeSet(const std::string &suite, int threads)
{
    std::vector<ops::GemmKey> keys;
    if (suite == "small") {
        keys.push_back({8, 32, 16, false, false, threads});
        keys.push_back({1, 48, 24, false, true, threads});
        keys.push_back({17, 24, 9, true, false, threads});
    } else { // full: the paper-workload skew set at default params
        keys.push_back({32, 10000, 650, false, true, threads});
        keys.push_back({1, 2600, 650, false, true, threads});
        keys.push_back({8, 2600, 650, false, true, threads});
        keys.push_back({2600, 650, 1120, true, false, threads});
    }
    return keys;
}

void
printCounters()
{
    // Register the full tune.* set up front so a run that never ticked
    // one still reports it as 0 — CI greps "tune.measure_runs=0" to
    // prove a warm-cache run measured nothing.
    for (const char *name :
         {"tune.sched_hit", "tune.sched_miss", "tune.search_runs",
          "tune.measure_runs", "tune.validate_reject",
          "tune.cache_entries_loaded", "tune.cache_entries_rejected"})
        (void)obs::counter(name, obs::CounterKind::kScheduling);
    for (const obs::CounterSample &c : obs::snapshotCounters())
        if (c.name.rfind("tune.", 0) == 0)
            std::printf("%s=%lld\n", c.name.c_str(),
                        static_cast<long long>(c.value));
}

} // namespace

int
main(int argc, char **argv)
{
    TuneCliOptions opt;
    std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
        std::string flag = args[i];
        std::string value;
        if (const auto eq = flag.find('='); eq != std::string::npos) {
            value = flag.substr(eq + 1);
            flag = flag.substr(0, eq);
        }
        auto want_value = [&]() -> bool {
            if (!value.empty())
                return true;
            if (i + 1 < args.size()) {
                value = args[++i];
                return true;
            }
            std::cerr << "echo-tune: " << flag << " needs a value\n";
            return false;
        };
        if (flag == "--help" || flag == "-h") {
            usage(std::cout);
            return 0;
        } else if (flag == "--layout") {
            opt.layout = true;
        } else if (flag == "--dump") {
            opt.dump = true;
        } else if (flag == "--check") {
            opt.check = true;
        } else if (flag == "--cache") {
            if (!want_value())
                return 2;
            opt.cache_path = value;
        } else if (flag == "--warm") {
            if (!want_value())
                return 2;
            opt.warm = value;
        } else if (flag == "--suite") {
            if (!want_value())
                return 2;
            opt.suite = value;
        } else if (flag == "--shapes") {
            if (!want_value())
                return 2;
            opt.shapes = value;
            if (opt.warm.empty())
                opt.warm = "shapes";
        } else if (flag == "--batch" || flag == "--hidden" ||
                   flag == "--vocab" || flag == "--beam" ||
                   flag == "--candidates" || flag == "--reps") {
            if (!want_value())
                return 2;
            const int64_t v = std::atoll(value.c_str());
            if (v < 1) {
                std::cerr << "echo-tune: " << flag
                          << " must be positive\n";
                return 2;
            }
            if (flag == "--batch")
                opt.batch = v;
            else if (flag == "--hidden")
                opt.hidden = v;
            else if (flag == "--vocab")
                opt.vocab = v;
            else if (flag == "--beam")
                opt.beam = v;
            else if (flag == "--candidates")
                opt.candidates = static_cast<int>(v);
            else
                opt.reps = static_cast<int>(v);
        } else {
            std::cerr << "echo-tune: unknown flag " << flag << "\n";
            usage(std::cerr);
            return 2;
        }
    }

    tune::TuneOptions topt;
    topt.cache_path = opt.cache_path;
    topt.max_candidates = opt.candidates;
    topt.reps = opt.reps;
    tune::Autotuner tuner(topt);
    const int threads = ThreadPool::global().numThreads();

    std::printf("echo-tune: cache %s, kernel isa %s (%d-byte vectors), "
                "%d threads\n",
                tuner.cachePath().c_str(), ops::gemmIsaName(),
                ops::gemmVectorWidthBytes(), threads);

    if (!opt.warm.empty()) {
        std::vector<ops::GemmKey> keys;
        if (!opt.suite.empty()) {
            if (opt.suite != "small" && opt.suite != "full") {
                std::cerr << "echo-tune: --suite must be small|full\n";
                return 2;
            }
            keys = suiteShapeSet(opt.suite, threads);
        } else if (opt.warm == "word_lm") {
            keys = modelShapeSet(opt, /*nmt=*/false, threads);
        } else if (opt.warm == "nmt") {
            keys = modelShapeSet(opt, /*nmt=*/true, threads);
        } else if (opt.warm == "shapes") {
            size_t at = 0;
            while (at < opt.shapes.size()) {
                size_t comma = opt.shapes.find(',', at);
                if (comma == std::string::npos)
                    comma = opt.shapes.size();
                ops::GemmKey key;
                const std::string item =
                    opt.shapes.substr(at, comma - at);
                if (!parseShape(item, threads, &key)) {
                    std::cerr << "echo-tune: bad shape \"" << item
                              << "\" (want MxNxK or MxNxK:TT)\n";
                    return 2;
                }
                keys.push_back(key);
                at = comma + 1;
            }
            if (keys.empty()) {
                std::cerr << "echo-tune: --warm shapes needs "
                             "--shapes\n";
                return 2;
            }
        } else {
            std::cerr << "echo-tune: --warm must be "
                         "word_lm|nmt|shapes\n";
            return 2;
        }
        const int searched = tuner.warmKeys(keys);
        std::printf("warm: %zu shapes, %d searched, %zu already "
                    "tuned\n",
                    keys.size(), searched,
                    keys.size() - static_cast<size_t>(searched));
        for (const tune::TuneOutcome &o : tuner.outcomes()) {
            if (!o.searched)
                continue;
            std::printf("  %-28s -> %-44s %8.1f us (fixed %8.1f us, "
                        "%.2fx)\n",
                        o.key.toString().c_str(),
                        o.best.toString().c_str(),
                        o.best_seconds * 1e6, o.fixed_seconds * 1e6,
                        o.speedup());
        }
    }

    if (opt.layout) {
        rnn::LstmSpec spec;
        spec.input_size = opt.hidden;
        spec.hidden = opt.hidden;
        spec.batch = opt.batch;
        spec.seq_len = 1;
        const layout::LayoutDecision d =
            layout::chooseLayoutTuned(spec, tuner, threads);
        std::printf("layout: %s (tuned %.1f us TBH vs %.1f us THB)\n",
                    layout::layoutName(d.layout), d.tbh_time_us,
                    d.thb_time_us);
    }

    int exit_code = 0;
    if (opt.dump || opt.check) {
        const tune::CacheLoadResult loaded =
            tune::loadTuneCache(tuner.cachePath());
        if (opt.dump) {
            std::printf("cache %s: %zu entries, %d rejected%s\n",
                        tuner.cachePath().c_str(),
                        loaded.entries.size(), loaded.rejected,
                        loaded.existed ? "" : " (no file)");
            for (const tune::CacheEntry &e : loaded.entries)
                std::printf("  %-28s %-8s vec%-3d %s\n",
                            e.key.toString().c_str(), e.isa.c_str(),
                            e.vector_width_bytes,
                            e.schedule.toString().c_str());
        }
        if (opt.check) {
            if (!loaded.existed) {
                std::printf("check: FAIL (cache file missing)\n");
                exit_code = 1;
            } else if (!loaded.ok) {
                std::printf("check: FAIL (bad header/version)\n");
                exit_code = 1;
            } else if (loaded.rejected > 0) {
                std::printf("check: FAIL (%d corrupt entries)\n",
                            loaded.rejected);
                exit_code = 1;
            } else {
                std::printf("check: OK (%zu entries)\n",
                            loaded.entries.size());
            }
        }
    }

    printCounters();
    return exit_code;
}
